// Virtual memory: fine-grained page-table management (paper §4.2).
//
// Starting from the page-table root, each alloc call retypes one free
// page and extends the table one level; each free call detaches one
// child and returns it. User space supplies every page number — the
// kernel only validates, which is what keeps every handler finite.
//
// Page-table entries live in the pages themselves (`pages[pn][idx]`),
// exactly what the hardware walker reads. Every mapped page records its
// unique parent entry (`parent_pn`/`parent_idx`), preserving the
// one-reference-per-page discipline behind the paper's Properties 3-5.

// Shared validation for extending a page table: the parent must be a
// table of type `parent_ty` owned by `pid` (current or an embryo child),
// the slot must be empty, the child free, the permission well-formed.
// Returns 0 on success or a negative errno.
i64 check_alloc_table(i64 pid, i64 parent, i64 index, i64 child, i64 parent_ty, i64 perm) {
    if (pid_valid(pid) == 0) {
        return -ESRCH;
    }
    if (is_current_or_embryo_child(pid) == 0) {
        return -EPERM;
    }
    if (page_valid(parent) == 0) {
        return -EINVAL;
    }
    if (page_desc[parent].ty != parent_ty) {
        return -EINVAL;
    }
    if (page_desc[parent].owner != pid) {
        return -EPERM;
    }
    if (idx_valid(index) == 0) {
        return -EINVAL;
    }
    if ((pages[parent][index] & PTE_P) != 0) {
        return -EBUSY;
    }
    if (page_valid(child) == 0) {
        return -EINVAL;
    }
    if (page_is_free(child) == 0) {
        return -ENOMEM;
    }
    if (perm_valid(perm) == 0) {
        return -EINVAL;
    }
    return 0;
}

i64 do_alloc_table(i64 pid, i64 parent, i64 index, i64 child, i64 child_ty, i64 perm) {
    alloc_page_typed(child, pid, child_ty, parent, index);
    pages[parent][index] = (child << PTE_PFN_SHIFT) | perm;
    return 0;
}

i64 sys_alloc_pdpt(i64 pid, i64 pml4, i64 index, i64 pdpt, i64 perm) {
    i64 r = check_alloc_table(pid, pml4, index, pdpt, PAGE_PML4, perm);
    if (r != 0) {
        return r;
    }
    return do_alloc_table(pid, pml4, index, pdpt, PAGE_PDPT, perm);
}

i64 sys_alloc_pd(i64 pid, i64 pdpt, i64 index, i64 pd, i64 perm) {
    i64 r = check_alloc_table(pid, pdpt, index, pd, PAGE_PDPT, perm);
    if (r != 0) {
        return r;
    }
    return do_alloc_table(pid, pdpt, index, pd, PAGE_PD, perm);
}

i64 sys_alloc_pt(i64 pid, i64 pd, i64 index, i64 pt, i64 perm) {
    i64 r = check_alloc_table(pid, pd, index, pt, PAGE_PD, perm);
    if (r != 0) {
        return r;
    }
    return do_alloc_table(pid, pd, index, pt, PAGE_PT, perm);
}

i64 sys_alloc_frame(i64 pid, i64 pt, i64 index, i64 frame, i64 perm) {
    i64 r = check_alloc_table(pid, pt, index, frame, PAGE_PT, perm);
    if (r != 0) {
        return r;
    }
    // alloc_page_typed zeroes the frame: a process never observes
    // another process's stale data (isolation).
    return do_alloc_table(pid, pt, index, frame, PAGE_FRAME, perm);
}

// Maps a DMA page (combined-space pfn NR_PAGES + d) into a leaf slot of
// `pid`'s page table. The DMA page is claimed for `pid` if unowned.
i64 sys_map_dmapage(i64 pid, i64 pt, i64 index, i64 d, i64 perm) {
    i64 owner;
    if (pid_valid(pid) == 0) {
        return -ESRCH;
    }
    if (is_current_or_embryo_child(pid) == 0) {
        return -EPERM;
    }
    if (page_valid(pt) == 0) {
        return -EINVAL;
    }
    if (page_desc[pt].ty != PAGE_PT) {
        return -EINVAL;
    }
    if (page_desc[pt].owner != pid) {
        return -EPERM;
    }
    if (idx_valid(index) == 0) {
        return -EINVAL;
    }
    if ((pages[pt][index] & PTE_P) != 0) {
        return -EBUSY;
    }
    if (dma_valid(d) == 0) {
        return -EINVAL;
    }
    owner = dma_desc[d].owner;
    if ((owner != PID_NONE) & (owner != pid)) {
        return -EPERM;
    }
    if (dma_desc[d].cpu_parent_pn != PARENT_NONE) {
        return -EBUSY;
    }
    if (perm_valid(perm) == 0) {
        return -EINVAL;
    }
    if (owner == PID_NONE) {
        dma_desc[d].owner = pid;
        procs[pid].nr_dmapages = procs[pid].nr_dmapages + 1;
    }
    dma_desc[d].cpu_parent_pn = pt;
    dma_desc[d].cpu_parent_idx = index;
    pages[pt][index] = ((NR_PAGES + d) << PTE_PFN_SHIFT) | perm;
    return 0;
}

// Copies the contents of one frame into another. The destination may
// belong to an embryo child (user-space fork duplicates memory with
// this).
i64 sys_copy_frame(i64 from, i64 to) {
    i64 to_owner;
    if ((page_valid(from) & page_valid(to)) == 0) {
        return -EINVAL;
    }
    if (page_desc[from].ty != PAGE_FRAME) {
        return -EINVAL;
    }
    if (page_desc[from].owner != current) {
        return -EPERM;
    }
    if (page_desc[to].ty != PAGE_FRAME) {
        return -EINVAL;
    }
    to_owner = page_desc[to].owner;
    if ((to_owner < 1) | (to_owner >= NR_PROCS)) {
        return -EPERM;
    }
    if (is_current_or_embryo_child(to_owner) == 0) {
        return -EPERM;
    }
    page_copy(to, from);
    return 0;
}

// Changes the permissions of an existing leaf mapping (the Appel-Li
// benchmarks exercise exactly this path).
i64 sys_protect_frame(i64 pt, i64 index, i64 pfn, i64 perm) {
    i64 entry;
    i64 d;
    if (page_valid(pt) == 0) {
        return -EINVAL;
    }
    if (page_desc[pt].ty != PAGE_PT) {
        return -EINVAL;
    }
    if (page_desc[pt].owner != current) {
        return -EPERM;
    }
    if (idx_valid(index) == 0) {
        return -EINVAL;
    }
    entry = pages[pt][index];
    if ((entry & PTE_P) == 0) {
        return -EINVAL;
    }
    if ((entry >> PTE_PFN_SHIFT) != pfn) {
        return -EINVAL;
    }
    if (pfn_valid(pfn) == 0) {
        return -EINVAL;
    }
    if (pfn < NR_PAGES) {
        if (page_desc[pfn].ty != PAGE_FRAME) {
            return -EINVAL;
        }
        if (page_desc[pfn].owner != current) {
            return -EPERM;
        }
    } else {
        d = pfn - NR_PAGES;
        if (dma_desc[d].owner != current) {
            return -EPERM;
        }
    }
    if (perm_valid(perm) == 0) {
        return -EINVAL;
    }
    pages[pt][index] = (pfn << PTE_PFN_SHIFT) | perm;
    return 0;
}

// Shared validation for detaching a child table page: the parent entry
// must reference exactly the named child of the right type, owned by the
// caller, whose parent backref agrees.
i64 check_free_table(i64 parent, i64 index, i64 child, i64 parent_ty, i64 child_ty) {
    i64 entry;
    if (page_valid(parent) == 0) {
        return -EINVAL;
    }
    if (page_desc[parent].ty != parent_ty) {
        return -EINVAL;
    }
    if (page_desc[parent].owner != current) {
        return -EPERM;
    }
    if (idx_valid(index) == 0) {
        return -EINVAL;
    }
    entry = pages[parent][index];
    if ((entry & PTE_P) == 0) {
        return -EINVAL;
    }
    if ((entry >> PTE_PFN_SHIFT) != child) {
        return -EINVAL;
    }
    if (page_valid(child) == 0) {
        return -EINVAL;
    }
    if (page_desc[child].ty != child_ty) {
        return -EINVAL;
    }
    if (page_desc[child].owner != current) {
        return -EPERM;
    }
    if (page_desc[child].parent_pn != parent) {
        return -EINVAL;
    }
    if (page_desc[child].parent_idx != index) {
        return -EINVAL;
    }
    return 0;
}

i64 do_free_table(i64 parent, i64 index, i64 child) {
    pages[parent][index] = 0;
    free_page_owned(child);
    return 0;
}

i64 sys_free_pdpt(i64 pml4, i64 index, i64 pdpt) {
    i64 r = check_free_table(pml4, index, pdpt, PAGE_PML4, PAGE_PDPT);
    if (r != 0) {
        return r;
    }
    return do_free_table(pml4, index, pdpt);
}

i64 sys_free_pd(i64 pdpt, i64 index, i64 pd) {
    i64 r = check_free_table(pdpt, index, pd, PAGE_PDPT, PAGE_PD);
    if (r != 0) {
        return r;
    }
    return do_free_table(pdpt, index, pd);
}

i64 sys_free_pt(i64 pd, i64 index, i64 pt) {
    i64 r = check_free_table(pd, index, pt, PAGE_PD, PAGE_PT);
    if (r != 0) {
        return r;
    }
    return do_free_table(pd, index, pt);
}

// Unmaps a leaf. For RAM frames the page is freed; for DMA pages only
// the CPU mapping is cleared (ownership is released when no IOMMU
// mapping remains either).
i64 sys_free_frame(i64 pt, i64 index, i64 pfn) {
    i64 entry;
    i64 d;
    if (page_valid(pt) == 0) {
        return -EINVAL;
    }
    if (page_desc[pt].ty != PAGE_PT) {
        return -EINVAL;
    }
    if (page_desc[pt].owner != current) {
        return -EPERM;
    }
    if (idx_valid(index) == 0) {
        return -EINVAL;
    }
    entry = pages[pt][index];
    if ((entry & PTE_P) == 0) {
        return -EINVAL;
    }
    if ((entry >> PTE_PFN_SHIFT) != pfn) {
        return -EINVAL;
    }
    if (pfn_valid(pfn) == 0) {
        return -EINVAL;
    }
    if (pfn < NR_PAGES) {
        if (page_desc[pfn].ty != PAGE_FRAME) {
            return -EINVAL;
        }
        if (page_desc[pfn].owner != current) {
            return -EPERM;
        }
        if (page_desc[pfn].parent_pn != pt) {
            return -EINVAL;
        }
        if (page_desc[pfn].parent_idx != index) {
            return -EINVAL;
        }
        pages[pt][index] = 0;
        free_page_owned(pfn);
        return 0;
    }
    d = pfn - NR_PAGES;
    if (dma_desc[d].owner != current) {
        return -EPERM;
    }
    if (dma_desc[d].cpu_parent_pn != pt) {
        return -EINVAL;
    }
    if (dma_desc[d].cpu_parent_idx != index) {
        return -EINVAL;
    }
    pages[pt][index] = 0;
    dma_desc[d].cpu_parent_pn = PARENT_NONE;
    dma_desc[d].cpu_parent_idx = PARENT_NONE;
    if (dma_desc[d].io_parent_pn == PARENT_NONE) {
        dma_desc[d].owner = PID_NONE;
        procs[current].nr_dmapages = procs[current].nr_dmapages - 1;
    }
    return 0;
}

// Reclaims one page (RAM or DMA) from a zombie process. Any process may
// call this — no garbage-collector process is needed (paper §4.1).
i64 sys_reclaim_page(i64 pfn) {
    i64 owner;
    i64 ty;
    i64 pty;
    i64 parent;
    i64 pidx;
    i64 d;
    if (pfn_valid(pfn) == 0) {
        return -EINVAL;
    }
    if (pfn < NR_PAGES) {
        ty = page_desc[pfn].ty;
        if ((ty == PAGE_FREE) | (ty == PAGE_RESERVED)) {
            return -EINVAL;
        }
        owner = page_desc[pfn].owner;
        if ((owner < 1) | (owner >= NR_PROCS)) {
            return -EINVAL;
        }
        if (procs[owner].state != PROC_ZOMBIE) {
            return -EPERM;
        }
        // An IOMMU root still referenced by the device table must be
        // detached first (sys_free_iommu_root) — the §6.1 lifetime bug.
        if (ty == PAGE_IOMMU_PML4) {
            if (page_desc[pfn].devid != PARENT_NONE) {
                return -EBUSY;
            }
        }
        // Clear the (unique) referencing entry if it demonstrably still
        // points here: the parent must still be a table of the expected
        // type and its slot must still name this page. Branch-free: when
        // the conditions fail, the store rewrites the old value.
        parent = page_desc[pfn].parent_pn;
        pidx = page_desc[pfn].parent_idx;
        pty = parent_type_for(ty);
        i64 do_clear = (parent != PARENT_NONE) & (pty != PARENT_NONE);
        i64 pslot = parent * do_clear;
        i64 islot = pidx * do_clear;
        i64 pentry = pages[pslot][islot];
        do_clear = do_clear
            & (page_desc[pslot].ty == pty)
            & ((pentry >> PTE_PFN_SHIFT) == pfn);
        pages[pslot][islot] = blend(do_clear, 0, pentry);
        page_desc[pfn].ty = PAGE_FREE;
        page_desc[pfn].owner = PID_NONE;
        page_desc[pfn].parent_pn = PARENT_NONE;
        page_desc[pfn].parent_idx = PARENT_NONE;
        page_desc[pfn].devid = PARENT_NONE;
        freelist_push(pfn);
        procs[owner].nr_pages = procs[owner].nr_pages - 1;
        return 0;
    }
    // DMA page.
    d = pfn - NR_PAGES;
    owner = dma_desc[d].owner;
    if ((owner < 1) | (owner >= NR_PROCS)) {
        return -EINVAL;
    }
    if (procs[owner].state != PROC_ZOMBIE) {
        return -EPERM;
    }
    // All of the zombie's device-table entries must be detached first,
    // or a live device could still DMA into this page after reuse.
    if (procs[owner].nr_devs != 0) {
        return -EBUSY;
    }
    parent = dma_desc[d].cpu_parent_pn;
    pidx = dma_desc[d].cpu_parent_idx;
    i64 cclear = parent != PARENT_NONE;
    i64 cslot = parent * cclear;
    i64 cislot = pidx * cclear;
    i64 centry = pages[cslot][cislot];
    cclear = cclear
        & (page_desc[cslot].ty == PAGE_PT)
        & ((centry >> PTE_PFN_SHIFT) == pfn);
    pages[cslot][cislot] = blend(cclear, 0, centry);
    parent = dma_desc[d].io_parent_pn;
    pidx = dma_desc[d].io_parent_idx;
    i64 ioclear = parent != PARENT_NONE;
    i64 ioslot = parent * ioclear;
    i64 ioislot = pidx * ioclear;
    i64 ioentry = pages[ioslot][ioislot];
    ioclear = ioclear
        & (page_desc[ioslot].ty == PAGE_IOMMU_PT)
        & ((ioentry >> PTE_PFN_SHIFT) == pfn);
    pages[ioslot][ioislot] = blend(ioclear, 0, ioentry);
    dma_desc[d].owner = PID_NONE;
    dma_desc[d].cpu_parent_pn = PARENT_NONE;
    dma_desc[d].cpu_parent_idx = PARENT_NONE;
    dma_desc[d].io_parent_pn = PARENT_NONE;
    dma_desc[d].io_parent_idx = PARENT_NONE;
    procs[owner].nr_dmapages = procs[owner].nr_dmapages - 1;
    return 0;
}
