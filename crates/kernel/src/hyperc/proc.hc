// Process management: the exokernel-style primitive process interface
// (paper §4.2 "Enforcing resource lifetime through reference counters"
// and "Enforcing fine-grained protection").
//
// Process creation is primitive: sys_clone_proc builds a minimal process
// from exactly three caller-chosen free pages (page-table root, virtual
// machine control structure, stack); everything else — address-space
// setup, program loading — happens in user space through further system
// calls, so bugs there are confined to the offending process.

i64 sys_nop() {
    return 0;
}

// Acknowledges (clears) a pending delegated interrupt. Returns 1 if the
// vector was pending, 0 if not.
i64 sys_ack_intr(i64 v) {
    i64 mask;
    if ((v < 0) | (v >= NR_VECTORS)) {
        return -EINVAL;
    }
    if (vectors[v].owner != current) {
        return -EPERM;
    }
    mask = 1 << v;
    if ((procs[current].intr_pending & mask) != 0) {
        procs[current].intr_pending = procs[current].intr_pending & ~mask;
        return 1;
    }
    return 0;
}

i64 sys_clone_proc(i64 pid, i64 pml4, i64 hvm, i64 stack) {
    if (pid_valid(pid) == 0) {
        return -ESRCH;
    }
    if (procs[pid].state != PROC_FREE) {
        return -EBUSY;
    }
    if ((page_valid(pml4) & page_valid(hvm) & page_valid(stack)) == 0) {
        return -EINVAL;
    }
    if ((pml4 == hvm) | (pml4 == stack) | (hvm == stack)) {
        return -EINVAL;
    }
    if ((page_is_free(pml4) & page_is_free(hvm) & page_is_free(stack)) == 0) {
        return -ENOMEM;
    }
    alloc_page_typed(pml4, pid, PAGE_PML4, PARENT_NONE, PARENT_NONE);
    alloc_page_typed(hvm, pid, PAGE_HVM, PARENT_NONE, PARENT_NONE);
    alloc_page_typed(stack, pid, PAGE_STACK, PARENT_NONE, PARENT_NONE);
    // The child inherits the parent's register state and stack (xv6
    // fork-style), with a zeroed return-value slot in the HVM page.
    page_copy(hvm, procs[current].hvm);
    page_copy(stack, procs[current].stack_pn);
    pages[hvm][0] = 0;
    procs[pid].state = PROC_EMBRYO;
    procs[pid].ppid = current;
    procs[pid].pml4 = pml4;
    procs[pid].hvm = hvm;
    procs[pid].stack_pn = stack;
    procs[pid].nr_children = 0;
    // The child inherits the parent's open files (xv6 fork semantics):
    // copy the FD table and take one reference per open descriptor.
    // The loop bound is the (small, constant) FD table size. Branch-free
    // refcount bumps: closed slots bump files[0] by zero.
    i64 fd;
    i64 fslot;
    i64 is_open;
    for (fd = 0; fd < NR_FDS; fd = fd + 1) {
        fslot = procs[current].ofile[fd];
        procs[pid].ofile[fd] = fslot;
        is_open = fslot != NR_FILES;
        fslot = fslot * is_open;
        files[fslot].refcnt = files[fslot].refcnt + is_open;
    }
    procs[pid].nr_fds = procs[current].nr_fds;
    // nr_pages is already 3: alloc_page_typed counted the three pages.
    procs[pid].nr_dmapages = 0;
    procs[pid].nr_devs = 0;
    procs[pid].nr_ports = 0;
    procs[pid].nr_vectors = 0;
    procs[pid].nr_intremaps = 0;
    procs[pid].ipc_from = 0;
    procs[pid].ipc_val = 0;
    procs[pid].ipc_page = PARENT_NONE;
    procs[pid].ipc_size = 0;
    procs[pid].ipc_fd = PARENT_NONE;
    procs[pid].ready_next = PARENT_NONE;
    procs[pid].ready_prev = PARENT_NONE;
    procs[pid].intr_pending = 0;
    procs[current].nr_children = procs[current].nr_children + 1;
    return 0;
}

i64 sys_set_runnable(i64 pid) {
    if (pid_valid(pid) == 0) {
        return -ESRCH;
    }
    if (procs[pid].state != PROC_EMBRYO) {
        return -EINVAL;
    }
    if (procs[pid].ppid != current) {
        return -EPERM;
    }
    procs[pid].state = PROC_RUNNABLE;
    ready_insert(pid);
    return 0;
}

i64 sys_switch(i64 pid) {
    if (pid_valid(pid) == 0) {
        return -ESRCH;
    }
    if (procs[pid].state != PROC_RUNNABLE) {
        return -EINVAL;
    }
    if (procs[current].state == PROC_RUNNING) {
        procs[current].state = PROC_RUNNABLE;
    }
    procs[pid].state = PROC_RUNNING;
    current = pid;
    return 0;
}

i64 sys_kill(i64 pid) {
    i64 t;
    i64 next_cand = PARENT_NONE;
    if (pid_valid(pid) == 0) {
        return -ESRCH;
    }
    if (pid == INIT_PID) {
        return -EPERM;
    }
    if (pid != current) {
        if (procs[pid].ppid != current) {
            return -EPERM;
        }
    }
    t = procs[pid].state;
    if ((t == PROC_FREE) | (t == PROC_ZOMBIE)) {
        return -EINVAL;
    }
    if ((t == PROC_RUNNABLE) | (t == PROC_RUNNING)) {
        next_cand = procs[pid].ready_next;
    }
    if (pid == current) {
        // Killing self needs a runnable successor to hand the CPU to.
        if ((next_cand >= 1) & (next_cand < NR_PROCS) & (next_cand != pid)) {
            if (procs[next_cand].state != PROC_RUNNABLE) {
                if (procs[INIT_PID].state != PROC_RUNNABLE) {
                    return -EAGAIN;
                }
                next_cand = INIT_PID;
            }
        } else {
            if (procs[INIT_PID].state != PROC_RUNNABLE) {
                return -EAGAIN;
            }
            next_cand = INIT_PID;
        }
    }
    if ((t == PROC_RUNNABLE) | (t == PROC_RUNNING)) {
        ready_remove(pid);
    }
    procs[pid].state = PROC_ZOMBIE;
    if (pid == current) {
        procs[next_cand].state = PROC_RUNNING;
        current = next_cand;
    }
    return 0;
}

i64 sys_reap(i64 pid) {
    if (pid_valid(pid) == 0) {
        return -ESRCH;
    }
    if (procs[pid].state != PROC_ZOMBIE) {
        return -EINVAL;
    }
    if (procs[pid].ppid != current) {
        return -EPERM;
    }
    // Every resource class must be fully reclaimed first (§4.2).
    if (procs[pid].nr_children != 0) {
        return -EBUSY;
    }
    if (procs[pid].nr_fds != 0) {
        return -EBUSY;
    }
    if (procs[pid].nr_pages != 0) {
        return -EBUSY;
    }
    if (procs[pid].nr_dmapages != 0) {
        return -EBUSY;
    }
    if (procs[pid].nr_devs != 0) {
        return -EBUSY;
    }
    if (procs[pid].nr_ports != 0) {
        return -EBUSY;
    }
    if (procs[pid].nr_vectors != 0) {
        return -EBUSY;
    }
    if (procs[pid].nr_intremaps != 0) {
        return -EBUSY;
    }
    procs[pid].state = PROC_FREE;
    procs[pid].ppid = PID_NONE;
    procs[pid].pml4 = 0;
    procs[pid].hvm = 0;
    procs[pid].stack_pn = 0;
    procs[current].nr_children = procs[current].nr_children - 1;
    return 0;
}

// Re-parents a child of a zombie to init, so the zombie's nr_children
// can reach zero and the zombie can be reaped (paper Property 1/2).
i64 sys_reparent(i64 pid) {
    i64 parent;
    if (pid_valid(pid) == 0) {
        return -ESRCH;
    }
    if (procs[pid].state == PROC_FREE) {
        return -EINVAL;
    }
    parent = procs[pid].ppid;
    if ((parent < 1) | (parent >= NR_PROCS)) {
        return -EINVAL;
    }
    if (procs[parent].state != PROC_ZOMBIE) {
        return -EPERM;
    }
    procs[pid].ppid = INIT_PID;
    procs[parent].nr_children = procs[parent].nr_children - 1;
    procs[INIT_PID].nr_children = procs[INIT_PID].nr_children + 1;
    return 0;
}
