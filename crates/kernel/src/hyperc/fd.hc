// File descriptors, the system-wide file table, and kernel pipes.
//
// This file contains the paper's flagship example: the finite dup
// (§2.1-§2.3). POSIX dup's lowest-FD search is non-finite, so the caller
// names the new descriptor; the kernel merely checks that it is unused.
//
// Slot availability is checked through *both* the reference count and
// the type tag — the inconsistency between those two checks was the
// first spec bug the declarative layer caught in the paper (§6.1).

// Caller must have bounds-checked f.
i64 file_slot_free(i64 f) {
    return (files[f].refcnt == 0) & (files[f].ty == FILE_NONE);
}

// Drops one reference to file f from the current process's table
// accounting; resets the slot (and any pipe end) when the last
// reference disappears. Caller has bounds-checked f.
i64 file_unref(i64 f) {
    i64 p;
    files[f].refcnt = files[f].refcnt - 1;
    if (files[f].refcnt == 0) {
        if (files[f].ty == FILE_PIPE) {
            p = files[f].value;
            pipes[p].nr_ends = pipes[p].nr_ends - 1;
            if (pipes[p].nr_ends == 0) {
                pipes[p].readp = 0;
                pipes[p].count = 0;
            }
        }
        files[f].ty = FILE_NONE;
        files[f].value = 0;
        files[f].offset = 0;
        files[f].omode = 0;
    }
    return 0;
}

// Creates a file-table entry at a caller-chosen slot and binds it to a
// caller-chosen descriptor. Pipes have their own constructor.
i64 sys_create_file(i64 fd, i64 fileid, i64 ty, i64 value, i64 omode) {
    if (fd_valid(fd) == 0) {
        return -EBADF;
    }
    if (procs[current].ofile[fd] != NR_FILES) {
        return -EBUSY;
    }
    if (file_valid(fileid) == 0) {
        return -EINVAL;
    }
    if (file_slot_free(fileid) == 0) {
        return -ENFILE;
    }
    if ((ty != FILE_INODE) & (ty != FILE_SOCKET)) {
        return -EINVAL;
    }
    if ((omode != OMODE_READ) & (omode != OMODE_WRITE)) {
        return -EINVAL;
    }
    files[fileid].ty = ty;
    files[fileid].refcnt = 1;
    files[fileid].value = value;
    files[fileid].offset = 0;
    files[fileid].omode = omode;
    procs[current].ofile[fd] = fileid;
    procs[current].nr_fds = procs[current].nr_fds + 1;
    return 0;
}

i64 sys_close(i64 fd) {
    i64 f;
    if (fd_valid(fd) == 0) {
        return -EBADF;
    }
    f = procs[current].ofile[fd];
    if (f == NR_FILES) {
        return -EBADF;
    }
    procs[current].ofile[fd] = NR_FILES;
    procs[current].nr_fds = procs[current].nr_fds - 1;
    file_unref(f);
    return 0;
}

// The finite dup of §2.1: dup(oldfd, newfd) with a caller-chosen newfd.
i64 sys_dup(i64 oldfd, i64 newfd) {
    i64 f;
    if (fd_valid(oldfd) == 0) {
        return -EBADF;
    }
    f = procs[current].ofile[oldfd];
    if (f == NR_FILES) {
        return -EBADF;
    }
    if (fd_valid(newfd) == 0) {
        return -EBADF;
    }
    if (procs[current].ofile[newfd] != NR_FILES) {
        return -EBUSY;
    }
    procs[current].ofile[newfd] = f;
    procs[current].nr_fds = procs[current].nr_fds + 1;
    files[f].refcnt = files[f].refcnt + 1;
    return 0;
}

// dup2: like dup but silently closes an open newfd first (POSIX).
i64 sys_dup2(i64 oldfd, i64 newfd) {
    i64 f;
    i64 old_target;
    if (fd_valid(oldfd) == 0) {
        return -EBADF;
    }
    f = procs[current].ofile[oldfd];
    if (f == NR_FILES) {
        return -EBADF;
    }
    if (fd_valid(newfd) == 0) {
        return -EBADF;
    }
    if (oldfd == newfd) {
        return 0;
    }
    old_target = procs[current].ofile[newfd];
    if (old_target != NR_FILES) {
        procs[current].ofile[newfd] = NR_FILES;
        procs[current].nr_fds = procs[current].nr_fds - 1;
        file_unref(old_target);
    }
    procs[current].ofile[newfd] = f;
    procs[current].nr_fds = procs[current].nr_fds + 1;
    files[f].refcnt = files[f].refcnt + 1;
    return 0;
}

// Creates a pipe: two file entries (read end, write end) bound to two
// descriptors, all four slots caller-chosen (finite interface).
i64 sys_pipe(i64 fd0, i64 fileid0, i64 fd1, i64 fileid1, i64 pipeid) {
    if ((fd_valid(fd0) & fd_valid(fd1)) == 0) {
        return -EBADF;
    }
    if (fd0 == fd1) {
        return -EINVAL;
    }
    if (procs[current].ofile[fd0] != NR_FILES) {
        return -EBUSY;
    }
    if (procs[current].ofile[fd1] != NR_FILES) {
        return -EBUSY;
    }
    if ((file_valid(fileid0) & file_valid(fileid1)) == 0) {
        return -EINVAL;
    }
    if (fileid0 == fileid1) {
        return -EINVAL;
    }
    if (file_slot_free(fileid0) == 0) {
        return -ENFILE;
    }
    if (file_slot_free(fileid1) == 0) {
        return -ENFILE;
    }
    if ((pipeid < 0) | (pipeid >= NR_PIPES)) {
        return -EINVAL;
    }
    if (pipes[pipeid].nr_ends != 0) {
        return -EBUSY;
    }
    files[fileid0].ty = FILE_PIPE;
    files[fileid0].refcnt = 1;
    files[fileid0].value = pipeid;
    files[fileid0].offset = 0;
    files[fileid0].omode = OMODE_READ;
    files[fileid1].ty = FILE_PIPE;
    files[fileid1].refcnt = 1;
    files[fileid1].value = pipeid;
    files[fileid1].offset = 0;
    files[fileid1].omode = OMODE_WRITE;
    procs[current].ofile[fd0] = fileid0;
    procs[current].ofile[fd1] = fileid1;
    procs[current].nr_fds = procs[current].nr_fds + 2;
    pipes[pipeid].nr_ends = 2;
    pipes[pipeid].readp = 0;
    pipes[pipeid].count = 0;
    return 0;
}

// Reads exactly `len` words from the pipe behind `fd` into the caller's
// frame `pn` at `offset`. All-or-nothing: returns -EAGAIN if fewer than
// `len` words are buffered (0 at EOF), keeping retry logic in user
// space and the kernel handler finite.
i64 sys_pipe_read(i64 fd, i64 pn, i64 offset, i64 len) {
    i64 f;
    i64 p;
    i64 i;
    i64 rp;
    if (fd_valid(fd) == 0) {
        return -EBADF;
    }
    f = procs[current].ofile[fd];
    if (f == NR_FILES) {
        return -EBADF;
    }
    if (files[f].ty != FILE_PIPE) {
        return -EBADF;
    }
    if (files[f].omode != OMODE_READ) {
        return -EBADF;
    }
    if (page_valid(pn) == 0) {
        return -EINVAL;
    }
    if (page_desc[pn].ty != PAGE_FRAME) {
        return -EINVAL;
    }
    if (page_desc[pn].owner != current) {
        return -EPERM;
    }
    if ((len < 1) | (len > PIPE_WORDS)) {
        return -EINVAL;
    }
    if ((offset < 0) | (offset > PAGE_WORDS - len)) {
        return -EINVAL;
    }
    p = files[f].value;
    if (len > pipes[p].count) {
        if (pipes[p].nr_ends < 2) {
            return 0; // EOF: writer closed, nothing buffered to satisfy.
        }
        return -EAGAIN;
    }
    rp = pipes[p].readp;
    for (i = 0; i < len; i = i + 1) {
        pages[pn][offset + i] = pipes[p].data[(rp + i) & (PIPE_WORDS - 1)];
    }
    pipes[p].readp = (rp + len) & (PIPE_WORDS - 1);
    pipes[p].count = pipes[p].count - len;
    return len;
}

// Writes exactly `len` words into the pipe from the caller's frame.
i64 sys_pipe_write(i64 fd, i64 pn, i64 offset, i64 len) {
    i64 f;
    i64 p;
    i64 i;
    i64 wp;
    if (fd_valid(fd) == 0) {
        return -EBADF;
    }
    f = procs[current].ofile[fd];
    if (f == NR_FILES) {
        return -EBADF;
    }
    if (files[f].ty != FILE_PIPE) {
        return -EBADF;
    }
    if (files[f].omode != OMODE_WRITE) {
        return -EBADF;
    }
    if (page_valid(pn) == 0) {
        return -EINVAL;
    }
    if (page_desc[pn].ty != PAGE_FRAME) {
        return -EINVAL;
    }
    if (page_desc[pn].owner != current) {
        return -EPERM;
    }
    if ((len < 1) | (len > PIPE_WORDS)) {
        return -EINVAL;
    }
    if ((offset < 0) | (offset > PAGE_WORDS - len)) {
        return -EINVAL;
    }
    p = files[f].value;
    if (pipes[p].nr_ends < 2) {
        return -EPIPE; // no reader
    }
    if (len > PIPE_WORDS - pipes[p].count) {
        return -EAGAIN;
    }
    wp = pipes[p].readp + pipes[p].count;
    for (i = 0; i < len; i = i + 1) {
        pipes[p].data[(wp + i) & (PIPE_WORDS - 1)] = pages[pn][offset + i];
    }
    pipes[p].count = pipes[p].count + len;
    return len;
}
