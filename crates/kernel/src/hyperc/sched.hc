// Scheduling and time.
//
// The ready list is a suggestion (paper §4.2): sys_yield follows the
// next-pointer only after validating that the suggested process really
// is runnable; an invalid suggestion simply keeps the caller running.

i64 sys_yield() {
    i64 cand = procs[current].ready_next;
    if ((cand >= 1) & (cand < NR_PROCS) & (cand != current)) {
        if (procs[cand].state == PROC_RUNNABLE) {
            if (procs[current].state == PROC_RUNNING) {
                procs[current].state = PROC_RUNNABLE;
            }
            procs[cand].state = PROC_RUNNING;
            current = cand;
        }
    }
    return 0;
}

i64 sys_uptime() {
    return uptime;
}
