// Synchronous IPC with page and file-descriptor transfer.
//
// A receiver declares willingness to receive (sys_recv) and blocks; a
// sender copies at most one page of data, optionally grants one file
// descriptor, writes the message registers into the receiver's HVM page
// (the register state the hardware reloads on vmresume), and wakes it.
// sys_reply_wait combines a send with an immediate receive and donates
// the CPU to the woken process — the server fast path.

// A runnable process to hand the CPU to, preferring the ready-list
// suggestion and falling back to init; -1 if nobody can run.
i64 pick_successor() {
    i64 cand = procs[current].ready_next;
    if ((cand >= 1) & (cand < NR_PROCS) & (cand != current)) {
        if (procs[cand].state == PROC_RUNNABLE) {
            return cand;
        }
    }
    if (procs[INIT_PID].state == PROC_RUNNABLE) {
        return INIT_PID;
    }
    return -1;
}

i64 sys_recv(i64 from, i64 pn, i64 fd_slot) {
    i64 succ;
    if (from != 0) {
        if (pid_valid(from) == 0) {
            return -ESRCH;
        }
    }
    if (pn != PARENT_NONE) {
        if (page_valid(pn) == 0) {
            return -EINVAL;
        }
        if (page_desc[pn].ty != PAGE_FRAME) {
            return -EINVAL;
        }
        if (page_desc[pn].owner != current) {
            return -EPERM;
        }
    }
    if (fd_slot != PARENT_NONE) {
        if (fd_valid(fd_slot) == 0) {
            return -EBADF;
        }
        if (procs[current].ofile[fd_slot] != NR_FILES) {
            return -EBUSY;
        }
    }
    // Blocking requires someone else to run (a recv that would halt the
    // machine is refused rather than deadlocking it).
    succ = pick_successor();
    if (succ == -1) {
        return -EAGAIN;
    }
    procs[current].ipc_from = from;
    procs[current].ipc_page = pn;
    procs[current].ipc_fd = fd_slot;
    procs[current].ipc_val = 0;
    procs[current].ipc_size = 0;
    ready_remove(current);
    procs[current].state = PROC_SLEEPING;
    procs[succ].state = PROC_RUNNING;
    current = succ;
    return 0;
}

// Validation common to sys_send and sys_reply_wait; returns 0 if the
// message can be delivered to `pid` in full.
i64 check_send(i64 pid, i64 pn, i64 size, i64 fd) {
    i64 rp;
    i64 rfd;
    if (pid_valid(pid) == 0) {
        return -ESRCH;
    }
    if (pid == current) {
        return -EINVAL;
    }
    if (procs[pid].state != PROC_SLEEPING) {
        return -EAGAIN;
    }
    if (procs[pid].ipc_from != 0) {
        if (procs[pid].ipc_from != current) {
            return -EAGAIN;
        }
    }
    if ((size < 0) | (size > PAGE_WORDS)) {
        return -EINVAL;
    }
    if (size > 0) {
        if (page_valid(pn) == 0) {
            return -EINVAL;
        }
        if (page_desc[pn].ty != PAGE_FRAME) {
            return -EINVAL;
        }
        if (page_desc[pn].owner != current) {
            return -EPERM;
        }
        rp = procs[pid].ipc_page;
        if (rp == PARENT_NONE) {
            return -EINVAL;
        }
        // Re-validate the receive buffer: the receiver owns it and it is
        // still a frame (it blocked, so it could not have changed it,
        // but the kernel never assumes).
        if (page_valid(rp) == 0) {
            return -EINVAL;
        }
        if (page_desc[rp].ty != PAGE_FRAME) {
            return -EINVAL;
        }
        if (page_desc[rp].owner != pid) {
            return -EINVAL;
        }
    }
    if (fd != PARENT_NONE) {
        if (fd_valid(fd) == 0) {
            return -EBADF;
        }
        if (procs[current].ofile[fd] == NR_FILES) {
            return -EBADF;
        }
        rfd = procs[pid].ipc_fd;
        if (rfd == PARENT_NONE) {
            return -EINVAL;
        }
        if (procs[pid].ofile[rfd] != NR_FILES) {
            return -EBUSY;
        }
    }
    return 0;
}

// Performs the (already fully validated) delivery to `pid`.
i64 do_deliver(i64 pid, i64 val, i64 pn, i64 size, i64 fd) {
    i64 i;
    i64 rp;
    i64 rfd;
    i64 f;
    i64 rhvm;
    i64 got_fd = 0;
    if (size > 0) {
        rp = procs[pid].ipc_page;
        for (i = 0; i < size; i = i + 1) {
            pages[rp][i] = pages[pn][i];
        }
    }
    if (fd != PARENT_NONE) {
        f = procs[current].ofile[fd];
        rfd = procs[pid].ipc_fd;
        procs[pid].ofile[rfd] = f;
        files[f].refcnt = files[f].refcnt + 1;
        procs[pid].nr_fds = procs[pid].nr_fds + 1;
        got_fd = 1;
    }
    procs[pid].ipc_val = val;
    procs[pid].ipc_size = size;
    procs[pid].ipc_from = current;
    // Message registers land in the receiver's HVM page — the register
    // file the hardware reloads when the receiver resumes.
    rhvm = procs[pid].hvm;
    pages[rhvm][0] = val;
    pages[rhvm][1] = size;
    pages[rhvm][2] = current;
    pages[rhvm][3] = got_fd;
    return 0;
}

i64 sys_send(i64 pid, i64 val, i64 pn, i64 size, i64 fd) {
    i64 r = check_send(pid, pn, size, fd);
    if (r != 0) {
        return r;
    }
    do_deliver(pid, val, pn, size, fd);
    procs[pid].state = PROC_RUNNABLE;
    ready_insert(pid);
    return 0;
}

// Reply to `pid` and atomically wait for the next message, donating the
// CPU to the woken process. `pn` doubles as the reply source and the
// next receive buffer.
i64 sys_reply_wait(i64 pid, i64 val, i64 pn, i64 size, i64 fd) {
    i64 r = check_send(pid, pn, size, fd);
    if (r != 0) {
        return r;
    }
    // Validate the receive side before mutating anything.
    if (pn != PARENT_NONE) {
        if (page_valid(pn) == 0) {
            return -EINVAL;
        }
        if (page_desc[pn].ty != PAGE_FRAME) {
            return -EINVAL;
        }
        if (page_desc[pn].owner != current) {
            return -EPERM;
        }
    }
    do_deliver(pid, val, pn, size, fd);
    // Wake the target into the ready list, then block ourselves and hand
    // it the CPU directly.
    procs[pid].state = PROC_RUNNABLE;
    ready_insert(pid);
    procs[current].ipc_from = 0;
    procs[current].ipc_page = pn;
    procs[current].ipc_fd = PARENT_NONE;
    procs[current].ipc_val = 0;
    procs[current].ipc_size = 0;
    ready_remove(current);
    procs[current].state = PROC_SLEEPING;
    procs[pid].state = PROC_RUNNING;
    current = pid;
    return 0;
}

// Grants a copy of one of the caller's descriptors to an embryo child
// (the shell wires pipelines with this before sys_set_runnable).
i64 sys_transfer_fd(i64 pid, i64 fd, i64 tofd) {
    i64 f;
    if (pid_valid(pid) == 0) {
        return -ESRCH;
    }
    if (procs[pid].state != PROC_EMBRYO) {
        return -EINVAL;
    }
    if (procs[pid].ppid != current) {
        return -EPERM;
    }
    if (fd_valid(fd) == 0) {
        return -EBADF;
    }
    f = procs[current].ofile[fd];
    if (f == NR_FILES) {
        return -EBADF;
    }
    if (fd_valid(tofd) == 0) {
        return -EBADF;
    }
    if (procs[pid].ofile[tofd] != NR_FILES) {
        return -EBUSY;
    }
    procs[pid].ofile[tofd] = f;
    files[f].refcnt = files[f].refcnt + 1;
    procs[pid].nr_fds = procs[pid].nr_fds + 1;
    return 0;
}
