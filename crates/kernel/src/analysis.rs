//! Static-analysis configuration for the kernel image.
//!
//! The HIR analysis pipeline (`hk_hir::analysis`) reasons about each
//! handler *under the representation invariant*, exactly like the
//! symbolic executor does: a load from a kernel table yields a value in
//! the range `repinv.hc` guarantees for that field. This module is the
//! Rust mirror of `repinv.hc` — every [`FieldRangeRule`] /
//! [`CondRangeRule`] below corresponds to one `inv_range` / `inv_opt` /
//! implication line there, from the same `hk-abi` constants.
//!
//! Keeping the two in sync is checked end to end: the
//! `handlers_pass_static_analysis` test runs the full lint suite over
//! all 50 handlers plus `check_rep_invariant` and requires zero
//! unsuppressed findings, which only holds when these ranges are at
//! least as strong as what the handlers' validation code relies on.

use hk_abi::{file_type, intremap_state, KernelParams, PARENT_NONE};
use hk_hir::analysis::{AnalysisConfig, CondKind, CondRangeRule, FieldRangeRule};

fn range(global: &str, field: &str, lo: i64, hi: i64, min_index: u64) -> FieldRangeRule {
    FieldRangeRule {
        global: global.to_string(),
        field: field.to_string(),
        lo,
        hi,
        min_index,
    }
}

/// `-1` or `[0, hi)` — the Rust side of `inv_opt`.
fn opt(global: &str, field: &str, hi: i64, min_index: u64) -> FieldRangeRule {
    range(global, field, PARENT_NONE, hi - 1, min_index)
}

/// When `global[i].cond_field != PARENT_NONE`, the paired index field is
/// a usable slot in `[0, hi)`.
fn parent_pair(global: &str, cond_field: &str, target_field: &str, hi: i64) -> CondRangeRule {
    CondRangeRule {
        global: global.to_string(),
        cond_field: cond_field.to_string(),
        kind: CondKind::NeConst(PARENT_NONE),
        target_field: target_field.to_string(),
        lo: 0,
        hi: hi - 1,
    }
}

/// The analysis configuration for a kernel compiled at `params`:
/// field-range rules mirroring `repinv.hc`, and no allowlist — the
/// kernel sources are expected to pass the full suite clean.
pub fn analysis_config(params: &KernelParams) -> AnalysisConfig {
    let nr_procs = params.nr_procs as i64;
    let nr_fds = params.nr_fds as i64;
    let nr_files = params.nr_files as i64;
    let nr_pages = params.nr_pages as i64;
    let nr_devs = params.nr_devs as i64;
    let nr_vectors = params.nr_vectors as i64;
    let nr_pipes = params.nr_pipes as i64;
    let page_words = params.page_words as i64;
    let pipe_words = params.pipe_words as i64;

    let field_ranges = vec![
        range("current", "value", 1, nr_procs - 1, 0),
        opt("freelist_head", "value", nr_pages, 0),
        // procs: the invariant covers slots [1, NR_PROCS) only; slot 0
        // is never a valid process, so loads from it stay unconstrained.
        range("procs", "state", 0, 5, 1),
        range("procs", "ppid", 0, nr_procs - 1, 1),
        range("procs", "pml4", 0, nr_pages - 1, 1),
        range("procs", "hvm", 0, nr_pages - 1, 1),
        range("procs", "stack_pn", 0, nr_pages - 1, 1),
        range("procs", "ofile", 0, nr_files, 1),
        range("procs", "ipc_from", 0, nr_procs - 1, 1),
        opt("procs", "ipc_page", nr_pages, 1),
        opt("procs", "ipc_fd", nr_fds, 1),
        opt("procs", "ready_next", nr_procs, 1),
        opt("procs", "ready_prev", nr_procs, 1),
        range("files", "ty", 0, 3, 0),
        range("files", "omode", 0, 1, 0),
        range("page_desc", "ty", 0, 12, 0),
        range("page_desc", "owner", 0, nr_procs - 1, 0),
        opt("page_desc", "parent_pn", nr_pages, 0),
        opt("page_desc", "parent_idx", page_words, 0),
        opt("page_desc", "devid", nr_devs, 0),
        opt("page_desc", "free_next", nr_pages, 0),
        opt("page_desc", "free_prev", nr_pages, 0),
        range("dma_desc", "owner", 0, nr_procs - 1, 0),
        opt("dma_desc", "cpu_parent_pn", nr_pages, 0),
        opt("dma_desc", "cpu_parent_idx", page_words, 0),
        opt("dma_desc", "io_parent_pn", nr_pages, 0),
        opt("dma_desc", "io_parent_idx", page_words, 0),
        range("devs", "owner", 0, nr_procs - 1, 0),
        opt("devs", "root", nr_pages, 0),
        range("vectors", "owner", 0, nr_procs - 1, 0),
        range("io_ports", "owner", 0, nr_procs - 1, 0),
        range("intremaps", "state", 0, 1, 0),
        range("pipes", "readp", 0, pipe_words - 1, 0),
        range("pipes", "count", 0, pipe_words, 0),
    ];

    let cond_ranges = vec![
        // A pipe handle indexes a real pipe slot.
        CondRangeRule {
            global: "files".to_string(),
            cond_field: "ty".to_string(),
            kind: CondKind::EqConst(file_type::PIPE),
            target_field: "value".to_string(),
            lo: 0,
            hi: nr_pipes - 1,
        },
        // A recorded parent slot is a usable slot.
        parent_pair("page_desc", "parent_pn", "parent_idx", page_words),
        parent_pair("dma_desc", "cpu_parent_pn", "cpu_parent_idx", page_words),
        parent_pair("dma_desc", "io_parent_pn", "io_parent_idx", page_words),
        // An active interrupt remap names a real device/vector/owner.
        CondRangeRule {
            global: "intremaps".to_string(),
            cond_field: "state".to_string(),
            kind: CondKind::EqConst(intremap_state::ACTIVE),
            target_field: "devid".to_string(),
            lo: 0,
            hi: nr_devs - 1,
        },
        CondRangeRule {
            global: "intremaps".to_string(),
            cond_field: "state".to_string(),
            kind: CondKind::EqConst(intremap_state::ACTIVE),
            target_field: "vector".to_string(),
            lo: 0,
            hi: nr_vectors - 1,
        },
        CondRangeRule {
            global: "intremaps".to_string(),
            cond_field: "state".to_string(),
            kind: CondKind::EqConst(intremap_state::ACTIVE),
            target_field: "owner".to_string(),
            lo: 1,
            hi: nr_procs - 1,
        },
    ];

    AnalysisConfig {
        field_ranges,
        cond_ranges,
        ..AnalysisConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelImage;
    use hk_abi::Sysno;
    use hk_hir::analysis::analyze_module;

    /// The acceptance gate for the kernel sources: every handler (plus
    /// the representation invariant) passes the full static-analysis
    /// suite with zero unsuppressed findings, and every loop gets a
    /// proven constant bound.
    #[test]
    fn handlers_pass_static_analysis() {
        let params = KernelParams::verification();
        let image = KernelImage::build(params).expect("kernel build");
        let mut roots: Vec<hk_hir::FuncId> = Sysno::ALL.iter().map(|&s| image.handler(s)).collect();
        roots.push(image.rep_invariant);
        roots.sort_unstable();
        roots.dedup();
        let config = analysis_config(&params);
        let result = analyze_module(&image.module, &roots, &config);
        let findings: Vec<String> = result
            .unsuppressed()
            .map(|d| d.render(&image.module))
            .collect();
        assert!(findings.is_empty(), "{}", findings.join("\n"));
        assert!(!result.bounds.is_empty(), "loop bounds must be exported");
    }

    /// Each finding a handler *would* produce carries a usable source
    /// span: compile a broken variant and check the location.
    #[test]
    fn findings_point_into_hyperc_sources() {
        let params = KernelParams::verification();
        let mut sources: Vec<(&'static str, String)> = crate::image::SOURCES
            .iter()
            .map(|&(f, s)| (f, s.to_string()))
            .collect();
        // Append a handler-like function with an unvalidated index.
        let broken = "i64 poke_unchecked(i64 pn) {\n    return page_desc[pn].ty;\n}\n";
        sources.push(("broken.hc", broken.to_string()));
        let image = KernelImage::build_with_sources(params, sources).expect("build");
        let root = image.module.func("poke_unchecked").unwrap();
        let result = analyze_module(&image.module, &[root], &analysis_config(&params));
        let diag = result
            .unsuppressed()
            .find(|d| d.code == hk_hir::analysis::DiagnosticCode::PossibleOobIndex)
            .expect("oob finding");
        let rendered = diag.render(&image.module);
        assert!(
            rendered.starts_with("broken.hc:2:12:"),
            "bad span: {rendered}"
        );
    }
}
