//! Kernel data-structure layout: the global arrays-of-structs that make
//! up all kernel state, and the constant environment injected into the
//! HyperC compiler.
//!
//! Hyperkernel deliberately keeps *all* kernel state in fixed-size arrays
//! (paper §4.1): the verifier translates each field into an uninterpreted
//! function, and explicit resource management means handlers never search
//! these tables. The two linked lists the kernel does keep — the free
//! list of pages and the ready list of processes — are embedded in
//! `page_desc`/`procs` as suggestion-only links, validated at use
//! (paper §4.2 "Validating linked data structures").

use hk_abi::KernelParams;
use hk_hir::{FieldDecl, GlobalDecl, Module};

fn field(name: &str) -> FieldDecl {
    FieldDecl {
        name: name.to_string(),
        elems: 1,
        volatile: false,
    }
}

fn array_field(name: &str, elems: u64) -> FieldDecl {
    FieldDecl {
        name: name.to_string(),
        elems,
        volatile: false,
    }
}

/// Declares every kernel global in `module`, in a fixed order (the order
/// determines the physical layout the link checker validates).
pub fn declare_globals(module: &mut Module, params: &KernelParams) {
    module.declare_scalar("current");
    module.declare_scalar("uptime");
    module.declare_scalar("freelist_head");
    module.declare_global(GlobalDecl {
        name: "procs".into(),
        elems: params.nr_procs,
        fields: vec![
            field("state"),
            field("ppid"),
            field("pml4"),
            field("hvm"),
            field("stack_pn"),
            field("nr_children"),
            field("nr_fds"),
            field("nr_pages"),
            field("nr_dmapages"),
            field("nr_devs"),
            field("nr_ports"),
            field("nr_vectors"),
            field("nr_intremaps"),
            array_field("ofile", params.nr_fds),
            field("ipc_from"),
            field("ipc_val"),
            field("ipc_page"),
            field("ipc_size"),
            field("ipc_fd"),
            field("ready_next"),
            field("ready_prev"),
            field("intr_pending"),
        ],
    });
    module.declare_global(GlobalDecl {
        name: "files".into(),
        elems: params.nr_files,
        fields: vec![
            field("ty"),
            field("refcnt"),
            field("value"),
            field("offset"),
            field("omode"),
        ],
    });
    module.declare_global(GlobalDecl {
        name: "page_desc".into(),
        elems: params.nr_pages,
        fields: vec![
            field("ty"),
            field("owner"),
            field("parent_pn"),
            field("parent_idx"),
            field("devid"),
            field("free_next"),
            field("free_prev"),
        ],
    });
    module.declare_global(GlobalDecl {
        name: "pages".into(),
        elems: params.nr_pages,
        fields: vec![array_field("word", params.page_words)],
    });
    module.declare_global(GlobalDecl {
        name: "dma_desc".into(),
        elems: params.nr_dmapages,
        fields: vec![
            field("owner"),
            field("cpu_parent_pn"),
            field("cpu_parent_idx"),
            field("io_parent_pn"),
            field("io_parent_idx"),
        ],
    });
    // Note: DMA page *contents* are not a kernel global at all. The kernel
    // never reads or writes them — devices own that memory (Figure 6), and
    // treating DMA writes as no-ops with respect to kernel state is
    // exactly the paper's §3.1 argument. User processes reach DMA pages
    // only through their own page tables.
    module.declare_global(GlobalDecl {
        name: "devs".into(),
        elems: params.nr_devs,
        fields: vec![field("owner"), field("root"), field("intremap_refcnt")],
    });
    module.declare_global(GlobalDecl {
        name: "vectors".into(),
        elems: params.nr_vectors,
        fields: vec![field("owner"), field("intremap_refcnt")],
    });
    module.declare_global(GlobalDecl {
        name: "io_ports".into(),
        elems: params.nr_ports,
        fields: vec![field("owner")],
    });
    module.declare_global(GlobalDecl {
        name: "intremaps".into(),
        elems: params.nr_intremaps,
        fields: vec![
            field("state"),
            field("devid"),
            field("vector"),
            field("owner"),
        ],
    });
    module.declare_global(GlobalDecl {
        name: "pipes".into(),
        elems: params.nr_pipes,
        fields: vec![
            field("nr_ends"),
            field("readp"),
            field("count"),
            array_field("data", params.pipe_words),
        ],
    });
}

/// The constant environment handed to the HyperC compiler. Everything the
/// kernel sources name symbolically is defined here, from one source of
/// truth (`hk-abi`).
pub fn constants(params: &KernelParams) -> Vec<(&'static str, i64)> {
    use hk_abi::*;
    vec![
        ("NR_PROCS", params.nr_procs as i64),
        ("NR_FDS", params.nr_fds as i64),
        ("NR_FILES", params.nr_files as i64),
        ("NR_PAGES", params.nr_pages as i64),
        ("NR_DMAPAGES", params.nr_dmapages as i64),
        ("NR_PFNS", params.nr_pfns() as i64),
        ("NR_DEVS", params.nr_devs as i64),
        ("NR_PORTS", params.nr_ports as i64),
        ("NR_VECTORS", params.nr_vectors as i64),
        ("NR_INTREMAPS", params.nr_intremaps as i64),
        ("NR_PIPES", params.nr_pipes as i64),
        ("PAGE_WORDS", params.page_words as i64),
        ("PIPE_WORDS", params.pipe_words as i64),
        ("PID_NONE", PID_NONE),
        ("INIT_PID", INIT_PID),
        ("PROC_FREE", proc_state::FREE),
        ("PROC_EMBRYO", proc_state::EMBRYO),
        ("PROC_RUNNABLE", proc_state::RUNNABLE),
        ("PROC_RUNNING", proc_state::RUNNING),
        ("PROC_SLEEPING", proc_state::SLEEPING),
        ("PROC_ZOMBIE", proc_state::ZOMBIE),
        ("PAGE_FREE", page_type::FREE),
        ("PAGE_RESERVED", page_type::RESERVED),
        ("PAGE_PML4", page_type::PML4),
        ("PAGE_PDPT", page_type::PDPT),
        ("PAGE_PD", page_type::PD),
        ("PAGE_PT", page_type::PT),
        ("PAGE_FRAME", page_type::FRAME),
        ("PAGE_STACK", page_type::STACK),
        ("PAGE_HVM", page_type::HVM),
        ("PAGE_IOMMU_PML4", page_type::IOMMU_PML4),
        ("PAGE_IOMMU_PDPT", page_type::IOMMU_PDPT),
        ("PAGE_IOMMU_PD", page_type::IOMMU_PD),
        ("PAGE_IOMMU_PT", page_type::IOMMU_PT),
        ("FILE_NONE", file_type::NONE),
        ("FILE_PIPE", file_type::PIPE),
        ("FILE_INODE", file_type::INODE),
        ("FILE_SOCKET", file_type::SOCKET),
        ("INTREMAP_FREE", intremap_state::FREE),
        ("INTREMAP_ACTIVE", intremap_state::ACTIVE),
        ("OMODE_READ", omode::READ),
        ("OMODE_WRITE", omode::WRITE),
        ("DEV_ROOT_NONE", DEV_ROOT_NONE),
        ("PARENT_NONE", PARENT_NONE),
        ("PTE_P", PTE_P),
        ("PTE_W", PTE_W),
        ("PTE_U", PTE_U),
        ("PTE_PERM_MASK", PTE_PERM_MASK),
        ("PTE_PFN_SHIFT", PTE_PFN_SHIFT),
        ("EPERM", EPERM),
        ("ESRCH", ESRCH),
        ("EBADF", EBADF),
        ("EAGAIN", EAGAIN),
        ("ENOMEM", ENOMEM),
        ("EBUSY", EBUSY),
        ("ENODEV", ENODEV),
        ("EINVAL", EINVAL),
        ("ENFILE", ENFILE),
        ("EPIPE", EPIPE),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_declare_cleanly() {
        let params = KernelParams::verification();
        let mut m = Module::new();
        declare_globals(&mut m, &params);
        assert!(m.global("procs").is_some());
        assert!(m.global("pages").is_some());
        assert!(m.global("dma_desc").is_some());
        // ofile is nested inside procs.
        let procs = m.global_decl(m.global("procs").unwrap());
        assert_eq!(procs.elems, params.nr_procs);
        let ofile = procs.field("ofile").unwrap();
        assert_eq!(procs.fields[ofile.0 as usize].elems, params.nr_fds);
    }

    #[test]
    fn constant_names_unique() {
        let params = KernelParams::verification();
        let consts = constants(&params);
        let mut names: Vec<&str> = consts.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn kernel_state_fits_reasonable_size() {
        let params = KernelParams::production();
        let mut m = Module::new();
        declare_globals(&mut m, &params);
        // Kernel metadata (excluding page contents) should be far smaller
        // than the page regions.
        let total = m.total_words();
        let pages = params.nr_pages * params.page_words;
        assert!(total > pages, "pages global dominates");
        assert!(total < 3 * pages, "metadata should not dwarf page memory");
    }
}
