//! Behavioural tests for the 50 trap handlers, driven through the HIR
//! interpreter on a booted machine — the concrete counterpart of the
//! verification suite. After every mutating call the kernel's own
//! representation invariant is re-checked.

use hk_abi::*;
use hk_kernel::{boot::boot, Kernel};
use hk_vm::paging::{join_va, AccessKind};
use hk_vm::CostModel;

struct K {
    kernel: Kernel,
    machine: hk_vm::Machine,
}

/// A mid-size profile for behavioural tests: big enough that the test
/// constants (page numbers up to 16, fds up to 7, vector 5, ...) fit.
fn test_params() -> KernelParams {
    KernelParams {
        nr_procs: 8,
        nr_fds: 8,
        nr_files: 8,
        nr_pages: 32,
        nr_dmapages: 4,
        nr_devs: 4,
        nr_ports: 8,
        nr_vectors: 8,
        nr_intremaps: 4,
        nr_pipes: 4,
        page_words: 8,
        pipe_words: 4,
    }
}

impl K {
    fn new() -> K {
        let kernel = Kernel::new(test_params()).unwrap();
        let mut machine = kernel.new_machine(CostModel::default_model());
        boot(&kernel, &mut machine);
        K { kernel, machine }
    }

    fn sys(&mut self, s: Sysno, args: &[i64]) -> i64 {
        let r = self.kernel.trap(&mut self.machine, s, args).expect("trap");
        assert!(
            self.kernel.check_invariant(&mut self.machine).unwrap(),
            "invariant violated after {s}({args:?}) -> {r}"
        );
        r
    }

    fn get(&self, g: &str, i: u64, f: &str, s: u64) -> i64 {
        self.kernel.read_global(&self.machine, g, i, f, s)
    }

    fn current(&self) -> i64 {
        self.kernel.current(&self.machine)
    }

    /// Clone a child of `current` with the given three pages and make it
    /// runnable.
    fn spawn(&mut self, pid: i64, pml4: i64, hvm: i64, stack: i64) {
        assert_eq!(self.sys(Sysno::CloneProc, &[pid, pml4, hvm, stack]), 0);
        assert_eq!(self.sys(Sysno::SetRunnable, &[pid]), 0);
    }
}

// ---------------------------------------------------------------------
// Processes.
// ---------------------------------------------------------------------

#[test]
fn nop_and_uptime() {
    let mut k = K::new();
    assert_eq!(k.sys(Sysno::Nop, &[]), 0);
    assert_eq!(k.sys(Sysno::Uptime, &[]), 0);
    assert_eq!(k.sys(Sysno::TrapTimer, &[]), 0);
    assert_eq!(k.sys(Sysno::Uptime, &[]), 1);
}

#[test]
fn clone_lifecycle() {
    let mut k = K::new();
    // Bad arguments first.
    assert_eq!(k.sys(Sysno::CloneProc, &[0, 3, 4, 5]), -ESRCH);
    assert_eq!(k.sys(Sysno::CloneProc, &[2, 3, 3, 5]), -EINVAL);
    assert_eq!(k.sys(Sysno::CloneProc, &[2, 0, 4, 5]), -ENOMEM); // page 0 is init's pml4
    assert_eq!(k.sys(Sysno::CloneProc, &[1, 3, 4, 5]), -EBUSY); // init exists
                                                                // Success.
    assert_eq!(k.sys(Sysno::CloneProc, &[2, 3, 4, 5]), 0);
    assert_eq!(k.get("procs", 2, "state", 0), proc_state::EMBRYO);
    assert_eq!(k.get("procs", 2, "ppid", 0), 1);
    assert_eq!(k.get("procs", 2, "nr_pages", 0), 3);
    assert_eq!(k.get("procs", 1, "nr_children", 0), 1);
    assert_eq!(k.get("page_desc", 3, "ty", 0), page_type::PML4);
    assert_eq!(k.get("page_desc", 3, "owner", 0), 2);
    // Same pages cannot be reused.
    assert_eq!(k.sys(Sysno::CloneProc, &[3, 3, 6, 7]), -ENOMEM);
    // Reap requires zombie.
    assert_eq!(k.sys(Sysno::Reap, &[2]), -EINVAL);
    // Kill the embryo child, reclaim its pages, reap it.
    assert_eq!(k.sys(Sysno::Kill, &[2]), 0);
    assert_eq!(k.get("procs", 2, "state", 0), proc_state::ZOMBIE);
    assert_eq!(k.sys(Sysno::Reap, &[2]), -EBUSY); // pages not reclaimed
    for pn in [3, 4, 5] {
        assert_eq!(k.sys(Sysno::ReclaimPage, &[pn]), 0);
    }
    assert_eq!(k.sys(Sysno::Reap, &[2]), 0);
    assert_eq!(k.get("procs", 2, "state", 0), proc_state::FREE);
    assert_eq!(k.get("procs", 1, "nr_children", 0), 0);
    // Pages are free again.
    assert_eq!(k.get("page_desc", 3, "ty", 0), page_type::FREE);
}

#[test]
fn switch_and_yield_round_robin() {
    let mut k = K::new();
    k.spawn(2, 3, 4, 5);
    k.spawn(3, 6, 7, 8);
    assert_eq!(k.current(), 1);
    // Yield follows the ready list.
    assert_eq!(k.sys(Sysno::Yield, &[]), 0);
    let a = k.current();
    assert_ne!(a, 1);
    // Explicit switch back to init.
    assert_eq!(k.sys(Sysno::Switch, &[1]), 0);
    assert_eq!(k.current(), 1);
    // Switch to a non-runnable target fails.
    assert_eq!(k.sys(Sysno::Switch, &[5]), -EINVAL);
    assert_eq!(k.sys(Sysno::Switch, &[1]), -EINVAL); // already running
                                                     // Timer round-robins through everything runnable.
    let mut seen = std::collections::HashSet::new();
    for _ in 0..6 {
        seen.insert(k.current());
        k.sys(Sysno::TrapTimer, &[]);
    }
    assert_eq!(seen.len(), 3, "all three processes got the CPU: {seen:?}");
}

#[test]
fn kill_permissions_and_successors() {
    let mut k = K::new();
    k.spawn(2, 3, 4, 5);
    k.spawn(3, 6, 7, 8);
    // Init cannot be killed.
    assert_eq!(k.sys(Sysno::Kill, &[1]), -EPERM);
    // Switch to 2; killing 3 from 2 is not allowed (not its child).
    assert_eq!(k.sys(Sysno::Switch, &[2]), 0);
    assert_eq!(k.sys(Sysno::Kill, &[3]), -EPERM);
    // Kill self: successor takes over.
    assert_eq!(k.sys(Sysno::Kill, &[2]), 0);
    assert_ne!(k.current(), 2);
    assert_eq!(k.get("procs", 2, "state", 0), proc_state::ZOMBIE);
}

#[test]
fn reparent_moves_children_to_init() {
    let mut k = K::new();
    k.spawn(2, 3, 4, 5);
    // 2 spawns its own child 3.
    assert_eq!(k.sys(Sysno::Switch, &[2]), 0);
    k.spawn(3, 6, 7, 8);
    assert_eq!(k.get("procs", 2, "nr_children", 0), 1);
    // 2 dies; its child must be reparented before reaping.
    assert_eq!(k.sys(Sysno::Kill, &[2]), 0);
    assert_eq!(k.sys(Sysno::Switch, &[1]), 0);
    for pn in [3, 4, 5] {
        assert_eq!(k.sys(Sysno::ReclaimPage, &[pn]), 0);
    }
    assert_eq!(k.sys(Sysno::Reap, &[2]), -EBUSY); // still has a child
    assert_eq!(k.sys(Sysno::Reparent, &[3]), 0);
    assert_eq!(k.get("procs", 3, "ppid", 0), INIT_PID);
    assert_eq!(k.get("procs", 1, "nr_children", 0), 2);
    assert_eq!(k.sys(Sysno::Reap, &[2]), 0);
}

// ---------------------------------------------------------------------
// Virtual memory.
// ---------------------------------------------------------------------

#[test]
fn page_table_chain_and_walk() {
    let mut k = K::new();
    let all = PTE_P | PTE_W | PTE_U;
    // Build a full mapping under init's pml4 (page 0): indices 1/2/3/4.
    assert_eq!(k.sys(Sysno::AllocPdpt, &[1, 0, 1, 9, all]), 0);
    assert_eq!(k.sys(Sysno::AllocPd, &[1, 9, 2, 10, all]), 0);
    assert_eq!(k.sys(Sysno::AllocPt, &[1, 10, 3, 11, all]), 0);
    assert_eq!(k.sys(Sysno::AllocFrame, &[1, 11, 4, 12, all]), 0);
    assert_eq!(k.get("page_desc", 12, "ty", 0), page_type::FRAME);
    assert_eq!(k.get("page_desc", 12, "parent_pn", 0), 11);
    assert_eq!(k.get("page_desc", 12, "parent_idx", 0), 4);
    // The hardware walker resolves the va to frame 12.
    let params = test_params();
    let va = join_va(&params, [1, 2, 3, 4], 0);
    let t = hk_vm::paging::walk(&k.machine.phys, &k.machine.map, 0, va, AccessKind::Write)
        .expect("walk succeeds");
    assert_eq!(t.pfn, 12);
    // Occupied slot is rejected.
    assert_eq!(k.sys(Sysno::AllocPdpt, &[1, 0, 1, 13, all]), -EBUSY);
    // Protect to read-only: writes fault, reads survive.
    assert_eq!(k.sys(Sysno::ProtectFrame, &[11, 4, 12, PTE_P | PTE_U]), 0);
    assert!(
        hk_vm::paging::walk(&k.machine.phys, &k.machine.map, 0, va, AccessKind::Write).is_err()
    );
    assert!(hk_vm::paging::walk(&k.machine.phys, &k.machine.map, 0, va, AccessKind::Read).is_ok());
    // Free bottom-up.
    assert_eq!(k.sys(Sysno::FreeFrame, &[11, 4, 12]), 0);
    assert_eq!(k.sys(Sysno::FreePt, &[10, 3, 11]), 0);
    assert_eq!(k.sys(Sysno::FreePd, &[9, 2, 10]), 0);
    assert_eq!(k.sys(Sysno::FreePdpt, &[0, 1, 9]), 0);
    assert_eq!(k.get("procs", 1, "nr_pages", 0), 3);
    // Wrong-order free is rejected (entry no longer matches).
    assert_eq!(k.sys(Sysno::FreePdpt, &[0, 1, 9]), -EINVAL);
}

#[test]
fn frames_zeroed_on_alloc() {
    let mut k = K::new();
    let all = PTE_P | PTE_W | PTE_U;
    assert_eq!(k.sys(Sysno::AllocPdpt, &[1, 0, 0, 9, all]), 0);
    assert_eq!(k.sys(Sysno::AllocPd, &[1, 9, 0, 10, all]), 0);
    assert_eq!(k.sys(Sysno::AllocPt, &[1, 10, 0, 11, all]), 0);
    assert_eq!(k.sys(Sysno::AllocFrame, &[1, 11, 0, 12, all]), 0);
    // Scribble into the frame, free it, reallocate: must be zeroed.
    k.kernel
        .write_global(&mut k.machine, "pages", 12, "word", 3, 0x5ec3e7);
    assert_eq!(k.sys(Sysno::FreeFrame, &[11, 0, 12]), 0);
    assert_eq!(k.sys(Sysno::AllocFrame, &[1, 11, 0, 12, all]), 0);
    assert_eq!(
        k.get("pages", 12, "word", 3),
        0,
        "no data leaks across owners"
    );
}

#[test]
fn copy_frame_semantics() {
    let mut k = K::new();
    let all = PTE_P | PTE_W | PTE_U;
    assert_eq!(k.sys(Sysno::AllocPdpt, &[1, 0, 0, 9, all]), 0);
    assert_eq!(k.sys(Sysno::AllocPd, &[1, 9, 0, 10, all]), 0);
    assert_eq!(k.sys(Sysno::AllocPt, &[1, 10, 0, 11, all]), 0);
    assert_eq!(k.sys(Sysno::AllocFrame, &[1, 11, 0, 12, all]), 0);
    assert_eq!(k.sys(Sysno::AllocFrame, &[1, 11, 1, 13, all]), 0);
    k.kernel
        .write_global(&mut k.machine, "pages", 12, "word", 2, 99);
    assert_eq!(k.sys(Sysno::CopyFrame, &[12, 13]), 0);
    assert_eq!(k.get("pages", 13, "word", 2), 99);
    // Copying from a non-frame is rejected.
    assert_eq!(k.sys(Sysno::CopyFrame, &[11, 13]), -EINVAL);
}

#[test]
fn reclaim_clears_parent_entries() {
    let mut k = K::new();
    let all = PTE_P | PTE_W | PTE_U;
    k.spawn(2, 3, 4, 5);
    // Child builds a mapping (init acts for its embryo... child is
    // runnable now, so switch to it).
    assert_eq!(k.sys(Sysno::Switch, &[2]), 0);
    assert_eq!(k.sys(Sysno::AllocPdpt, &[2, 3, 0, 9, all]), 0);
    assert_eq!(k.sys(Sysno::AllocPd, &[2, 9, 0, 10, all]), 0);
    assert_eq!(k.sys(Sysno::AllocPt, &[2, 10, 0, 11, all]), 0);
    assert_eq!(k.sys(Sysno::AllocFrame, &[2, 11, 0, 12, all]), 0);
    assert_eq!(k.sys(Sysno::Kill, &[2]), 0); // back to init
                                             // Reclaim out of order: frame's parent PT entry is cleared.
    assert_eq!(k.sys(Sysno::ReclaimPage, &[12]), 0);
    assert_eq!(k.get("pages", 11, "word", 0), 0);
    // Reclaim the PT before the PD: PD's entry cleared too.
    assert_eq!(k.sys(Sysno::ReclaimPage, &[11]), 0);
    assert_eq!(k.get("pages", 10, "word", 0), 0);
    for pn in [9, 10, 3, 4, 5] {
        assert_eq!(k.sys(Sysno::ReclaimPage, &[pn]), 0, "pn {pn}");
    }
    assert_eq!(k.sys(Sysno::Reap, &[2]), 0);
    // Reclaiming a live process's page is rejected.
    assert_eq!(k.sys(Sysno::ReclaimPage, &[0]), -EPERM);
}

#[test]
fn dma_map_and_reclaim() {
    let mut k = K::new();
    let all = PTE_P | PTE_W | PTE_U;
    assert_eq!(k.sys(Sysno::AllocPdpt, &[1, 0, 0, 9, all]), 0);
    assert_eq!(k.sys(Sysno::AllocPd, &[1, 9, 0, 10, all]), 0);
    assert_eq!(k.sys(Sysno::AllocPt, &[1, 10, 0, 11, all]), 0);
    // Map DMA page 2 at PT slot 5.
    assert_eq!(k.sys(Sysno::MapDmaPage, &[1, 11, 5, 2, all]), 0);
    assert_eq!(k.get("dma_desc", 2, "owner", 0), 1);
    assert_eq!(k.get("procs", 1, "nr_dmapages", 0), 1);
    // Double CPU mapping rejected.
    assert_eq!(k.sys(Sysno::MapDmaPage, &[1, 11, 6, 2, all]), -EBUSY);
    // The PTE points into the DMA pfn space.
    let params = test_params();
    let entry = k.get("pages", 11, "word", 5);
    assert_eq!(pte_pfn(entry), params.nr_pages as i64 + 2);
    // Unmapping releases ownership (no IOMMU mapping exists).
    let dma_pfn = params.nr_pages as i64 + 2;
    assert_eq!(k.sys(Sysno::FreeFrame, &[11, 5, dma_pfn]), 0);
    assert_eq!(k.get("dma_desc", 2, "owner", 0), 0);
    assert_eq!(k.get("procs", 1, "nr_dmapages", 0), 0);
}

// ---------------------------------------------------------------------
// File descriptors and pipes.
// ---------------------------------------------------------------------

#[test]
fn create_close_dup() {
    let mut k = K::new();
    // create_file(fd, fileid, ty, value, omode)
    assert_eq!(
        k.sys(
            Sysno::CreateFile,
            &[0, 4, file_type::INODE, 77, omode::READ]
        ),
        0
    );
    assert_eq!(k.get("files", 4, "refcnt", 0), 1);
    assert_eq!(k.get("procs", 1, "ofile", 0), 4);
    assert_eq!(k.get("procs", 1, "nr_fds", 0), 1);
    // dup onto a chosen fd.
    assert_eq!(k.sys(Sysno::Dup, &[0, 3]), 0);
    assert_eq!(k.get("files", 4, "refcnt", 0), 2);
    // dup onto an occupied fd fails (the paper's finite dup).
    assert_eq!(k.sys(Sysno::Dup, &[0, 3]), -EBUSY);
    assert_eq!(k.sys(Sysno::Dup, &[7, 5]), -EBADF);
    assert_eq!(k.sys(Sysno::Dup, &[0, 99]), -EBADF);
    // close drops references; slot resets at zero.
    assert_eq!(k.sys(Sysno::Close, &[0]), 0);
    assert_eq!(k.get("files", 4, "refcnt", 0), 1);
    assert_eq!(k.sys(Sysno::Close, &[3]), 0);
    assert_eq!(k.get("files", 4, "refcnt", 0), 0);
    assert_eq!(k.get("files", 4, "ty", 0), file_type::NONE);
    assert_eq!(k.sys(Sysno::Close, &[3]), -EBADF);
}

#[test]
fn dup2_closes_target() {
    let mut k = K::new();
    assert_eq!(
        k.sys(Sysno::CreateFile, &[0, 1, file_type::INODE, 7, omode::READ]),
        0
    );
    assert_eq!(
        k.sys(Sysno::CreateFile, &[1, 2, file_type::INODE, 8, omode::READ]),
        0
    );
    // dup2 over an open fd closes it first.
    assert_eq!(k.sys(Sysno::Dup2, &[0, 1]), 0);
    assert_eq!(k.get("procs", 1, "ofile", 1), 1);
    assert_eq!(k.get("files", 2, "refcnt", 0), 0);
    assert_eq!(k.get("files", 2, "ty", 0), file_type::NONE);
    assert_eq!(k.get("files", 1, "refcnt", 0), 2);
    assert_eq!(k.get("procs", 1, "nr_fds", 0), 2);
    // dup2 onto itself is a no-op.
    assert_eq!(k.sys(Sysno::Dup2, &[0, 0]), 0);
    assert_eq!(k.get("files", 1, "refcnt", 0), 2);
}

#[test]
fn pipe_data_flow() {
    let mut k = K::new();
    let params = test_params();
    let all = PTE_P | PTE_W | PTE_U;
    // A frame to move data through.
    assert_eq!(k.sys(Sysno::AllocPdpt, &[1, 0, 0, 9, all]), 0);
    assert_eq!(k.sys(Sysno::AllocPd, &[1, 9, 0, 10, all]), 0);
    assert_eq!(k.sys(Sysno::AllocPt, &[1, 10, 0, 11, all]), 0);
    assert_eq!(k.sys(Sysno::AllocFrame, &[1, 11, 0, 12, all]), 0);
    // pipe(fd0=read, fileid0, fd1=write, fileid1, pipeid)
    assert_eq!(k.sys(Sysno::Pipe, &[0, 0, 1, 1, 2]), 0);
    assert_eq!(k.get("pipes", 2, "nr_ends", 0), 2);
    // Write 3 words from frame 12.
    for (i, v) in [11, 22, 33].iter().enumerate() {
        k.kernel
            .write_global(&mut k.machine, "pages", 12, "word", i as u64, *v);
    }
    assert_eq!(k.sys(Sysno::PipeWrite, &[1, 12, 0, 3]), 3);
    assert_eq!(k.get("pipes", 2, "count", 0), 3);
    // Reading through the write end fails; the read end succeeds.
    assert_eq!(k.sys(Sysno::PipeRead, &[1, 12, 0, 1]), -EBADF);
    assert_eq!(k.sys(Sysno::PipeRead, &[0, 12, 4, 2]), 2);
    assert_eq!(k.get("pages", 12, "word", 4), 11);
    assert_eq!(k.get("pages", 12, "word", 5), 22);
    // All-or-nothing: more than buffered is EAGAIN.
    assert_eq!(k.sys(Sysno::PipeRead, &[0, 12, 0, 2]), -EAGAIN);
    // Overfilling is EAGAIN (capacity pipe_words).
    let cap = params.pipe_words as i64;
    assert_eq!(k.sys(Sysno::PipeWrite, &[1, 12, 0, cap]), -EAGAIN);
    // Close the write end: EOF on empty read.
    assert_eq!(k.sys(Sysno::PipeRead, &[0, 12, 0, 1]), 1); // drain last word
    assert_eq!(k.sys(Sysno::Close, &[1]), 0);
    assert_eq!(k.get("pipes", 2, "nr_ends", 0), 1);
    assert_eq!(k.sys(Sysno::PipeRead, &[0, 12, 0, 1]), 0); // EOF
                                                           // Writing with no reader: EPIPE.
    assert_eq!(k.sys(Sysno::Close, &[0]), 0);
    assert_eq!(k.get("pipes", 2, "nr_ends", 0), 0);
    assert_eq!(k.sys(Sysno::Pipe, &[0, 0, 1, 1, 2]), 0);
    assert_eq!(k.sys(Sysno::Close, &[0]), 0); // close read end
    assert_eq!(k.sys(Sysno::PipeWrite, &[1, 12, 0, 1]), -EPIPE);
}

// ---------------------------------------------------------------------
// IPC.
// ---------------------------------------------------------------------

#[test]
fn send_recv_with_page_and_fd() {
    let mut k = K::new();
    let all = PTE_P | PTE_W | PTE_U;
    k.spawn(2, 3, 4, 5);
    // Give both processes a frame.
    assert_eq!(k.sys(Sysno::AllocPdpt, &[1, 0, 0, 9, all]), 0);
    assert_eq!(k.sys(Sysno::AllocPd, &[1, 9, 0, 10, all]), 0);
    assert_eq!(k.sys(Sysno::AllocPt, &[1, 10, 0, 11, all]), 0);
    assert_eq!(k.sys(Sysno::AllocFrame, &[1, 11, 0, 12, all]), 0);
    assert_eq!(k.sys(Sysno::Switch, &[2]), 0);
    assert_eq!(k.sys(Sysno::AllocPdpt, &[2, 3, 0, 13, all]), 0);
    assert_eq!(k.sys(Sysno::AllocPd, &[2, 13, 0, 14, all]), 0);
    assert_eq!(k.sys(Sysno::AllocPt, &[2, 14, 0, 15, all]), 0);
    assert_eq!(k.sys(Sysno::AllocFrame, &[2, 15, 0, 16, all]), 0);
    // 2 also opens a file to receive an fd into slot 6... recv declares it.
    // 2 blocks receiving from anyone into frame 16, fd slot 6.
    assert_eq!(k.sys(Sysno::Recv, &[0, 16, 6]), 0);
    assert_eq!(k.get("procs", 2, "state", 0), proc_state::SLEEPING);
    assert_eq!(k.current(), 1);
    // Init prepares data + an fd and sends.
    for i in 0..3u64 {
        k.kernel
            .write_global(&mut k.machine, "pages", 12, "word", i, 100 + i as i64);
    }
    assert_eq!(
        k.sys(
            Sysno::CreateFile,
            &[2, 5, file_type::INODE, 42, omode::READ]
        ),
        0
    );
    // send(pid, val, pn, size, fd)
    assert_eq!(k.sys(Sysno::Send, &[2, 7777, 12, 3, 2]), 0);
    assert_eq!(k.get("procs", 2, "state", 0), proc_state::RUNNABLE);
    // Payload arrived in 2's frame.
    assert_eq!(k.get("pages", 16, "word", 0), 100);
    assert_eq!(k.get("pages", 16, "word", 2), 102);
    // Message registers in 2's hvm page (page 4).
    assert_eq!(k.get("pages", 4, "word", 0), 7777);
    assert_eq!(k.get("pages", 4, "word", 1), 3);
    assert_eq!(k.get("pages", 4, "word", 2), 1);
    assert_eq!(k.get("pages", 4, "word", 3), 1);
    // The fd landed in 2's slot 6 and the file refcnt rose.
    assert_eq!(k.get("procs", 2, "ofile", 6), 5);
    assert_eq!(k.get("files", 5, "refcnt", 0), 2);
    // Sending again: receiver not sleeping -> EAGAIN.
    assert_eq!(k.sys(Sysno::Send, &[2, 1, -1, 0, -1]), -EAGAIN);
}

#[test]
fn recv_refuses_to_deadlock() {
    let mut k = K::new();
    // Init is alone; blocking would halt the machine.
    assert_eq!(k.sys(Sysno::Recv, &[0, -1, -1]), -EAGAIN);
    assert_eq!(k.current(), 1);
}

#[test]
fn reply_wait_donates_cpu() {
    let mut k = K::new();
    k.spawn(2, 3, 4, 5);
    // 2 acts as a client: blocks waiting for the server's reply.
    assert_eq!(k.sys(Sysno::Switch, &[2]), 0);
    assert_eq!(k.sys(Sysno::Recv, &[1, -1, -1]), 0);
    assert_eq!(k.current(), 1);
    // Init replies and waits for the next request; CPU goes to 2.
    assert_eq!(k.sys(Sysno::ReplyWait, &[2, 555, -1, 0, -1]), 0);
    assert_eq!(k.current(), 2);
    assert_eq!(k.get("procs", 1, "state", 0), proc_state::SLEEPING);
    assert_eq!(k.get("pages", 4, "word", 0), 555);
    // 2 sends back; init wakes.
    assert_eq!(k.sys(Sysno::Send, &[1, 666, -1, 0, -1]), 0);
    assert_eq!(k.get("procs", 1, "state", 0), proc_state::RUNNABLE);
}

#[test]
fn transfer_fd_to_embryo() {
    let mut k = K::new();
    assert_eq!(
        k.sys(Sysno::CreateFile, &[0, 0, file_type::INODE, 9, omode::READ]),
        0
    );
    assert_eq!(k.sys(Sysno::CloneProc, &[2, 3, 4, 5]), 0);
    // Clone inherits the parent's FD table (xv6 fork semantics): the
    // child already holds fd 0, and the file gained a reference.
    assert_eq!(k.get("procs", 2, "ofile", 0), 0);
    assert_eq!(k.get("files", 0, "refcnt", 0), 2);
    assert_eq!(k.get("procs", 2, "nr_fds", 0), 1);
    // An explicit transfer grants another copy at a chosen slot.
    assert_eq!(k.sys(Sysno::TransferFd, &[2, 0, 1]), 0);
    assert_eq!(k.get("procs", 2, "ofile", 1), 0);
    assert_eq!(k.get("files", 0, "refcnt", 0), 3);
    assert_eq!(k.get("procs", 2, "nr_fds", 0), 2);
    // Occupied target slot is rejected.
    assert_eq!(k.sys(Sysno::TransferFd, &[2, 0, 1]), -EBUSY);
    // Only embryo children accept transfers.
    assert_eq!(k.sys(Sysno::SetRunnable, &[2]), 0);
    assert_eq!(k.sys(Sysno::TransferFd, &[2, 0, 2]), -EINVAL);
}

// ---------------------------------------------------------------------
// IOMMU, ports, vectors, interrupt remapping.
// ---------------------------------------------------------------------

#[test]
fn iommu_table_and_dma_isolation() {
    let mut k = K::new();
    let params = test_params();
    let pw = PTE_P | PTE_W;
    // Attach device 0 with root page 9, build a walk to DMA page 1.
    assert_eq!(k.sys(Sysno::AllocIommuRoot, &[0, 9]), 0);
    assert_eq!(k.get("devs", 0, "owner", 0), 1);
    assert_eq!(k.get("page_desc", 9, "devid", 0), 0);
    assert_eq!(k.sys(Sysno::AllocIommuPdpt, &[9, 0, 10, pw]), 0);
    assert_eq!(k.sys(Sysno::AllocIommuPd, &[10, 0, 11, pw]), 0);
    assert_eq!(k.sys(Sysno::AllocIommuPt, &[11, 0, 12, pw]), 0);
    assert_eq!(k.sys(Sysno::AllocIommuFrame, &[12, 0, 1, pw]), 0);
    assert_eq!(k.get("dma_desc", 1, "owner", 0), 1);
    // The machine's IOMMU (mirrored by glue) can now walk dva 0.
    let addr = k
        .machine
        .iommu
        .walk(&k.machine.phys, &k.machine.map, 0, 0, true)
        .expect("DMA translates");
    assert_eq!(addr, k.machine.map.dma_page_addr(1));
    // Reclaiming the root while the device table references it: blocked.
    assert_eq!(k.sys(Sysno::Kill, &[1]), -EPERM); // (can't kill init; use direct check below)
                                                  // Detach requires no intremaps and clears the backref.
    assert_eq!(k.sys(Sysno::FreeIommuRoot, &[0, 9]), 0);
    assert_eq!(k.get("devs", 0, "owner", 0), 0);
    assert_eq!(k.get("page_desc", 9, "devid", 0), PARENT_NONE);
    assert_eq!(k.get("procs", 1, "nr_devs", 0), 0);
    // The hardware mirror dropped the root too.
    assert!(k
        .machine
        .iommu
        .walk(&k.machine.phys, &k.machine.map, 0, 0, true)
        .is_err());
    let _ = params;
}

#[test]
fn iommu_lifetime_bug_ordering_enforced() {
    // The §6.1 bug: reclaiming IOMMU pages while the device-table entry
    // still references them. Our kernel refuses.
    let mut k = K::new();
    let pw = PTE_P | PTE_W;
    k.spawn(2, 3, 4, 5);
    assert_eq!(k.sys(Sysno::Switch, &[2]), 0);
    assert_eq!(k.sys(Sysno::AllocIommuRoot, &[0, 9]), 0);
    assert_eq!(k.sys(Sysno::AllocIommuPdpt, &[9, 0, 10, pw]), 0);
    assert_eq!(k.sys(Sysno::Kill, &[2]), 0); // zombie with live device entry
                                             // Root reclaim is blocked by the devid backref.
    assert_eq!(k.sys(Sysno::ReclaimPage, &[9]), -EBUSY);
    // Detach (allowed on a zombie's device), then reclaim succeeds.
    assert_eq!(k.sys(Sysno::FreeIommuRoot, &[0, 9]), 0);
    assert_eq!(k.sys(Sysno::ReclaimPage, &[9]), 0);
    assert_eq!(k.sys(Sysno::ReclaimPage, &[10]), 0);
}

#[test]
fn ports_vectors_intremaps() {
    let mut k = K::new();
    assert_eq!(k.sys(Sysno::AllocPort, &[3]), 0);
    assert_eq!(k.sys(Sysno::AllocPort, &[3]), -EBUSY);
    assert_eq!(k.get("procs", 1, "nr_ports", 0), 1);
    assert_eq!(k.sys(Sysno::AllocVector, &[5]), 0);
    assert_eq!(k.sys(Sysno::AllocIommuRoot, &[1, 9]), 0);
    // Remap device 1 interrupts to vector 5.
    assert_eq!(k.sys(Sysno::AllocIntremap, &[0, 1, 5]), 0);
    assert_eq!(k.get("vectors", 5, "intremap_refcnt", 0), 1);
    assert_eq!(k.get("devs", 1, "intremap_refcnt", 0), 1);
    // Vector reclaim blocked while routed (the paper's intremap bug).
    assert_eq!(k.sys(Sysno::ReclaimVector, &[5]), -EBUSY);
    assert_eq!(k.sys(Sysno::FreeIommuRoot, &[1, 9]), -EBUSY);
    // An interrupt arrives: pending bit set for the owner.
    assert_eq!(k.sys(Sysno::TrapIrq, &[5]), 0);
    assert_eq!(k.get("procs", 1, "intr_pending", 0), 1 << 5);
    // Owner acknowledges.
    assert_eq!(k.sys(Sysno::AckIntr, &[5]), 1);
    assert_eq!(k.sys(Sysno::AckIntr, &[5]), 0);
    assert_eq!(k.get("procs", 1, "intr_pending", 0), 0);
    // Unrouted vector interrupt is dropped.
    assert_eq!(k.sys(Sysno::TrapIrq, &[6]), -EINVAL);
    // Tear down in order.
    assert_eq!(k.sys(Sysno::ReclaimIntremap, &[0]), 0);
    assert_eq!(k.sys(Sysno::ReclaimVector, &[5]), 0);
    assert_eq!(k.sys(Sysno::FreeIommuRoot, &[1, 9]), 0);
    assert_eq!(k.sys(Sysno::ReclaimPort, &[3]), 0);
    assert_eq!(k.get("procs", 1, "nr_ports", 0), 0);
    assert_eq!(k.get("procs", 1, "nr_vectors", 0), 0);
    assert_eq!(k.get("procs", 1, "nr_intremaps", 0), 0);
}

// ---------------------------------------------------------------------
// Traps.
// ---------------------------------------------------------------------

#[test]
fn triple_fault_kills_current() {
    let mut k = K::new();
    k.spawn(2, 3, 4, 5);
    assert_eq!(k.sys(Sysno::Switch, &[2]), 0);
    assert_eq!(k.sys(Sysno::TrapTripleFault, &[]), 0);
    assert_eq!(k.get("procs", 2, "state", 0), proc_state::ZOMBIE);
    assert_eq!(k.current(), 1);
}

#[test]
fn debug_print_and_invalid() {
    let mut k = K::new();
    assert_eq!(k.sys(Sysno::TrapDebugPrint, &[b'h' as i64]), b'h' as i64);
    assert_eq!(k.sys(Sysno::TrapDebugPrint, &[b'i' as i64]), b'i' as i64);
    assert_eq!(k.machine.console.text(), "hi");
    assert_eq!(k.sys(Sysno::TrapInvalid, &[]), -EINVAL);
}
