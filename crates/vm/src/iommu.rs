//! The IOMMU: device table plus a 4-level device-address walk.
//!
//! DMA is restricted to the dedicated DMA page region (Figure 6): the
//! walker refuses to resolve a device address to a RAM page, which is the
//! hardware half of the paper's DMA-isolation story (VT-d Protected
//! Memory Regions / AMD Device Exclusion Vectors configured at boot). The
//! kernel half — that IOMMU page-table walks end only at DMA frames — is
//! one of the verified declarative properties.

use hk_abi::{pte_pfn, PTE_P, PTE_W, PT_LEVELS};

use crate::machine::MemoryMap;
use crate::paging::split_va;
use crate::phys::PhysMem;

/// A DMA fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaFault {
    /// The device has no root in the device table.
    NoRoot,
    /// A level entry was not present.
    NotPresent {
        /// Walk level (3 = root).
        level: u32,
    },
    /// Write through a read-only mapping.
    NotWritable,
    /// The walk resolved to a frame outside the DMA region — blocked by
    /// the protected-memory-region mechanism.
    OutsideDmaRegion,
    /// Malformed entry (frame beyond physical memory).
    BadFrame {
        /// Walk level.
        level: u32,
    },
    /// Device address beyond the translated range.
    NonCanonical,
}

/// The IOMMU state: one root pointer per device (the device table, as
/// the hardware sees it after the kernel programs it).
#[derive(Debug)]
pub struct Iommu {
    roots: Vec<Option<u64>>,
    /// DMA faults observed (for diagnostics and tests).
    pub faults: u64,
}

impl Iommu {
    /// Creates an IOMMU for `nr_devs` devices, all unattached.
    pub fn new(nr_devs: u64) -> Self {
        Iommu {
            roots: vec![None; nr_devs as usize],
            faults: 0,
        }
    }

    /// Programs the device-table entry for `dev` (trusted glue: the
    /// kernel's dispatch loop mirrors the verified `devs` table into this
    /// hardware register file after IOMMU system calls).
    pub fn set_root(&mut self, dev: u64, root_pn: Option<u64>) {
        self.roots[dev as usize] = root_pn;
    }

    /// The current root for a device.
    pub fn root(&self, dev: u64) -> Option<u64> {
        self.roots.get(dev as usize).copied().flatten()
    }

    /// Translates a device address to a physical word address.
    pub fn walk(
        &mut self,
        phys: &PhysMem,
        map: &MemoryMap,
        dev: u64,
        dva: u64,
        write: bool,
    ) -> Result<u64, DmaFault> {
        let result = self.walk_inner(phys, map, dev, dva, write);
        if result.is_err() {
            self.faults += 1;
        }
        result
    }

    fn walk_inner(
        &self,
        phys: &PhysMem,
        map: &MemoryMap,
        dev: u64,
        dva: u64,
        write: bool,
    ) -> Result<u64, DmaFault> {
        let params = &map.params;
        let root = self.root(dev).ok_or(DmaFault::NoRoot)?;
        let (idx, offset) = split_va(params, dva).ok_or(DmaFault::NonCanonical)?;
        let mut table_pn = root;
        let mut entry = 0i64;
        for (i, &ix) in idx.iter().enumerate() {
            let level = (PT_LEVELS - 1 - i as u64) as u32;
            if table_pn >= params.nr_pages {
                return Err(DmaFault::BadFrame { level });
            }
            entry = phys.read(map.ram_page_addr(table_pn) + ix);
            if entry & PTE_P == 0 {
                return Err(DmaFault::NotPresent { level });
            }
            let pfn = pte_pfn(entry);
            if pfn < 0 || pfn as u64 >= params.nr_pfns() {
                return Err(DmaFault::BadFrame { level });
            }
            table_pn = pfn as u64;
        }
        if write && entry & PTE_W == 0 {
            return Err(DmaFault::NotWritable);
        }
        // Hardware-enforced: DMA only within the DMA region.
        if table_pn < params.nr_pages {
            return Err(DmaFault::OutsideDmaRegion);
        }
        Ok(map.pfn_addr(table_pn) + offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hk_abi::{pte_encode, KernelParams, PTE_U};

    #[test]
    fn dma_confined_to_dma_region() {
        let params = KernelParams::verification();
        let map = MemoryMap::new(params, 64);
        let mut phys = PhysMem::new(map.total_words());
        let mut iommu = Iommu::new(params.nr_devs);
        // Build a walk 0 -> 1 -> 2 -> 3 -> leaf.
        let perm = PTE_P | PTE_W | PTE_U;
        for (i, next) in [(0u64, 1i64), (1, 2), (2, 3)] {
            phys.write(map.ram_page_addr(i), pte_encode(next, perm));
        }
        // Leaf pointing at a RAM page: must fault.
        phys.write(map.ram_page_addr(3), pte_encode(7, perm));
        iommu.set_root(0, Some(0));
        assert_eq!(
            iommu.walk(&phys, &map, 0, 0, true),
            Err(DmaFault::OutsideDmaRegion)
        );
        // Leaf pointing at a DMA page: resolves.
        let dma_pfn = params.nr_pages as i64 + 2;
        phys.write(map.ram_page_addr(3), pte_encode(dma_pfn, perm));
        let addr = iommu.walk(&phys, &map, 0, 3, true).unwrap();
        assert_eq!(addr, map.dma_page_addr(2) + 3);
        assert_eq!(iommu.faults, 1);
    }

    #[test]
    fn no_root_faults() {
        let params = KernelParams::verification();
        let map = MemoryMap::new(params, 64);
        let phys = PhysMem::new(map.total_words());
        let mut iommu = Iommu::new(params.nr_devs);
        assert_eq!(iommu.walk(&phys, &map, 1, 0, false), Err(DmaFault::NoRoot));
    }
}
