//! The machine substrate: a simulated x86-64-with-VT-x-class machine.
//!
//! The paper runs Hyperkernel on real hardware (Intel VT-x / AMD-V) and
//! measures mode-transition costs on seven microarchitectures (Figure 11).
//! This crate simulates the parts of that hardware the kernel and the
//! evaluation depend on:
//!
//! * word-addressed **physical memory** shared by the kernel (root mode)
//!   and guests ([`phys`]);
//! * **4-level page tables** with a hardware page walker and a TLB
//!   ([`paging`], [`tlb`]) — guests run on page tables built, page by
//!   page, through verified system calls;
//! * an **IOMMU** with a device table and its own 4-level walk,
//!   restricting device DMA to the dedicated DMA region of Figure 6
//!   ([`iommu`]);
//! * a **cycle cost model** with per-microarchitecture profiles calibrated
//!   from Figure 11, so the runtime benchmarks (Figure 10) reproduce the
//!   paper's mechanism comparison: `syscall` vs `vmcall` round trips,
//!   kernel-mediated vs direct user fault delivery ([`cost`]);
//! * simple **devices** (console, block device, NIC) that DMA through the
//!   IOMMU and raise interrupts ([`dev`]).
//!
//! Both kernels in the repository — the verified Hyperkernel
//! (`hk-kernel`) and the monolithic Unix-like baseline (`hk-mono`) — run
//! on this same substrate, which is what makes the Figure 10 comparison
//! meaningful.

pub mod cost;
pub mod dev;
pub mod iommu;
pub mod machine;
pub mod paging;
pub mod phys;
pub mod tlb;

pub use cost::{CostModel, MicroArch, MICROARCHES};
pub use machine::{Machine, MemoryMap};
pub use paging::{AccessKind, PageFault, VirtAddr};
pub use phys::PhysMem;
