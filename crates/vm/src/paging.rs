//! Four-level page tables and the hardware page walker.
//!
//! Virtual addresses are word-granular. With `page_words = 2^k`, a page
//! holds `2^k` words and a page-table page holds `2^k` entries, so a
//! virtual address decomposes into four `k`-bit level indices plus a
//! `k`-bit word offset (production: `k = 9`, i.e. the x86-64 layout at
//! word granularity). The walker enforces exactly the x86 rules the
//! kernel's isolation proof models: present at every level, user bit at
//! every level, writable at the leaf for writes.

use hk_abi::{pte_pfn, KernelParams, PTE_P, PTE_U, PTE_W, PT_LEVELS};

use crate::machine::MemoryMap;
use crate::phys::PhysMem;

/// A virtual address (word-granular).
pub type VirtAddr = u64;

/// Kind of memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read access.
    Read,
    /// Write access.
    Write,
}

/// A page fault raised by the walker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFault {
    /// The faulting virtual address.
    pub va: VirtAddr,
    /// The access that faulted.
    pub access: AccessKind,
    /// Walk level at which the fault occurred (3 = root, 0 = leaf).
    pub level: u32,
    /// Why.
    pub reason: FaultReason,
}

/// Why a walk faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultReason {
    /// Entry not present.
    NotPresent,
    /// User access to a supervisor-only entry.
    NotUser,
    /// Write to a read-only mapping.
    NotWritable,
    /// Entry references a frame outside physical memory (machine check).
    BadFrame,
    /// The virtual address has bits beyond the translated range.
    NonCanonical,
}

/// Decomposes a virtual address into level indices and offset.
///
/// Returns `[idx_l3, idx_l2, idx_l1, idx_l0]` (root first) and the word
/// offset, or `None` if the address is non-canonical (has bits above the
/// translated range).
pub fn split_va(params: &KernelParams, va: VirtAddr) -> Option<([u64; 4], u64)> {
    let k = params.page_words.trailing_zeros();
    let total_bits = k * (PT_LEVELS as u32 + 1);
    // `checked_shr` yields `None` for shifts >= 64, i.e. when the whole
    // 64-bit space is translated and every address is canonical; a plain
    // `>>` would wrap the shift amount in release builds instead.
    if va.checked_shr(total_bits).is_some_and(|high| high != 0) {
        return None;
    }
    let mask = params.page_words - 1;
    let offset = va & mask;
    let mut idx = [0u64; 4];
    for (i, slot) in idx.iter_mut().enumerate() {
        let level = PT_LEVELS as u32 - 1 - i as u32; // 3, 2, 1, 0
        *slot = va.checked_shr(k * (level + 1)).unwrap_or(0) & mask;
    }
    Some((idx, offset))
}

/// Composes a virtual address from level indices and offset (inverse of
/// [`split_va`]); useful for user-space memory allocators.
///
/// # Panics
///
/// Panics if `offset` or any index exceeds `page_words - 1`, or if the
/// composed address does not fit in 64 bits — either would silently
/// corrupt neighbouring index fields under the old wrapping arithmetic.
pub fn join_va(params: &KernelParams, idx: [u64; 4], offset: u64) -> VirtAddr {
    let k = params.page_words.trailing_zeros();
    let mask = params.page_words - 1;
    assert!(
        offset <= mask,
        "join_va: offset {offset:#x} exceeds {mask:#x}"
    );
    let mut va = offset;
    for (i, &ix) in idx.iter().enumerate() {
        let level = PT_LEVELS as u32 - 1 - i as u32;
        assert!(
            ix <= mask,
            "join_va: level-{level} index {ix:#x} exceeds {mask:#x}"
        );
        let sh = k * (level + 1);
        let field = ix
            .checked_shl(sh)
            .filter(|&f| f.checked_shr(sh) == Some(ix))
            .unwrap_or_else(|| panic!("join_va: level-{level} index {ix:#x} does not fit in u64"));
        va |= field;
    }
    va
}

/// Result of a successful walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The resolved page-frame number (RAM or DMA space).
    pub pfn: u64,
    /// Physical word address of the accessed word.
    pub phys_addr: u64,
    /// Whether the leaf mapping permits writes.
    pub writable: bool,
}

/// Walks the 4-level page table rooted at RAM page `root_pn`.
///
/// This is the hardware walker: it implements what the MMU does, and it
/// is also the concrete counterpart of the abstract page-walk model used
/// to state the paper's memory-isolation property (Property 5).
pub fn walk(
    phys: &PhysMem,
    map: &MemoryMap,
    root_pn: u64,
    va: VirtAddr,
    access: AccessKind,
) -> Result<Translation, PageFault> {
    let params = &map.params;
    let fault = |level: u32, reason: FaultReason| PageFault {
        va,
        access,
        level,
        reason,
    };
    let (idx, offset) = split_va(params, va)
        .ok_or_else(|| fault(PT_LEVELS as u32 - 1, FaultReason::NonCanonical))?;
    let mut table_pn = root_pn;
    let mut entry = 0i64;
    for (i, &ix) in idx.iter().enumerate() {
        let level = (PT_LEVELS - 1 - i as u64) as u32;
        if table_pn >= params.nr_pages {
            return Err(fault(level, FaultReason::BadFrame));
        }
        let entry_addr = map
            .ram_page_addr(table_pn)
            .checked_add(ix)
            .expect("page-table entry address overflows u64");
        entry = phys.read(entry_addr);
        if entry & PTE_P == 0 {
            return Err(fault(level, FaultReason::NotPresent));
        }
        if entry & PTE_U == 0 {
            return Err(fault(level, FaultReason::NotUser));
        }
        let pfn = pte_pfn(entry);
        if pfn < 0 || pfn as u64 >= params.nr_pfns() {
            return Err(fault(level, FaultReason::BadFrame));
        }
        table_pn = pfn as u64;
    }
    // `table_pn` is now the leaf frame; `entry` the leaf PTE.
    if access == AccessKind::Write && entry & PTE_W == 0 {
        return Err(fault(0, FaultReason::NotWritable));
    }
    Ok(Translation {
        pfn: table_pn,
        phys_addr: map
            .pfn_addr(table_pn)
            .checked_add(offset)
            .expect("translated physical address overflows u64"),
        writable: entry & PTE_W != 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hk_abi::pte_encode;

    fn setup() -> (PhysMem, MemoryMap) {
        let params = KernelParams::verification();
        let map = MemoryMap::new(params, 64);
        let phys = PhysMem::new(map.total_words());
        (phys, map)
    }

    /// Installs a 4-level mapping for `va` -> `leaf_pfn` using pages
    /// 1, 2, 3 as intermediate tables and returns the root pn.
    fn map_va(
        phys: &mut PhysMem,
        map: &MemoryMap,
        va: VirtAddr,
        leaf_pfn: u64,
        leaf_perm: i64,
    ) -> u64 {
        let params = &map.params;
        let (idx, _) = split_va(params, va).unwrap();
        let tables = [0u64, 1, 2, 3]; // root is page 0
        for lvl in 0..3 {
            let addr = map.ram_page_addr(tables[lvl]) + idx[lvl];
            phys.write(
                addr,
                pte_encode(
                    tables[lvl + 1] as i64,
                    hk_abi::PTE_P | hk_abi::PTE_W | PTE_U,
                ),
            );
        }
        let addr = map.ram_page_addr(tables[3]) + idx[3];
        phys.write(addr, pte_encode(leaf_pfn as i64, leaf_perm));
        tables[0]
    }

    #[test]
    fn split_join_roundtrip() {
        let params = KernelParams::verification();
        let k = params.page_words.trailing_zeros() as u64;
        // k-bit pages translate k * 5 bits of virtual address.
        let limit = 1u64 << (k * (PT_LEVELS + 1));
        for va in [0u64, 1, limit - 1, limit / 3, limit / 7 + 1] {
            let (idx, off) = split_va(&params, va).unwrap();
            assert_eq!(join_va(&params, idx, off), va);
        }
        // The first address past the translated range is non-canonical.
        assert!(split_va(&params, limit).is_none());
    }

    #[test]
    fn walk_success() {
        let (mut phys, map) = setup();
        let va = join_va(&map.params, [1, 2, 3, 2], 3);
        let root = map_va(&mut phys, &map, va, 9, PTE_P | PTE_W | PTE_U);
        let t = walk(&phys, &map, root, va, AccessKind::Write).unwrap();
        assert_eq!(t.pfn, 9);
        assert_eq!(t.phys_addr, map.ram_page_addr(9) + 3);
        assert!(t.writable);
    }

    #[test]
    fn walk_not_present() {
        let (phys, map) = setup();
        let err = walk(&phys, &map, 0, 0, AccessKind::Read).unwrap_err();
        assert_eq!(err.reason, FaultReason::NotPresent);
        assert_eq!(err.level, 3);
    }

    #[test]
    fn walk_write_to_readonly() {
        let (mut phys, map) = setup();
        let va = join_va(&map.params, [0, 0, 0, 1], 0);
        let root = map_va(&mut phys, &map, va, 9, PTE_P | PTE_U);
        assert!(walk(&phys, &map, root, va, AccessKind::Read).is_ok());
        let err = walk(&phys, &map, root, va, AccessKind::Write).unwrap_err();
        assert_eq!(err.reason, FaultReason::NotWritable);
    }

    #[test]
    fn walk_supervisor_only() {
        let (mut phys, map) = setup();
        let va = join_va(&map.params, [0, 0, 0, 2], 0);
        let root = map_va(&mut phys, &map, va, 9, PTE_P | PTE_W);
        let err = walk(&phys, &map, root, va, AccessKind::Read).unwrap_err();
        assert_eq!(err.reason, FaultReason::NotUser);
        assert_eq!(err.level, 0);
    }

    #[test]
    fn walk_dma_leaf_resolves() {
        let (mut phys, map) = setup();
        let params = map.params;
        let dma_pfn = params.nr_pages + 1; // second DMA page
        let va = join_va(&params, [0, 0, 0, 3], 2);
        let root = map_va(&mut phys, &map, va, dma_pfn, PTE_P | PTE_W | PTE_U);
        let t = walk(&phys, &map, root, va, AccessKind::Read).unwrap();
        assert_eq!(t.pfn, dma_pfn);
        assert_eq!(t.phys_addr, map.dma_page_addr(1) + 2);
    }

    #[test]
    fn join_va_saturates_the_translated_range() {
        let params = KernelParams::verification();
        let mask = params.page_words - 1;
        let k = params.page_words.trailing_zeros() as u64;
        let limit = 1u64 << (k * (PT_LEVELS + 1));
        // All-ones indices and offset compose exactly the last canonical
        // address; one word further is rejected by split_va.
        let top = join_va(&params, [mask; 4], mask);
        assert_eq!(top, limit - 1);
        assert!(split_va(&params, top).is_some());
        assert!(split_va(&params, top + 1).is_none());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn join_va_rejects_oversized_index() {
        let params = KernelParams::verification();
        join_va(&params, [params.page_words, 0, 0, 0], 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn join_va_rejects_oversized_offset() {
        let params = KernelParams::verification();
        join_va(&params, [0; 4], params.page_words);
    }

    #[test]
    fn walk_last_word_of_last_page() {
        let (mut phys, map) = setup();
        let params = map.params;
        let mask = params.page_words - 1;
        let last_pfn = params.nr_pfns() - 1; // last DMA page
        let va = join_va(&params, [0, 0, 1, 1], mask);
        let root = map_va(&mut phys, &map, va, last_pfn, PTE_P | PTE_W | PTE_U);
        let t = walk(&phys, &map, root, va, AccessKind::Write).unwrap();
        assert_eq!(t.pfn, last_pfn);
        // The very last physical word — one past would be out of memory.
        assert_eq!(t.phys_addr, map.total_words() - 1);
    }

    #[test]
    fn walk_bad_frame() {
        let (mut phys, map) = setup();
        let bogus = map.params.nr_pfns() + 5;
        let va = join_va(&map.params, [0, 1, 0, 0], 0);
        let root = map_va(&mut phys, &map, va, bogus, PTE_P | PTE_W | PTE_U);
        let err = walk(&phys, &map, root, va, AccessKind::Read).unwrap_err();
        assert_eq!(err.reason, FaultReason::BadFrame);
    }
}
