//! Cycle cost model and microarchitecture profiles.
//!
//! The `syscall` and `hypercall` round-trip latencies are taken directly
//! from Figure 11 of the paper (measured over 50 million trials on real
//! silicon). The remaining costs — fault vectoring, signal upcalls, TLB
//! operations — are set so that the Figure 10 benchmarks reproduce the
//! paper's *shapes*: hypercalls ~5-7x slower than syscalls, direct user
//! fault delivery ~4-5x cheaper than kernel-mediated delivery.

/// A microarchitecture profile (one row of Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroArch {
    /// Marketing model, e.g. "Core i7-7700K".
    pub model: &'static str,
    /// Microarchitecture name and year, e.g. "Kaby Lake (2016)".
    pub uarch: &'static str,
    /// `syscall`/`sysret` round-trip cycles.
    pub syscall_cycles: u64,
    /// `vmcall`/`vmresume` round-trip cycles.
    pub hypercall_cycles: u64,
}

/// The seven processors of Figure 11.
pub const MICROARCHES: &[MicroArch] = &[
    MicroArch {
        model: "Xeon X5550",
        uarch: "Nehalem (2009)",
        syscall_cycles: 72,
        hypercall_cycles: 961,
    },
    MicroArch {
        model: "Xeon E5-1620",
        uarch: "Sandy Bridge (2011)",
        syscall_cycles: 72,
        hypercall_cycles: 765,
    },
    MicroArch {
        model: "Core i7-3770",
        uarch: "Ivy Bridge (2012)",
        syscall_cycles: 74,
        hypercall_cycles: 760,
    },
    MicroArch {
        model: "Xeon E5-1650 v3",
        uarch: "Haswell (2013)",
        syscall_cycles: 74,
        hypercall_cycles: 540,
    },
    MicroArch {
        model: "Core i5-6600K",
        uarch: "Skylake (2015)",
        syscall_cycles: 79,
        hypercall_cycles: 568,
    },
    MicroArch {
        model: "Core i7-7700K",
        uarch: "Kaby Lake (2016)",
        syscall_cycles: 69,
        hypercall_cycles: 497,
    },
    MicroArch {
        model: "Ryzen 7 1700",
        uarch: "Zen (2017)",
        syscall_cycles: 64,
        hypercall_cycles: 697,
    },
];

/// The default profile: the paper's evaluation machine (i7-7700K).
pub fn default_uarch() -> MicroArch {
    MICROARCHES[5]
}

/// Looks up a profile by model substring.
pub fn uarch_by_model(model: &str) -> Option<MicroArch> {
    MICROARCHES
        .iter()
        .copied()
        .find(|m| m.model.contains(model))
}

/// Cycle costs of the machine's primitive operations.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// The underlying processor profile.
    pub uarch: MicroArch,
    /// Cycles for a hardware exception vectored *directly to user space*
    /// through the guest IDT (Hyperkernel's fast path: the kernel is not
    /// involved at all).
    pub fault_vector_user: u64,
    /// Cycles for a hardware exception that enters the kernel (fault
    /// frame push + kernel entry), before any kernel work.
    pub fault_vector_kernel: u64,
    /// Cycles for a signal-style upcall from the kernel back into a user
    /// handler plus the eventual sigreturn (the Linux-baseline fault
    /// path).
    pub signal_upcall: u64,
    /// Cycles per executed kernel instruction (HIR instruction or
    /// baseline-kernel operation).
    pub kernel_inst: u64,
    /// Cycles for a TLB hit on a guest memory access.
    pub tlb_hit: u64,
    /// Cycles per page-table level walked on a TLB miss.
    pub walk_level: u64,
    /// Cycles for a full TLB flush (e.g. CR3 reload / INVEPT-class).
    pub tlb_flush: u64,
    /// Cycles for an INVLPG-class single-page invalidation.
    pub tlb_invlpg: u64,
    /// Cycles for a guest memory access once translated.
    pub mem_access: u64,
}

impl CostModel {
    /// Builds the cost model for a processor profile.
    pub fn for_uarch(uarch: MicroArch) -> Self {
        CostModel {
            uarch,
            // Direct exception delivery to user space costs about the same
            // as an exception vector + IRET pair; Dune/Hyperkernel measure
            // ~600 cycles end-to-end including the handler.
            fault_vector_user: 400,
            // Kernel-mediated fault entry: exception + swapgs + frame.
            fault_vector_kernel: 750,
            // Signal frame setup, handler dispatch, and sigreturn.
            signal_upcall: 1400,
            kernel_inst: 1,
            tlb_hit: 1,
            walk_level: 25,
            tlb_flush: 150,
            tlb_invlpg: 120,
            mem_access: 2,
        }
    }

    /// Default cost model (Kaby Lake).
    pub fn default_model() -> Self {
        Self::for_uarch(default_uarch())
    }
}

/// A running cycle counter.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cycles {
    /// Total cycles charged.
    pub total: u64,
}

impl Cycles {
    /// Charges `n` cycles.
    pub fn charge(&mut self, n: u64) {
        self.total += n;
    }

    /// Snapshot-and-subtract helper for measuring a region.
    pub fn since(&self, start: u64) -> u64 {
        self.total - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_profiles_match_figure_11() {
        assert_eq!(MICROARCHES.len(), 7);
        let kaby = uarch_by_model("7700K").unwrap();
        assert_eq!(kaby.syscall_cycles, 69);
        assert_eq!(kaby.hypercall_cycles, 497);
        let zen = uarch_by_model("Ryzen").unwrap();
        assert_eq!(zen.hypercall_cycles, 697);
    }

    #[test]
    fn hypercalls_always_slower_than_syscalls() {
        for m in MICROARCHES {
            assert!(
                m.hypercall_cycles > 4 * m.syscall_cycles,
                "{}: expected order-of-magnitude gap",
                m.model
            );
        }
    }

    #[test]
    fn fault_paths_ordered() {
        let c = CostModel::default_model();
        // Direct user delivery must beat kernel entry + upcall.
        assert!(c.fault_vector_user < c.fault_vector_kernel + c.signal_upcall);
    }
}
