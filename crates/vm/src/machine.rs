//! The machine: physical memory + MMU + IOMMU + cycle accounting + mode
//! transitions.
//!
//! The machine is kernel-agnostic: both Hyperkernel (`hk-kernel`) and the
//! monolithic baseline (`hk-mono`) run on it. It charges cycles for the
//! operations whose costs the paper measures — hypercall and syscall
//! round trips, fault vectoring, TLB flushes, page walks — using the
//! per-microarchitecture profiles of Figure 11.

use hk_abi::KernelParams;

use crate::cost::{CostModel, Cycles};
use crate::iommu::{DmaFault, Iommu};
use crate::paging::{self, AccessKind, PageFault, VirtAddr};
use crate::phys::PhysMem;
use crate::tlb::Tlb;

/// The physical memory map (Figure 6): kernel region (boot memory,
/// metadata, kernel globals), then RAM pages, then DMA pages.
#[derive(Debug, Clone, Copy)]
pub struct MemoryMap {
    /// Kernel size parameters.
    pub params: KernelParams,
    /// Words reserved for the kernel region at the bottom of memory.
    pub kernel_words: u64,
}

impl MemoryMap {
    /// Builds a map for the given parameters and kernel-region size.
    pub fn new(params: KernelParams, kernel_words: u64) -> Self {
        MemoryMap {
            params,
            kernel_words,
        }
    }

    /// First word of the RAM-pages region.
    pub fn pages_base(&self) -> u64 {
        self.kernel_words
    }

    /// First word of the DMA-pages region.
    pub fn dma_base(&self) -> u64 {
        let ram_words = self
            .params
            .nr_pages
            .checked_mul(self.params.page_words)
            .expect("RAM region size overflows u64");
        self.pages_base()
            .checked_add(ram_words)
            .expect("DMA region base overflows u64")
    }

    /// Total physical memory size in words.
    pub fn total_words(&self) -> u64 {
        let dma_words = self
            .params
            .nr_dmapages
            .checked_mul(self.params.page_words)
            .expect("DMA region size overflows u64");
        self.dma_base()
            .checked_add(dma_words)
            .expect("physical memory size overflows u64")
    }

    /// Physical address of word 0 of RAM page `pn`.
    pub fn ram_page_addr(&self, pn: u64) -> u64 {
        debug_assert!(pn < self.params.nr_pages);
        self.pages_base()
            .checked_add(
                pn.checked_mul(self.params.page_words)
                    .expect("RAM page offset overflows u64"),
            )
            .expect("RAM page address overflows u64")
    }

    /// Physical address of word 0 of DMA page `d`.
    pub fn dma_page_addr(&self, d: u64) -> u64 {
        debug_assert!(d < self.params.nr_dmapages);
        self.dma_base()
            .checked_add(
                d.checked_mul(self.params.page_words)
                    .expect("DMA page offset overflows u64"),
            )
            .expect("DMA page address overflows u64")
    }

    /// Physical address of word 0 of combined-space frame `pfn`.
    pub fn pfn_addr(&self, pfn: u64) -> u64 {
        if pfn < self.params.nr_pages {
            self.ram_page_addr(pfn)
        } else {
            self.dma_page_addr(pfn - self.params.nr_pages)
        }
    }
}

/// CPU mode: the kernel runs in root mode, processes in non-root (guest)
/// mode, as in Dune and Hyperkernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Host/root mode (the kernel, identity-mapped).
    Root,
    /// Guest mode (a user process, behind its own page table).
    Guest,
}

/// The machine.
#[derive(Debug)]
pub struct Machine {
    /// Memory map.
    pub map: MemoryMap,
    /// Physical memory.
    pub phys: PhysMem,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Cycle counter.
    pub cycles: Cycles,
    /// Current mode.
    pub mode: Mode,
    /// Current guest page-table root (RAM page number).
    cr3: u64,
    tlb: Tlb,
    /// IOMMU state.
    pub iommu: Iommu,
    /// Pending interrupt vectors (FIFO).
    pending_irqs: Vec<u64>,
    /// The console device (debug output).
    pub console: crate::dev::Console,
    /// Guest instructions/accesses remaining before a preemption-timer
    /// exit fires; `None` disables the timer.
    pub timer_remaining: Option<u64>,
}

impl Machine {
    /// Creates a machine with zeroed memory, in root mode.
    pub fn new(params: KernelParams, kernel_words: u64, cost: CostModel) -> Self {
        let map = MemoryMap::new(params, kernel_words);
        Machine {
            map,
            phys: PhysMem::new(map.total_words()),
            cost,
            cycles: Cycles::default(),
            mode: Mode::Root,
            cr3: 0,
            tlb: Tlb::new(64),
            iommu: Iommu::new(params.nr_devs),
            pending_irqs: Vec::new(),
            console: crate::dev::Console::default(),
            timer_remaining: None,
        }
    }

    /// Kernel parameters.
    pub fn params(&self) -> &KernelParams {
        &self.map.params
    }

    // ------------------------------------------------------------------
    // Mode transitions (the costs Figure 10/11 measure).
    // ------------------------------------------------------------------

    /// Charges a `vmcall`/`vmresume` round trip (guest -> root -> guest).
    pub fn charge_hypercall_roundtrip(&mut self) {
        self.cycles.charge(self.cost.uarch.hypercall_cycles);
    }

    /// Charges a `syscall`/`sysret` round trip (same address space).
    pub fn charge_syscall_roundtrip(&mut self) {
        self.cycles.charge(self.cost.uarch.syscall_cycles);
    }

    /// Charges a fault vectored directly to a user handler through the
    /// guest IDT (Hyperkernel's path: the kernel never runs).
    pub fn charge_fault_direct_user(&mut self) {
        self.cycles.charge(self.cost.fault_vector_user);
    }

    /// Charges a fault that enters the kernel (baseline path, part 1).
    pub fn charge_fault_kernel_entry(&mut self) {
        self.cycles.charge(self.cost.fault_vector_kernel);
    }

    /// Charges a signal-style upcall + return (baseline path, part 2).
    pub fn charge_signal_upcall(&mut self) {
        self.cycles.charge(self.cost.signal_upcall);
    }

    /// Charges `n` kernel instructions (HIR instructions executed by a
    /// trap handler, or equivalent baseline-kernel work).
    pub fn charge_kernel_work(&mut self, instructions: u64) {
        self.cycles.charge(instructions * self.cost.kernel_inst);
    }

    // ------------------------------------------------------------------
    // Guest address translation and memory access.
    // ------------------------------------------------------------------

    /// Loads the guest CR3 (flushes the TLB, charging for it).
    pub fn set_cr3(&mut self, root_pn: u64) {
        if self.cr3 != root_pn {
            self.tlb.flush_all();
            self.cycles.charge(self.cost.tlb_flush);
        }
        self.cr3 = root_pn;
    }

    /// Current guest CR3.
    pub fn cr3(&self) -> u64 {
        self.cr3
    }

    /// Invalidates one virtual page in the TLB (INVLPG).
    pub fn invlpg(&mut self, va: VirtAddr) {
        let vpage = va / self.map.params.page_words;
        self.tlb.flush_page(vpage);
        self.cycles.charge(self.cost.tlb_invlpg);
    }

    /// Flushes the whole TLB.
    pub fn flush_tlb(&mut self) {
        self.tlb.flush_all();
        self.cycles.charge(self.cost.tlb_flush);
    }

    /// Translates a guest virtual address, consulting the TLB.
    pub fn translate(&mut self, va: VirtAddr, access: AccessKind) -> Result<u64, PageFault> {
        let params = self.map.params;
        let vpage = va / params.page_words;
        let offset = va % params.page_words;
        if let Some((pfn, _w)) = self.tlb.lookup(vpage, access == AccessKind::Write) {
            self.cycles.charge(self.cost.tlb_hit);
            return Ok(self.map.pfn_addr(pfn) + offset);
        }
        self.cycles.charge(self.cost.walk_level * hk_abi::PT_LEVELS);
        let t = paging::walk(&self.phys, &self.map, self.cr3, va, access)?;
        self.tlb.insert(vpage, t.pfn, t.writable);
        Ok(t.phys_addr)
    }

    /// Guest memory read.
    pub fn guest_read(&mut self, va: VirtAddr) -> Result<i64, PageFault> {
        let addr = self.translate(va, AccessKind::Read)?;
        self.cycles.charge(self.cost.mem_access);
        self.tick_timer();
        Ok(self.phys.read(addr))
    }

    /// Guest memory write.
    pub fn guest_write(&mut self, va: VirtAddr, val: i64) -> Result<(), PageFault> {
        let addr = self.translate(va, AccessKind::Write)?;
        self.cycles.charge(self.cost.mem_access);
        self.tick_timer();
        self.phys.write(addr, val);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Preemption timer.
    // ------------------------------------------------------------------

    /// Arms the preemption timer: after `quantum` guest accesses, the
    /// next [`Machine::timer_expired`] check reports true.
    pub fn arm_timer(&mut self, quantum: u64) {
        self.timer_remaining = Some(quantum);
    }

    fn tick_timer(&mut self) {
        if let Some(t) = &mut self.timer_remaining {
            *t = t.saturating_sub(1);
        }
    }

    /// Whether the quantum has expired (a VM-exit would fire).
    pub fn timer_expired(&self) -> bool {
        self.timer_remaining == Some(0)
    }

    // ------------------------------------------------------------------
    // Interrupts and DMA.
    // ------------------------------------------------------------------

    /// A device raises an interrupt vector.
    pub fn raise_irq(&mut self, vector: u64) {
        self.pending_irqs.push(vector);
    }

    /// Dequeues the oldest pending interrupt, if any.
    pub fn take_irq(&mut self) -> Option<u64> {
        if self.pending_irqs.is_empty() {
            None
        } else {
            Some(self.pending_irqs.remove(0))
        }
    }

    /// Device `dev` writes one word at device address `dva` through the
    /// IOMMU.
    pub fn dma_write(&mut self, dev: u64, dva: u64, val: i64) -> Result<(), DmaFault> {
        let addr = self.iommu.walk(&self.phys, &self.map, dev, dva, true)?;
        self.phys.write(addr, val);
        Ok(())
    }

    /// Device `dev` reads one word at device address `dva` through the
    /// IOMMU.
    pub fn dma_read(&mut self, dev: u64, dva: u64) -> Result<i64, DmaFault> {
        let addr = self.iommu.walk(&self.phys, &self.map, dev, dva, false)?;
        Ok(self.phys.read(addr))
    }

    /// TLB statistics `(hits, misses, flushes)`.
    pub fn tlb_stats(&self) -> (u64, u64, u64) {
        (self.tlb.hits, self.tlb.misses, self.tlb.flushes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use hk_abi::{pte_encode, PTE_P, PTE_U, PTE_W};

    fn machine() -> Machine {
        Machine::new(
            KernelParams::verification(),
            128,
            CostModel::default_model(),
        )
    }

    fn identity_map_page(m: &mut Machine, root: u64, va: u64, leaf_pfn: u64, perm: i64) {
        let params = *m.params();
        let (idx, _) = crate::paging::split_va(&params, va).unwrap();
        let tables = [root, root + 1, root + 2, root + 3];
        let all = PTE_P | PTE_W | PTE_U;
        for lvl in 0..3 {
            let addr = m.map.ram_page_addr(tables[lvl]) + idx[lvl];
            m.phys.write(addr, pte_encode(tables[lvl + 1] as i64, all));
        }
        let addr = m.map.ram_page_addr(tables[3]) + idx[3];
        m.phys.write(addr, pte_encode(leaf_pfn as i64, perm));
    }

    #[test]
    fn memory_map_regions_tile_exactly() {
        let m = machine();
        let map = m.map;
        let params = map.params;
        // Regions are contiguous: kernel | RAM pages | DMA pages.
        assert_eq!(map.ram_page_addr(0), map.pages_base());
        assert_eq!(
            map.ram_page_addr(params.nr_pages - 1) + params.page_words,
            map.dma_base()
        );
        assert_eq!(map.dma_page_addr(0), map.dma_base());
        assert_eq!(
            map.dma_page_addr(params.nr_dmapages - 1) + params.page_words,
            map.total_words()
        );
        // pfn space covers RAM then DMA with no gap.
        assert_eq!(map.pfn_addr(params.nr_pages), map.dma_base());
    }

    #[test]
    fn guest_access_through_page_table() {
        let mut m = machine();
        identity_map_page(&mut m, 0, 0x20, 8, PTE_P | PTE_W | PTE_U);
        m.set_cr3(0);
        m.guest_write(0x21, 1234).unwrap();
        assert_eq!(m.guest_read(0x21).unwrap(), 1234);
        // The word landed in RAM page 8 at offset 1.
        assert_eq!(m.phys.read(m.map.ram_page_addr(8) + 1), 1234);
    }

    #[test]
    fn tlb_caches_translations() {
        let mut m = machine();
        identity_map_page(&mut m, 0, 0x20, 8, PTE_P | PTE_W | PTE_U);
        m.set_cr3(0);
        m.guest_read(0x20).unwrap();
        let miss_cycles = m.cycles.total;
        m.guest_read(0x21).unwrap();
        let hit_cycles = m.cycles.total - miss_cycles;
        assert!(hit_cycles < miss_cycles, "hit should be cheaper than miss");
        let (hits, misses, _) = m.tlb_stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn cr3_switch_flushes_tlb() {
        let mut m = machine();
        identity_map_page(&mut m, 0, 0x20, 8, PTE_P | PTE_W | PTE_U);
        m.set_cr3(0);
        m.guest_read(0x20).unwrap();
        m.set_cr3(4); // flush
        m.set_cr3(0);
        m.guest_read(0x20).unwrap();
        let (_, misses, flushes) = m.tlb_stats();
        assert_eq!(misses, 2);
        assert!(flushes >= 2);
    }

    #[test]
    fn fault_on_unmapped() {
        let mut m = machine();
        m.set_cr3(0);
        assert!(m.guest_read(0x100).is_err());
    }

    #[test]
    fn timer_expires_after_quantum() {
        let mut m = machine();
        identity_map_page(&mut m, 0, 0x20, 8, PTE_P | PTE_W | PTE_U);
        m.set_cr3(0);
        m.arm_timer(3);
        for _ in 0..3 {
            assert!(!m.timer_expired());
            m.guest_read(0x20).unwrap();
        }
        assert!(m.timer_expired());
    }

    #[test]
    fn irq_queue_fifo() {
        let mut m = machine();
        m.raise_irq(5);
        m.raise_irq(7);
        assert_eq!(m.take_irq(), Some(5));
        assert_eq!(m.take_irq(), Some(7));
        assert_eq!(m.take_irq(), None);
    }
}
