//! Word-addressed physical memory.
//!
//! Everything in this system is 64-bit-word granular: kernel globals,
//! page-table entries, page contents, and DMA buffers are all words, so
//! physical memory is simply a vector of `i64`.

/// Physical memory.
#[derive(Debug, Clone)]
pub struct PhysMem {
    words: Vec<i64>,
}

impl PhysMem {
    /// Allocates `size_words` of zeroed physical memory.
    pub fn new(size_words: u64) -> Self {
        PhysMem {
            words: vec![0; size_words as usize],
        }
    }

    /// Size in words.
    pub fn size(&self) -> u64 {
        self.words.len() as u64
    }

    /// Reads one word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range (a machine-check in real
    /// hardware; unreachable from verified code).
    pub fn read(&self, addr: u64) -> i64 {
        self.words[addr as usize]
    }

    /// Writes one word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: u64, val: i64) {
        self.words[addr as usize] = val;
    }

    /// Bounds-checks `[addr, addr + len)` and returns it as a `usize`
    /// range. `addr + len` must not wrap u64 — a wrapped end would alias
    /// low memory instead of faulting.
    fn range(&self, addr: u64, len: u64) -> std::ops::Range<usize> {
        let end = addr
            .checked_add(len)
            .unwrap_or_else(|| panic!("phys range {addr:#x}+{len:#x} wraps the address space"));
        assert!(
            end <= self.size(),
            "phys range {addr:#x}+{len:#x} exceeds memory of {:#x} words",
            self.size()
        );
        addr as usize..end as usize
    }

    /// Reads a contiguous range.
    pub fn read_range(&self, addr: u64, len: u64) -> &[i64] {
        &self.words[self.range(addr, len)]
    }

    /// Fills a contiguous range with a value.
    pub fn fill(&mut self, addr: u64, len: u64, val: i64) {
        let r = self.range(addr, len);
        self.words[r].fill(val);
    }

    /// Copies `len` words from `src` to `dst` within physical memory.
    pub fn copy(&mut self, dst: u64, src: u64, len: u64) {
        let s = self.range(src, len);
        let d = self.range(dst, len);
        self.words.copy_within(s, d.start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = PhysMem::new(64);
        m.write(10, -42);
        assert_eq!(m.read(10), -42);
        assert_eq!(m.read(11), 0);
    }

    #[test]
    fn fill_and_copy() {
        let mut m = PhysMem::new(64);
        m.fill(0, 8, 7);
        m.copy(16, 0, 8);
        assert_eq!(m.read(16), 7);
        assert_eq!(m.read(23), 7);
        assert_eq!(m.read(24), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let m = PhysMem::new(8);
        m.read(8);
    }

    #[test]
    fn ranges_at_the_exact_end_are_ok() {
        let mut m = PhysMem::new(8);
        assert_eq!(m.read_range(6, 2), &[0, 0]);
        assert!(m.read_range(8, 0).is_empty());
        m.fill(4, 4, 1);
        m.copy(0, 4, 4);
        assert_eq!(m.read(3), 1);
    }

    #[test]
    #[should_panic(expected = "wraps the address space")]
    fn read_range_wrapping_end_panics() {
        let m = PhysMem::new(8);
        m.read_range(u64::MAX - 1, 4);
    }

    #[test]
    #[should_panic(expected = "exceeds memory")]
    fn fill_past_end_panics() {
        let mut m = PhysMem::new(8);
        m.fill(6, 4, 1);
    }

    #[test]
    #[should_panic(expected = "wraps the address space")]
    fn copy_wrapping_source_panics() {
        let mut m = PhysMem::new(8);
        m.copy(0, u64::MAX, 2);
    }
}
