//! A small translation lookaside buffer.
//!
//! The TLB caches virtual-page → frame translations per address space and
//! is flushed on CR3 switches, which is where Hyperkernel pays for its
//! separate kernel/user page tables. Hit/miss statistics feed the cycle
//! model.

use std::collections::HashMap;

/// A TLB entry.
#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    pfn: u64,
    writable: bool,
}

/// The TLB.
#[derive(Debug)]
pub struct Tlb {
    entries: HashMap<u64, TlbEntry>,
    capacity: usize,
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
    /// Number of full flushes.
    pub flushes: u64,
}

impl Tlb {
    /// Creates a TLB with the given capacity (entries).
    pub fn new(capacity: usize) -> Self {
        Tlb {
            entries: HashMap::new(),
            capacity,
            hits: 0,
            misses: 0,
            flushes: 0,
        }
    }

    /// Looks up a virtual page. A write access through a read-only entry
    /// is a miss (the walker must re-check permissions).
    pub fn lookup(&mut self, vpage: u64, write: bool) -> Option<(u64, bool)> {
        match self.entries.get(&vpage) {
            Some(e) if !write || e.writable => {
                self.hits += 1;
                Some((e.pfn, e.writable))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a translation (evicting arbitrarily when full).
    pub fn insert(&mut self, vpage: u64, pfn: u64, writable: bool) {
        if self.entries.len() >= self.capacity {
            // Cheap pseudo-random eviction: drop one arbitrary entry.
            if let Some(&k) = self.entries.keys().next() {
                self.entries.remove(&k);
            }
        }
        self.entries.insert(vpage, TlbEntry { pfn, writable });
    }

    /// Flushes everything (CR3 reload).
    pub fn flush_all(&mut self) {
        self.entries.clear();
        self.flushes += 1;
    }

    /// Flushes one virtual page (INVLPG).
    pub fn flush_page(&mut self, vpage: u64) {
        self.entries.remove(&vpage);
    }

    /// Current number of cached translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no translations are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let mut t = Tlb::new(4);
        assert_eq!(t.lookup(5, false), None);
        t.insert(5, 42, false);
        assert_eq!(t.lookup(5, false), Some((42, false)));
        // Write through a read-only entry misses.
        assert_eq!(t.lookup(5, true), None);
        assert_eq!(t.hits, 1);
        assert_eq!(t.misses, 2);
    }

    #[test]
    fn flush_clears() {
        let mut t = Tlb::new(4);
        t.insert(1, 10, true);
        t.insert(2, 20, true);
        t.flush_page(1);
        assert_eq!(t.lookup(1, false), None);
        assert_eq!(t.lookup(2, false), Some((20, true)));
        t.flush_all();
        assert!(t.is_empty());
        assert_eq!(t.flushes, 1);
    }

    #[test]
    fn capacity_bounded() {
        let mut t = Tlb::new(2);
        t.insert(1, 1, true);
        t.insert(2, 2, true);
        t.insert(3, 3, true);
        assert!(t.len() <= 2);
    }
}
