//! Simulated devices: console, block device, and a NIC.
//!
//! These stand in for the paper's serial console, NVM Express disk, and
//! E1000 network card. They are deliberately simple — the point is that
//! their *drivers* live in user space and reach them only through
//! delegated I/O ports, IOMMU-mapped DMA buffers, and delegated interrupt
//! vectors, exercising exactly the kernel paths the paper verifies.

use crate::iommu::DmaFault;
use crate::machine::Machine;

/// A write-only console (the kernel's debug output and user `putc`).
#[derive(Debug, Default, Clone)]
pub struct Console {
    /// Accumulated output bytes.
    pub out: Vec<u8>,
}

impl Console {
    /// Writes one character (low byte of `val`).
    pub fn putc(&mut self, val: i64) {
        self.out.push(val as u8);
    }

    /// The output as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.out).into_owned()
    }
}

/// A block device: an array of sectors, each one page worth of words.
/// Transfers are DMA through the IOMMU, completion raises an interrupt —
/// the shape of an NVMe queue pair reduced to one slot.
#[derive(Debug)]
pub struct BlockDev {
    /// Device id for IOMMU walks.
    pub dev_id: u64,
    /// Interrupt vector raised on completion.
    pub vector: u64,
    /// Sector size in words (one page).
    pub sector_words: u64,
    sectors: Vec<i64>,
    /// Completed operations (for tests/statistics).
    pub ops_completed: u64,
}

impl BlockDev {
    /// Creates a device with `nr_sectors` zeroed sectors.
    pub fn new(dev_id: u64, vector: u64, sector_words: u64, nr_sectors: u64) -> Self {
        BlockDev {
            dev_id,
            vector,
            sector_words,
            sectors: vec![0; (sector_words * nr_sectors) as usize],
            ops_completed: 0,
        }
    }

    /// Number of sectors.
    pub fn nr_sectors(&self) -> u64 {
        self.sectors.len() as u64 / self.sector_words
    }

    /// DMA-reads sector `lba` into the device address `dva` (a buffer the
    /// driver mapped through IOMMU system calls) and raises completion.
    pub fn read_sector(
        &mut self,
        machine: &mut Machine,
        lba: u64,
        dva: u64,
    ) -> Result<(), DmaFault> {
        assert!(lba < self.nr_sectors(), "lba out of range");
        for i in 0..self.sector_words {
            let word = self.sectors[(lba * self.sector_words + i) as usize];
            machine.dma_write(self.dev_id, dva + i, word)?;
        }
        self.ops_completed += 1;
        machine.raise_irq(self.vector);
        Ok(())
    }

    /// DMA-writes sector `lba` from the device address `dva`.
    pub fn write_sector(
        &mut self,
        machine: &mut Machine,
        lba: u64,
        dva: u64,
    ) -> Result<(), DmaFault> {
        assert!(lba < self.nr_sectors(), "lba out of range");
        for i in 0..self.sector_words {
            let word = machine.dma_read(self.dev_id, dva + i)?;
            self.sectors[(lba * self.sector_words + i) as usize] = word;
        }
        self.ops_completed += 1;
        machine.raise_irq(self.vector);
        Ok(())
    }

    /// Direct sector access for test setup (factory-programmed disk).
    pub fn sector_mut(&mut self, lba: u64) -> &mut [i64] {
        let s = (lba * self.sector_words) as usize;
        &mut self.sectors[s..s + self.sector_words as usize]
    }
}

/// A network interface: frames are word vectors moved by DMA, receive
/// raises an interrupt. A `Nic` pair can be cross-connected through
/// [`Wire`] for loopback networking between processes or machines.
#[derive(Debug)]
pub struct Nic {
    /// Device id for IOMMU walks.
    pub dev_id: u64,
    /// Interrupt vector raised on frame reception.
    pub vector: u64,
    /// Frames queued for delivery into the guest (wire -> host).
    pub rx_queue: Vec<Vec<i64>>,
    /// Frames transmitted by the guest (host -> wire).
    pub tx_queue: Vec<Vec<i64>>,
}

impl Nic {
    /// Creates a NIC.
    pub fn new(dev_id: u64, vector: u64) -> Self {
        Nic {
            dev_id,
            vector,
            rx_queue: Vec::new(),
            tx_queue: Vec::new(),
        }
    }

    /// The wire delivers a frame; it is queued until the driver fetches
    /// it into a DMA buffer.
    pub fn wire_deliver(&mut self, machine: &mut Machine, frame: Vec<i64>) {
        self.rx_queue.push(frame);
        machine.raise_irq(self.vector);
    }

    /// Driver: DMA the oldest received frame into `dva`; returns its
    /// length in words, or `None` if the queue is empty.
    pub fn fetch_rx(
        &mut self,
        machine: &mut Machine,
        dva: u64,
        max_words: u64,
    ) -> Result<Option<u64>, DmaFault> {
        if self.rx_queue.is_empty() {
            return Ok(None);
        }
        let frame = self.rx_queue.remove(0);
        let n = (frame.len() as u64).min(max_words);
        for (i, w) in frame.iter().take(n as usize).enumerate() {
            machine.dma_write(self.dev_id, dva + i as u64, *w)?;
        }
        Ok(Some(n))
    }

    /// Driver: transmit `len` words from the DMA buffer at `dva`.
    pub fn transmit(&mut self, machine: &mut Machine, dva: u64, len: u64) -> Result<(), DmaFault> {
        let mut frame = Vec::with_capacity(len as usize);
        for i in 0..len {
            frame.push(machine.dma_read(self.dev_id, dva + i)?);
        }
        self.tx_queue.push(frame);
        Ok(())
    }
}

/// A full-duplex wire between two NICs (moves tx frames of one into the
/// rx queue of the other).
#[derive(Debug, Default)]
pub struct Wire;

impl Wire {
    /// Moves all pending frames in both directions; returns how many
    /// frames moved.
    pub fn pump(a: &mut Nic, ma: &mut Machine, b: &mut Nic, mb: &mut Machine) -> usize {
        let mut moved = 0;
        for f in std::mem::take(&mut a.tx_queue) {
            b.wire_deliver(mb, f);
            moved += 1;
        }
        for f in std::mem::take(&mut b.tx_queue) {
            a.wire_deliver(ma, f);
            moved += 1;
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use hk_abi::{pte_encode, KernelParams, PTE_P, PTE_U, PTE_W};

    /// Machine with device 0's IOMMU mapped so dva [0, page) hits DMA
    /// page 0.
    fn machine_with_dma() -> Machine {
        let params = KernelParams::verification();
        let mut m = Machine::new(params, 64, CostModel::default_model());
        let perm = PTE_P | PTE_W | PTE_U;
        // IOMMU walk via RAM pages 0..3 to DMA page 0.
        for (i, next) in [(0u64, 1i64), (1, 2), (2, 3)] {
            let addr = m.map.ram_page_addr(i);
            m.phys.write(addr, pte_encode(next, perm));
        }
        let dma0 = params.nr_pages as i64;
        let addr = m.map.ram_page_addr(3);
        m.phys.write(addr, pte_encode(dma0, perm));
        m.iommu.set_root(0, Some(0));
        m
    }

    #[test]
    fn block_device_roundtrip() {
        let mut m = machine_with_dma();
        let words = m.params().page_words;
        let mut disk = BlockDev::new(0, 3, words, 8);
        let pattern: Vec<i64> = (0..words as i64).map(|i| 9 - i).collect();
        disk.sector_mut(5).copy_from_slice(&pattern);
        disk.read_sector(&mut m, 5, 0).unwrap();
        // Data arrived in DMA page 0.
        assert_eq!(m.phys.read(m.map.dma_page_addr(0)), 9);
        assert_eq!(m.take_irq(), Some(3));
        // Modify the buffer, write it back to sector 6.
        let base = m.map.dma_page_addr(0);
        m.phys.write(base, 100);
        disk.write_sector(&mut m, 6, 0).unwrap();
        assert_eq!(disk.sector_mut(6)[0], 100);
        assert_eq!(disk.sector_mut(6)[1], 8);
    }

    #[test]
    fn nic_rx_tx() {
        let mut m = machine_with_dma();
        let mut nic = Nic::new(0, 4);
        nic.wire_deliver(&mut m, vec![1, 2, 3]);
        assert_eq!(m.take_irq(), Some(4));
        let n = nic.fetch_rx(&mut m, 0, 8).unwrap().unwrap();
        assert_eq!(n, 3);
        assert_eq!(m.phys.read(m.map.dma_page_addr(0) + 2), 3);
        nic.transmit(&mut m, 0, 3).unwrap();
        assert_eq!(nic.tx_queue.len(), 1);
        assert_eq!(nic.tx_queue[0], vec![1, 2, 3]);
    }
}
