//! Figure 11: `syscall` vs `hypercall` round-trip cycles across seven
//! x86 microarchitectures.
//!
//! The per-microarchitecture instruction latencies are the paper's
//! measured values (the cost-model inputs); this harness drives the two
//! *full* trap paths — the baseline's `syscall` entry and Hyperkernel's
//! `vmcall` VM exit — on each profile, so the table also shows the extra
//! kernel work each design adds on top of the raw instruction pair.
//!
//! ```sh
//! cargo run --release -p hk-bench --bin fig11_hypercall
//! ```

use hk_abi::KernelParams;
use hk_bench::{row, HkBench, MonoBench};
use hk_vm::{CostModel, MICROARCHES};

fn main() {
    let params = KernelParams::production();
    println!("Figure 11: syscall vs hypercall cycles per microarchitecture\n");
    row(
        "model (uarch)",
        &[
            "syscall".into(),
            "hypercall".into(),
            "null-sys".into(),
            "null-hyp".into(),
            "ratio".into(),
        ],
    );
    for &uarch in MICROARCHES {
        let cost = CostModel::for_uarch(uarch);
        let mut mono = MonoBench::new(params, cost, 1);
        let mut hk = HkBench::new(params, cost, 1);
        // Average over repeated round trips, as the paper does (50M on
        // silicon; the simulation is deterministic so fewer suffice).
        let n = 64;
        let sys_path: u64 = (0..n).map(|_| mono.nop()).sum::<u64>() / n;
        let hyp_path: u64 = (0..n).map(|_| hk.nop()).sum::<u64>() / n;
        row(
            &format!("{} ({})", uarch.model, uarch.uarch),
            &[
                uarch.syscall_cycles.to_string(),
                uarch.hypercall_cycles.to_string(),
                sys_path.to_string(),
                hyp_path.to_string(),
                format!("{:.1}x", hyp_path as f64 / sys_path as f64),
            ],
        );
    }
    println!(
        "\ncolumns 1-2: the paper's measured instruction-pair latencies \
         (cost-model inputs);\ncolumns 3-4: the measured full null-call \
         paths on this substrate (instruction pair + kernel work).\n\
         The paper's observation holds: hypercalls cost roughly an order \
         of magnitude more than syscalls,\nand the gap narrows on newer \
         microarchitectures (Nehalem 961 -> Kaby Lake 497)."
    );
}
