//! §6.3 scaling: verification time vs kernel-state size.
//!
//! The paper increased the maximum number of pages by 2x, 4x, and 100x
//! "and did not observe a noticeable increase in verification time" —
//! the payoff of finite interfaces: every handler touches a constant
//! number of resources, so only the instantiated invariant grows, not
//! the handler's trace.
//!
//! ```sh
//! cargo run --release -p hk-bench --bin tab_scaling [--factors 1,2,4]
//! ```

use hk_abi::{KernelParams, Sysno};
use hk_core::{verify_all, VerifyConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let factors: Vec<u64> = args
        .iter()
        .position(|a| a == "--factors")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').filter_map(|v| v.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4]);
    // Handlers on the page path (where scaling would bite if anywhere).
    let handlers = vec![
        Sysno::AllocFrame,
        Sysno::FreeFrame,
        Sysno::Dup,
        Sysno::AckIntr,
    ];
    println!("§6.3: verification time vs NR_PAGES scaling\n");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>10}",
        "factor", "NR_PAGES", "state cells", "time", "verified"
    );
    for factor in factors {
        let params = KernelParams::verification_scaled_pages(factor);
        let config = VerifyConfig {
            params,
            threads: 1,
            only: handlers.clone(),
            ..VerifyConfig::default()
        };
        let cells = params.nr_pages * (params.page_words + 7) + 500; // rough
        let report = verify_all(&config);
        println!(
            "{:<10} {:>10} {:>12} {:>9.1}s {:>7}/{}",
            format!("x{factor}"),
            params.nr_pages,
            cells,
            report.total_time.as_secs_f64(),
            report
                .handlers
                .iter()
                .filter(|h| h.outcome.is_verified())
                .count(),
            report.handlers.len()
        );
    }
    println!(
        "\nnote: with finite instantiation (unlike Z3's quantifier engine),\n\
         the *invariant* grows linearly with NR_PAGES, so some growth is\n\
         expected here; the handler traces themselves stay constant, which\n\
         is the property §2.1 claims. The paper's Z3 setup hides the\n\
         instantiation cost inside E-matching."
    );
}
