//! Figure 10: run-time benchmark cycles on "Linux" (the monolithic
//! baseline), Hyperkernel, and Hyp-Linux (the in-process emulation
//! layer), all on the same simulated Kaby Lake machine.
//!
//! ```sh
//! cargo run --release -p hk-bench --bin fig10_runtime
//! ```

use hk_abi::KernelParams;
use hk_bench::{hyp_linux_nop_cycles, row, HkBench, MonoBench};
use hk_vm::CostModel;

fn avg<F: FnMut() -> u64>(iters: u64, mut f: F) -> u64 {
    let total: u64 = (0..iters).map(|_| f()).sum();
    total / iters
}

fn main() {
    let params = KernelParams::production();
    let cost = CostModel::default_model();
    let pages = 64.min(params.page_words as i64);
    let mut hk = HkBench::new(params, cost, pages);
    let mut mono = MonoBench::new(params, cost, pages);
    let iters = 200;

    // syscall: gettid on Linux / Hyp-Linux, sys_nop on Hyperkernel.
    let mono_nop = avg(iters, || mono.nop());
    let hk_nop = avg(iters, || hk.nop());
    let hyp_linux_nop = hyp_linux_nop_cycles();

    // fault: dispatch a write-protection fault to a user handler.
    let mono_fault = avg(iters, || mono.fault_dispatch());
    let hk_fault = avg(iters, || hk.fault_dispatch(0));
    // Hyp-Linux faults take the same direct path plus emulator dispatch.
    let hyp_linux_fault = hk_fault + hyp_linux_nop;

    // appel1 / appel2: per-100-pages totals, as the paper reports
    // (prot1/trap/unprot and protN/trap/unprot over the working set).
    let rounds = 100 / pages as u64 + 1;
    let hk_a1 = avg(rounds, || {
        (0..pages).map(|i| hk.appel1_step(i)).sum::<u64>()
    }) * 100
        / pages as u64;
    let mono_a1 = avg(rounds, || {
        (0..pages).map(|i| mono.appel1_step(i)).sum::<u64>()
    }) * 100
        / pages as u64;
    let hk_a2 = avg(rounds, || hk.appel2_round()) * 100 / pages as u64;
    let mono_a2 = avg(rounds, || mono.appel2_round()) * 100 / pages as u64;
    // Hyp-Linux uses the same verified VM calls via emulation: add the
    // dispatch overhead per emulated syscall (3 per page in appel1).
    let hyp_a1 = hk_a1 + 3 * 100 * hyp_linux_nop / 2;
    let hyp_a2 = hk_a2 + 3 * 100 * hyp_linux_nop / 2;

    println!("Figure 10: cycle counts (simulated Kaby Lake)\n");
    row(
        "benchmark",
        &["Linux".into(), "Hyperkernel".into(), "Hyp-Linux".into()],
    );
    row(
        "syscall",
        &[
            mono_nop.to_string(),
            hk_nop.to_string(),
            hyp_linux_nop.to_string(),
        ],
    );
    row(
        "fault",
        &[
            mono_fault.to_string(),
            hk_fault.to_string(),
            hyp_linux_fault.to_string(),
        ],
    );
    row(
        "appel1 (per 100 pages)",
        &[mono_a1.to_string(), hk_a1.to_string(), hyp_a1.to_string()],
    );
    row(
        "appel2 (per 100 pages)",
        &[mono_a2.to_string(), hk_a2.to_string(), hyp_a2.to_string()],
    );
    println!("\npaper (Figure 10, real i7-7700K):");
    row("syscall", &["125".into(), "490".into(), "136".into()]);
    row("fault", &["2917".into(), "615".into(), "722".into()]);
    row(
        "appel1",
        &["637562".into(), "459522".into(), "519235".into()],
    );
    row(
        "appel2",
        &["623062".into(), "452611".into(), "482596".into()],
    );
    println!(
        "\nshape checks: hypercall/syscall = {:.1}x (paper 3.9x), \
         linux/hk fault = {:.1}x (paper 4.7x), hk wins appel1: {}, appel2: {}",
        hk_nop as f64 / mono_nop as f64,
        mono_fault as f64 / hk_fault as f64,
        hk_a1 < mono_a1,
        hk_a2 < mono_a2,
    );
}
