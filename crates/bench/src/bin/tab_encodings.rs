//! §3.3 ablation: SMT encodings of crosscutting properties.
//!
//! The paper's claim: naive encodings of exclusive ownership and
//! reference counting "can easily cause the solver to enumerate the
//! search space", while the inverse-function and permutation
//! reformulations scale. This harness times, for each encoding, the
//! canonical Theorem-2-shaped query — assume the property, apply the
//! `dup` transition, refute the property afterwards — plus a
//! satisfiability probe (non-vacuity).
//!
//! ```sh
//! cargo run --release -p hk-bench --bin tab_encodings
//! ```

use std::time::Instant;

use hk_abi::{KernelParams, Sysno};
use hk_kernel::KernelImage;
use hk_smt::{Ctx, SatResult, Solver, Sort, TermId};
use hk_spec::encode::{
    exclusive_pml4_inverse, exclusive_pml4_naive, file_refcnt_permutation, file_refcnt_sum,
};
use hk_spec::{shapes_of, spec_transition, SpecState};

type Builder = fn(&mut Ctx, &mut SpecState) -> TermId;

fn preservation_query(
    params: KernelParams,
    shapes: &[hk_spec::GlobalShape],
    build: Builder,
    sysno: Sysno,
) -> (bool, f64, u64) {
    let start = Instant::now();
    let mut ctx = Ctx::new();
    let mut st = SpecState::fresh(&mut ctx, shapes, params);
    let pre = build(&mut ctx, &mut st);
    let args: Vec<TermId> = (0..sysno.arg_count())
        .map(|i| ctx.var(format!("arg{i}"), Sort::Bv(64)))
        .collect();
    let mut post = st.clone();
    let _ = spec_transition(&mut ctx, &mut post, sysno, &args);
    let post_p = build(&mut ctx, &mut post);
    let bad = ctx.not(post_p);
    let mut solver = Solver::new();
    solver.assert(&mut ctx, pre);
    solver.assert(&mut ctx, bad);
    let result = solver.check(&mut ctx);
    (
        result.is_unsat(),
        start.elapsed().as_secs_f64(),
        solver.stats.conflicts,
    )
}

fn satisfiable(
    params: KernelParams,
    shapes: &[hk_spec::GlobalShape],
    build: Builder,
) -> (bool, f64) {
    let start = Instant::now();
    let mut ctx = Ctx::new();
    let mut st = SpecState::fresh(&mut ctx, shapes, params);
    let p = build(&mut ctx, &mut st);
    let mut solver = Solver::new();
    solver.assert(&mut ctx, p);
    let sat = matches!(solver.check(&mut ctx), SatResult::Sat(_));
    (sat, start.elapsed().as_secs_f64())
}

fn main() {
    let params = KernelParams::verification();
    let image = KernelImage::build(params).expect("kernel");
    let shapes = shapes_of(&image.module);
    println!("§3.3 encodings ablation (finite-instantiation discharge)\n");
    println!(
        "{:<34} {:>9} {:>9} {:>10} {:>10}",
        "encoding/query", "verdict", "time", "conflicts", "sat-probe"
    );
    let rows: Vec<(&str, Builder, Sysno)> = vec![
        (
            "exclusive pml4, naive pairs",
            exclusive_pml4_naive as Builder,
            Sysno::CloneProc,
        ),
        (
            "exclusive pml4, inverse fn",
            exclusive_pml4_inverse as Builder,
            Sysno::CloneProc,
        ),
        (
            "file refcnt, direct sum",
            file_refcnt_sum as Builder,
            Sysno::Dup,
        ),
        (
            "file refcnt, permutation",
            file_refcnt_permutation as Builder,
            Sysno::Dup,
        ),
    ];
    for (name, build, sysno) in rows {
        // Note: the naive exclusivity and permutation encodings are not
        // inductive in isolation (the paper pairs them with the rest of
        // the spec); we report preservation for the inductive ones and
        // the satisfiability probe for all.
        let (sat, sat_time) = satisfiable(params, &shapes, build);
        let (holds, time, conflicts) = preservation_query(params, &shapes, build, sysno);
        println!(
            "{:<34} {:>9} {:>8.2}s {:>10} {:>6} {:.2}s",
            name,
            if holds { "holds" } else { "cex" },
            time,
            conflicts,
            if sat { "sat" } else { "UNSAT!" },
            sat_time
        );
    }
    println!(
        "\nreading: with quantifiers discharged by finite instantiation, the\n\
         direct sum is competitive (it is what our declarative layer uses);\n\
         the paper's permutation/inverse forms matter most under Z3's\n\
         quantifier engine, and the inverse-function form is still the\n\
         cheaper exclusivity statement here."
    );
}
