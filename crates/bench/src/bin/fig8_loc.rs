//! Figure 8: lines of code per component, this repository vs the paper.
//!
//! The paper counts its C/assembly/Python artifact; we count the Rust
//! reproduction with the same component boundaries. Counts are
//! non-blank, non-comment-only lines.
//!
//! ```sh
//! cargo run -p hk-bench --bin fig8_loc
//! ```

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/bench -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

/// Counts non-blank, non-pure-comment lines in one file.
fn count_file(path: &Path) -> u64 {
    let Ok(text) = std::fs::read_to_string(path) else {
        return 0;
    };
    text.lines()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with("//") && !t.starts_with("///") && !t.starts_with("//!")
        })
        .count() as u64
}

/// Recursively counts files under `dir` with the given extensions.
fn count_dir(dir: &Path, exts: &[&str]) -> u64 {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            total += count_dir(&path, exts);
        } else if let Some(ext) = path.extension().and_then(|e| e.to_str()) {
            if exts.contains(&ext) {
                total += count_file(&path);
            }
        }
    }
    total
}

fn main() {
    let root = repo_root();
    let p = |s: &str| root.join(s);

    // Component boundaries chosen to match Figure 8's rows.
    let kernel_impl = count_dir(&p("crates/kernel/src/hyperc"), &["hc"])
        - count_file(&p("crates/kernel/src/hyperc/repinv.hc"))
        + count_dir(&p("crates/kernel/src"), &["rs"]);
    let rep_invariant = count_file(&p("crates/kernel/src/hyperc/repinv.hc"));
    let state_machine_spec = count_dir(&p("crates/spec/src/handlers"), &["rs"])
        + count_file(&p("crates/spec/src/helpers.rs"))
        + count_file(&p("crates/spec/src/run.rs"))
        + count_file(&p("crates/spec/src/state.rs"));
    let declarative_spec =
        count_file(&p("crates/spec/src/decl.rs")) + count_file(&p("crates/spec/src/encode.rs"));
    let user_space = count_dir(&p("crates/user/src"), &["rs"]);
    let verifier = count_dir(&p("crates/smt/src"), &["rs"])
        + count_dir(&p("crates/hir/src"), &["rs"])
        + count_dir(&p("crates/hcc/src"), &["rs"])
        + count_dir(&p("crates/symx/src"), &["rs"])
        + count_dir(&p("crates/core/src"), &["rs"]);
    let substrate = count_dir(&p("crates/vm/src"), &["rs"])
        + count_dir(&p("crates/mono/src"), &["rs"])
        + count_dir(&p("crates/abi/src"), &["rs"])
        + count_dir(&p("crates/checkers/src"), &["rs"]);
    let evaluation = count_dir(&p("crates/bench"), &["rs"])
        + count_dir(&p("tests"), &["rs"])
        + count_dir(&p("examples"), &["rs"]);

    println!("Figure 8: lines of code per component\n");
    println!(
        "{:<28} {:>8} {:>22} {:>10}",
        "component", "here", "languages", "paper"
    );
    let rows: &[(&str, u64, &str, &str)] = &[
        (
            "kernel implementation",
            kernel_impl,
            "HyperC, Rust",
            "7419 (C, asm)",
        ),
        (
            "representation invariant",
            rep_invariant,
            "HyperC",
            "197 (C)",
        ),
        (
            "state-machine spec",
            state_machine_spec,
            "Rust",
            "804 (Python)",
        ),
        ("declarative spec", declarative_spec, "Rust", "263 (Python)"),
        (
            "user-space implementation",
            user_space,
            "Rust",
            "10025 (C, asm)",
        ),
        ("verifier toolchain", verifier, "Rust", "2878 (C++, Python)"),
        ("machine substrate+checkers", substrate, "Rust", "n/a*"),
        ("evaluation harness", evaluation, "Rust", "n/a"),
    ];
    let mut total = 0;
    for (name, count, langs, paper) in rows {
        println!("{name:<28} {count:>8} {langs:>22} {paper:>10}");
        total += count;
    }
    println!("{:<28} {total:>8}", "total");
    println!(
        "\n* the paper's substrate was physical hardware + Z3 + LLVM; here\n\
         the machine, the solver, and the IR are part of the artifact,\n\
         which is why the verifier/toolchain row is larger."
    );
}
