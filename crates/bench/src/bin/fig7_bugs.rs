//! Figure 7: the xv6 bug table, reproduced by injection.
//!
//! Re-introduces each kernel-side bug class into the HyperC sources and
//! runs the verifier on the affected handler; the three exec/loader
//! classes are demonstrated as user-space-confined by the integration
//! test suite (`tests/bug_injection.rs`) and marked accordingly here.
//!
//! ```sh
//! cargo run --release -p hk-bench --bin fig7_bugs
//! ```

use hk_abi::{KernelParams, Sysno};
use hk_core::{verify_image, HandlerOutcome, VerifyConfig};
use hk_kernel::image::SOURCES;
use hk_kernel::KernelImage;

struct Injection {
    commit: &'static str,
    class: &'static str,
    file: &'static str,
    from: &'static str,
    to: &'static str,
    handler: Sysno,
}

fn injections() -> Vec<Injection> {
    vec![
        Injection {
            commit: "8d1f9963",
            class: "incorrect pointer",
            file: "fd.hc",
            from: "    files[f].refcnt = files[f].refcnt + 1;\n    return 0;\n}\n\n// dup2",
            to: "    files[newfd].refcnt = files[newfd].refcnt + 1;\n    return 0;\n}\n\n// dup2",
            handler: Sysno::Dup,
        },
        Injection {
            commit: "2a675089",
            class: "bounds checking",
            file: "vm.hc",
            from: "    if (idx_valid(index) == 0) {\n        return -EINVAL;\n    }\n    if ((pages[parent][index] & PTE_P) != 0) {",
            to: "    if ((pages[parent][index] & PTE_P) != 0) {",
            handler: Sysno::AllocPdpt,
        },
        Injection {
            commit: "ffe44492",
            class: "memory leak",
            file: "fd.hc",
            from: "    procs[current].nr_fds = procs[current].nr_fds - 1;\n    file_unref(f);\n    return 0;",
            to: "    procs[current].nr_fds = procs[current].nr_fds - 1;\n    return 0;",
            handler: Sysno::Close,
        },
        Injection {
            commit: "aff0c8d5",
            class: "incorrect I/O privilege",
            file: "iommu.hc",
            from: "    if (io_ports[port].owner != PID_NONE) {\n        return -EBUSY;\n    }\n",
            to: "",
            handler: Sysno::AllocPort,
        },
        Injection {
            commit: "ae15515d",
            class: "buffer overflow",
            file: "fd.hc",
            from: "    if ((offset < 0) | (offset > PAGE_WORDS - len)) {\n        return -EINVAL;\n    }\n    p = files[f].value;\n    if (len > pipes[p].count) {",
            to: "    p = files[f].value;\n    if (len > pipes[p].count) {",
            handler: Sysno::PipeRead,
        },
    ]
}

fn main() {
    let params = KernelParams::verification();
    println!("Figure 7: xv6 bugs re-injected and hunted\n");
    println!(
        "{:<10} {:<26} {:<18} {:<12} {:>8}",
        "commit", "class", "handler", "verdict", "time"
    );
    for inj in injections() {
        let sources: Vec<(&'static str, String)> = SOURCES
            .iter()
            .map(|&(name, src)| {
                if name == inj.file {
                    (name, src.replacen(inj.from, inj.to, 1))
                } else {
                    (name, src.to_string())
                }
            })
            .collect();
        let image =
            KernelImage::build_with_sources(params, sources).expect("buggy kernel compiles");
        let config = VerifyConfig {
            params,
            threads: 1,
            only: vec![inj.handler],
            ..VerifyConfig::default()
        };
        let report = verify_image(&image, &config);
        let h = &report.handlers[0];
        let verdict = match &h.outcome {
            HandlerOutcome::UbBug { .. } => "caught: UB",
            HandlerOutcome::RefinementBug { .. } => "caught: ref",
            HandlerOutcome::Verified => "MISSED",
            _ => "inconclusive",
        };
        println!(
            "{:<10} {:<26} {:<18} {:<12} {:>7.1}s",
            inj.commit,
            inj.class,
            inj.handler.func_name(),
            verdict,
            h.time.as_secs_f64()
        );
    }
    for (commit, class) in [
        ("5625ae49", "integer overflow in exec"),
        ("e916d668", "signedness error in exec"),
        ("67a7f959", "alignedness error in exec"),
    ] {
        println!(
            "{:<10} {:<26} {:<18} {:<12}",
            commit, class, "(user loader)", "confined"
        );
    }
    println!(
        "\nthe three loader classes live in user space here as in the paper\n\
         (Figure 7's half-filled circles); tests/bug_injection.rs shows the\n\
         faulting process dies while the kernel invariant and neighbour\n\
         processes survive."
    );
}
