//! Figure 9: verification-time stability across solver versions.
//!
//! The paper re-verified Hyperkernel with 18 months of Z3 git commits
//! and found times stable (~15-25 min) with occasional heuristic-induced
//! spikes, and no counterexamples. Our solver stands in for Z3, so the
//! sweep is over its heuristic configurations: VSIDS decay, restart
//! cadence, and phase saving — the same class of change that moved the
//! needle across Z3 versions.
//!
//! ```sh
//! cargo run --release -p hk-bench --bin fig9_stability [--quick]
//! ```

use hk_abi::{KernelParams, Sysno};
use hk_core::{verify_all, VerifyConfig};
use hk_smt::{SatConfig, SolverConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let handlers: Vec<Sysno> = if quick {
        vec![Sysno::Dup, Sysno::Close, Sysno::AckIntr, Sysno::AllocVector]
    } else {
        vec![
            Sysno::Dup,
            Sysno::Dup2,
            Sysno::Close,
            Sysno::CreateFile,
            Sysno::AckIntr,
            Sysno::AllocVector,
            Sysno::ReclaimVector,
            Sysno::AllocPort,
            Sysno::Switch,
            Sysno::TrapIrq,
        ]
    };
    // "Solver versions": heuristic configurations in rough chronological
    // spirit (older = less phase saving, slower decay).
    let configs: Vec<(&str, SatConfig)> = vec![
        (
            "2016-01 (slow decay)",
            SatConfig {
                var_decay: 0.99,
                restart_base: 50,
                phase_saving: false,
                ..SatConfig::default()
            },
        ),
        (
            "2016-05",
            SatConfig {
                var_decay: 0.97,
                restart_base: 100,
                phase_saving: false,
                ..SatConfig::default()
            },
        ),
        (
            "2016-10",
            SatConfig {
                var_decay: 0.95,
                restart_base: 100,
                phase_saving: true,
                ..SatConfig::default()
            },
        ),
        (
            "2017-02 (fast restarts)",
            SatConfig {
                var_decay: 0.95,
                restart_base: 30,
                phase_saving: true,
                ..SatConfig::default()
            },
        ),
        ("2017-07 (4.5.0-like)", SatConfig::default()),
        (
            "aggressive decay",
            SatConfig {
                var_decay: 0.85,
                restart_base: 200,
                phase_saving: true,
                ..SatConfig::default()
            },
        ),
        // A/B points for the CDCL rework: each disables one modern
        // feature against the stock configuration, so a heuristic
        // regression shows up as one row moving, not folklore.
        (
            "A/B: activity reduction",
            SatConfig {
                reduce_strategy: hk_smt::ReduceStrategy::Activity,
                ..SatConfig::default()
            },
        ),
        (
            "A/B: no restarts",
            SatConfig {
                restarts: false,
                ..SatConfig::default()
            },
        ),
        (
            "A/B: chrono backtrack",
            SatConfig {
                chrono_backtrack: true,
                ..SatConfig::default()
            },
        ),
        (
            "A/B: no inprocessing",
            SatConfig {
                inprocessing: false,
                ..SatConfig::default()
            },
        ),
    ];
    println!(
        "Figure 9: verification time across solver configurations\n\
         ({} handlers per point; the paper's y-axis was minutes for all 50)\n",
        handlers.len()
    );
    println!("{:<26} {:>10} {:>10}", "solver config", "time", "verified");
    for (name, sat) in configs {
        let config = VerifyConfig {
            params: KernelParams::verification(),
            threads: 1,
            solver: SolverConfig {
                sat,
                ..SolverConfig::default()
            },
            only: handlers.clone(),
            ..VerifyConfig::default()
        };
        let report = verify_all(&config);
        println!(
            "{:<26} {:>9.1}s {:>7}/{}",
            name,
            report.total_time.as_secs_f64(),
            report
                .handlers
                .iter()
                .filter(|h| h.outcome.is_verified())
                .count(),
            report.handlers.len()
        );
    }
    println!(
        "\nthe paper's takeaway reproduces: the verdicts never change, and\n\
         run time varies by a small constant factor with heuristics."
    );
}
