//! Cold-cache comparison of incremental vs fresh-solver-per-query
//! verification over the Figure-7 representative handlers.
//!
//! Runs the verifier twice on the stock kernel — once with
//! `SolverConfig::incremental` off (a fresh Ackermann/bit-blast/CDCL
//! pipeline for every query) and once with it on (one persistent solver
//! per handler, scoped queries under activation literals) — and writes
//! the per-handler encode/solve times, clause counts, conflict counts,
//! and CDCL health counters (restarts, DB reductions, scope GC,
//! inprocessing, budget escalations) to `BENCH_PR6.json` at the
//! repository root (`BENCH_PR2.json` is the frozen pre-CDCL-rework
//! baseline). Both modes run under the same per-call conflict and
//! wall-clock budgets, with one 4x escalation retry on `UNKNOWN`.
//! The run exits nonzero if incremental loses to oneshot on aggregate
//! total wall-clock — the ROADMAP exit criterion, enforced forever.
//!
//! With `--certify` the comparison changes axis: instead of incremental
//! vs oneshot it measures the cost of the DRAT proof machinery, running
//! the incremental pipeline four times — twice with proofs disabled
//! (the second run is the measurement noise floor: the disabled path is
//! one `Option` check, so any delta is jitter, not feature cost), once
//! with proof logging only, and once fully certified (logging plus the
//! independent backward checker re-deriving every Unsat) — and writes
//! per-handler overhead columns to `BENCH_PR5.json`.
//!
//! With `--parallel` it measures intra-query parallel solving: the
//! fully certified incremental pipeline runs once per thread count
//! (default 1/4/8, override with `--threads 1,2`), and per-handler
//! verdicts, true wall-clock, and the portfolio counters (races,
//! workers, shared clauses, cubes) go to `BENCH_PR7.json`. The run
//! exits nonzero if any thread count changes a verdict, leaves an
//! `UNKNOWN`, or fails to certify an Unsat answer. Detected hardware
//! parallelism is recorded in the artifact — on a single-core host the
//! scaling column measures overhead honestly rather than advertising a
//! speedup the machine cannot produce.
//!
//! With `--simplify` it measures the word-level static-analysis pass
//! (known-bits/interval abstract interpretation, fact-directed
//! rewriting, cone-of-influence reduction): the pipeline runs four
//! certified columns — {oneshot, incremental} x {simplify off, on} —
//! and per-handler clause counts, rewrite/discharge counters, and
//! timings go to `BENCH_PR9.json`. Hard failures: a Sat<->Unsat flip
//! between columns, an uncertified Unsat, no aggregate oneshot clause
//! reduction, and (full runs) a reduction below 25% or zero statically
//! discharged queries.
//!
//! With `--bmc` it benchmarks the bounded-model-checking phase instead
//! of the handler proofs: the full `hk-bmc` harness registry (page
//! walker, TLB coherence, IOMMU/DMA confinement, fs-log crash safety)
//! runs certified once per thread count (default 1/2), and per-harness
//! solve times, clause counts, and proof counters go to
//! `BENCH_PR8.json`. Hard failures: any `UNKNOWN` or counterexample
//! verdict, an uncertified Unsat answer, or a verdict that changes with
//! the thread count. `--deep` selects the nightly bound tier
//! (verification-profile table sizes) instead of the CI fast tier.
//!
//! All modes report both the per-handler sum of `total_ms` (comparable
//! across modes, immune to scheduling) and the true whole-run wall
//! clock (`wall_ms`, what an operator actually waits).
//!
//! ```sh
//! cargo run --release -p hk-bench --bin bench_incremental
//! cargo run --release -p hk-bench --bin bench_incremental -- --certify
//! cargo run --release -p hk-bench --bin bench_incremental -- --parallel
//! cargo run --release -p hk-bench --bin bench_incremental -- --simplify
//! cargo run --release -p hk-bench --bin bench_incremental -- --bmc
//! cargo run --release -p hk-bench --bin bench_incremental -- --bmc --deep
//! # CI smoke: tiny handler set, report to target/, no repo-root write
//! cargo run --release -p hk-bench --bin bench_incremental -- --smoke
//! cargo run --release -p hk-bench --bin bench_incremental -- --smoke --certify
//! cargo run --release -p hk-bench --bin bench_incremental -- --smoke --parallel --threads 1,2
//! cargo run --release -p hk-bench --bin bench_incremental -- --smoke --simplify
//! cargo run --release -p hk-bench --bin bench_incremental -- --bmc --smoke --threads 1,2
//! ```

use std::time::{Duration, Instant};

use hk_abi::{KernelParams, Sysno};
use hk_core::{verify_image, HandlerReport, VerifyConfig};
use hk_kernel::KernelImage;

/// The handlers the Figure-7 bug classes land in: file descriptors,
/// page-table allocation, I/O privilege, and pipe transfer — the
/// invariant-heavy core of the syscall surface.
const FIG7_HANDLERS: [Sysno; 5] = [
    Sysno::Dup,
    Sysno::AllocPdpt,
    Sysno::Close,
    Sysno::AllocPort,
    Sysno::PipeRead,
];

/// The CI smoke subset: quick handlers that still issue real queries.
const SMOKE_HANDLERS: [Sysno; 2] = [Sysno::AckIntr, Sysno::Dup];

/// The certified-verification benchmark set: the Figure-7 handlers that
/// finish comfortably within budget, plus the interrupt path.
/// `alloc_pdpt` is excluded: it needs the escalated budget (it was
/// budget-bound `UNKNOWN` before the CDCL rework), so running it four
/// times over would dominate the proof-overhead measurement.
const CERTIFY_HANDLERS: [Sysno; 5] = [
    Sysno::AckIntr,
    Sysno::Dup,
    Sysno::Close,
    Sysno::AllocPort,
    Sysno::PipeRead,
];

/// Per-call solve budget, applied identically to both modes. The stock
/// `alloc_pdpt` refinement queries are pathologically hard for the CDCL
/// core regardless of incrementality (they were never exercised by the
/// seed's fast tier either): the hardest needs several million
/// conflicts and minutes of search, so the first-attempt budget is
/// sized for it, and the solver's escalation retry (4x conflicts on
/// `UNKNOWN`) gives it one fair second chance instead of an open-ended
/// run. A surviving `UNKNOWN` in the incremental (shipping) mode fails
/// the run; the oneshot baseline is allowed to stay budget-bound — see
/// the check at the bottom of `run_bench`.
const MAX_CONFLICTS: u64 = 10_000_000;
const MAX_SOLVE_MS: u64 = 600_000;

struct Measurement {
    name: &'static str,
    verdict: &'static str,
    encode: Duration,
    solve: Duration,
    total: Duration,
    queries: u64,
    cnf_clauses: usize,
    conflicts: u64,
    restarts: u64,
    db_reductions: u64,
    learnts_removed: u64,
    scope_gc_clauses: u64,
    probe_units: u64,
    subsumed: u64,
    strengthened: u64,
    escalations: u64,
    unsat_queries: u64,
    certified_unsat: u64,
    proofs_checked: u64,
    proof_steps: u64,
    proof_bytes: u64,
    check_time: Duration,
    races: u64,
    race_workers: u64,
    clauses_exported: u64,
    clauses_imported: u64,
    cubes_total: u64,
    cubes_solved: u64,
    simplify_time: Duration,
    simplify_rewrites: u64,
    simplify_bits_pinned: u64,
    simplify_conjuncts_before: u64,
    simplify_conjuncts_after: u64,
    simplify_coi_dropped: u64,
    statically_discharged: u64,
}

fn measure(report: &HandlerReport) -> Measurement {
    Measurement {
        name: report.sysno.func_name(),
        verdict: report.verdict(),
        encode: report.phases.encode_time,
        solve: report.phases.solve_time,
        total: report.time,
        queries: report.phases.queries,
        cnf_clauses: report.cnf_clauses,
        conflicts: report.conflicts,
        restarts: report.phases.restarts,
        db_reductions: report.phases.db_reductions,
        learnts_removed: report.phases.learnts_removed,
        scope_gc_clauses: report.phases.scope_gc_clauses,
        probe_units: report.phases.probe_units,
        subsumed: report.phases.subsumed,
        strengthened: report.phases.strengthened,
        escalations: report.phases.escalations,
        unsat_queries: report.phases.unsat_queries,
        certified_unsat: report.phases.certified_unsat,
        proofs_checked: report.phases.proofs_checked,
        proof_steps: report.phases.proof_steps,
        proof_bytes: report.phases.proof_bytes,
        check_time: report.phases.proof_check_time,
        races: report.phases.races,
        race_workers: report.phases.race_workers,
        clauses_exported: report.phases.clauses_exported,
        clauses_imported: report.phases.clauses_imported,
        cubes_total: report.phases.cubes_total,
        cubes_solved: report.phases.cubes_solved,
        simplify_time: report.phases.simplify_time,
        simplify_rewrites: report.phases.simplify_rewrites,
        simplify_bits_pinned: report.phases.simplify_bits_pinned,
        simplify_conjuncts_before: report.phases.simplify_conjuncts_before,
        simplify_conjuncts_after: report.phases.simplify_conjuncts_after,
        simplify_coi_dropped: report.phases.simplify_coi_dropped,
        statically_discharged: report.phases.statically_discharged,
    }
}

/// The feature-flag header every benchmark artifact carries, so a
/// reader never has to infer from the filename which subsystems were
/// active in the run that produced it.
fn features_json(
    incremental: bool,
    parallel: bool,
    certify: bool,
    bmc: bool,
    simplify: bool,
) -> String {
    format!(
        "\"features\": {{\"incremental\": {incremental}, \"parallel\": {parallel}, \
         \"certify\": {certify}, \"bmc\": {bmc}, \"simplify\": {simplify}}}"
    )
}

#[allow(clippy::too_many_arguments)] // flat knob list mirrors SolverConfig
fn run(
    image: &KernelImage,
    params: KernelParams,
    handlers: &[Sysno],
    incremental: bool,
    proof_log: bool,
    certify: bool,
    threads: usize,
    simplify: bool,
) -> (Vec<Measurement>, Duration) {
    let mut config = VerifyConfig {
        params,
        threads,
        only: handlers.to_vec(),
        ..VerifyConfig::default()
    };
    config.solver.incremental = incremental;
    config.solver.proof_log = proof_log;
    config.solver.certify = certify;
    config.solver.simplify = simplify;
    config.solver.sat.max_conflicts = Some(MAX_CONFLICTS);
    config.solver.sat.max_solve_ms = Some(MAX_SOLVE_MS);
    let wall = Instant::now();
    let report = verify_image(image, &config);
    let wall = wall.elapsed();
    (report.handlers.iter().map(measure).collect(), wall)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn json_entry(m: &Measurement, out: &mut String) {
    out.push_str(&format!(
        "{{\"encode_ms\": {:.3}, \"solve_ms\": {:.3}, \"total_ms\": {:.3}, \
         \"queries\": {}, \"cnf_clauses\": {}, \"conflicts\": {}, \"restarts\": {}, \
         \"db_reductions\": {}, \"learnts_removed\": {}, \"scope_gc_clauses\": {}, \
         \"probe_units\": {}, \"subsumed\": {}, \"strengthened\": {}, \
         \"escalations\": {}, \"verdict\": \"{}\"}}",
        ms(m.encode),
        ms(m.solve),
        ms(m.total),
        m.queries,
        m.cnf_clauses,
        m.conflicts,
        m.restarts,
        m.db_reductions,
        m.learnts_removed,
        m.scope_gc_clauses,
        m.probe_units,
        m.subsumed,
        m.strengthened,
        m.escalations,
        m.verdict,
    ));
}

/// Percentage overhead of `new` over `base` (positive = slower).
fn pct(new: f64, base: f64) -> f64 {
    (new - base) / base.max(1e-6) * 100.0
}

fn json_proof_entry(m: &Measurement, out: &mut String) {
    out.push_str(&format!(
        "{{\"solve_ms\": {:.3}, \"total_ms\": {:.3}, \"queries\": {}, \
         \"unsat_queries\": {}, \"certified_unsat\": {}, \"proofs_checked\": {}, \
         \"proof_steps\": {}, \"proof_bytes\": {}, \"check_ms\": {:.3}, \"verdict\": \"{}\"}}",
        ms(m.solve),
        ms(m.total),
        m.queries,
        m.unsat_queries,
        m.certified_unsat,
        m.proofs_checked,
        m.proof_steps,
        m.proof_bytes,
        ms(m.check_time),
        m.verdict,
    ));
}

/// Budget-artifact-tolerant verdict agreement (see the PR2 table loop).
fn check_verdicts(a: &Measurement, b: &Measurement, what: &str) {
    assert_eq!(a.name, b.name);
    if a.verdict != b.verdict {
        assert!(
            a.verdict == "UNKNOWN" || b.verdict == "UNKNOWN",
            "{what} changed the verdict for {}: {} vs {}",
            a.name,
            a.verdict,
            b.verdict
        );
        println!(
            "note: {} hit the conflict budget in one mode ({} vs {} {what})",
            a.name, a.verdict, b.verdict
        );
    }
}

/// The `--certify` axis: proof machinery disabled / logging / certified,
/// all on the incremental pipeline, cold cache (certified runs bypass
/// the query cache entirely, so a cold cache keeps the comparison fair).
fn run_certify_bench(
    image: &KernelImage,
    params: KernelParams,
    handlers: &[Sysno],
    out_path: &std::path::Path,
    smoke: bool,
) {
    println!(
        "proof-machinery benchmark over {} handler(s), cold cache\n",
        handlers.len()
    );
    let (baseline, b_wall) = run(image, params, handlers, true, false, false, 1, false);
    let (disabled, _) = run(image, params, handlers, true, false, false, 1, false);
    let (logged, _) = run(image, params, handlers, true, true, false, 1, false);
    let (certified, c_wall) = run(image, params, handlers, true, false, true, 1, false);
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "handler", "base", "disabled", "log", "certify", "log %", "cert %"
    );
    let mut json = String::from("{\n  \"handlers\": {\n");
    for (i, b) in baseline.iter().enumerate() {
        let (d, l, c) = (&disabled[i], &logged[i], &certified[i]);
        check_verdicts(b, l, "proof logging");
        check_verdicts(b, c, "certification");
        let log_pct = pct(ms(l.total), ms(b.total));
        let cert_pct = pct(ms(c.total), ms(b.total));
        println!(
            "{:<18} {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>7.1}% {:>7.1}%",
            b.name,
            ms(b.total),
            ms(d.total),
            ms(l.total),
            ms(c.total),
            log_pct,
            cert_pct
        );
        json.push_str(&format!("    \"{}\": {{\"baseline\": ", b.name));
        json_proof_entry(b, &mut json);
        json.push_str(", \"disabled_repeat\": ");
        json_proof_entry(d, &mut json);
        json.push_str(", \"proof_log\": ");
        json_proof_entry(l, &mut json);
        json.push_str(", \"certify\": ");
        json_proof_entry(c, &mut json);
        json.push_str(&format!(
            ", \"disabled_delta_pct\": {:.3}, \"proof_log_overhead_pct\": {log_pct:.3}, \
             \"certify_overhead_pct\": {cert_pct:.3}}}",
            pct(ms(d.total), ms(b.total))
        ));
        json.push_str(if i + 1 < baseline.len() { ",\n" } else { "\n" });
    }
    let tot = |v: &[Measurement]| -> f64 { v.iter().map(|m| ms(m.total)).sum() };
    let (b_tot, d_tot, l_tot, c_tot) = (
        tot(&baseline),
        tot(&disabled),
        tot(&logged),
        tot(&certified),
    );
    let disabled_pct = pct(d_tot, b_tot);
    let log_pct = pct(l_tot, b_tot);
    let cert_pct = pct(c_tot, b_tot);
    let sum = |f: &dyn Fn(&Measurement) -> u64| -> u64 { certified.iter().map(f).sum() };
    let check_ms: f64 = certified.iter().map(|m| ms(m.check_time)).sum();
    json.push_str(&format!(
        "  }},\n  \"aggregate\": {{\n    \"baseline_total_ms\": {b_tot:.3},\n    \
         \"disabled_total_ms\": {d_tot:.3},\n    \"proof_log_total_ms\": {l_tot:.3},\n    \
         \"certify_total_ms\": {c_tot:.3},\n    \"baseline_wall_ms\": {bw:.3},\n    \
         \"certify_wall_ms\": {cw:.3},\n    \"disabled_delta_pct\": {disabled_pct:.3},\n    \
         \"proof_log_overhead_pct\": {log_pct:.3},\n    \"certify_overhead_pct\": {cert_pct:.3},\n    \
         \"unsat_queries\": {},\n    \"certified_unsat\": {},\n    \"proofs_checked\": {},\n    \
         \"proof_steps\": {},\n    \"proof_bytes\": {},\n    \"check_time_ms\": {check_ms:.3}\n  }},\n  \
         \"config\": {{\"smoke\": {smoke}, \"handlers\": {}, \"threads\": 1, \"incremental\": true, \
         \"max_conflicts\": {MAX_CONFLICTS}, \"max_solve_ms\": {MAX_SOLVE_MS}, {features}}}\n}}\n",
        sum(&|m| m.unsat_queries),
        sum(&|m| m.certified_unsat),
        sum(&|m| m.proofs_checked),
        sum(&|m| m.proof_steps),
        sum(&|m| m.proof_bytes),
        handlers.len(),
        bw = ms(b_wall),
        cw = ms(c_wall),
        features = features_json(true, false, true, false, false)
    ));
    println!(
        "\naggregate total: {b_tot:.1}ms baseline, {d_tot:.1}ms disabled repeat \
         ({disabled_pct:+.1}% = noise floor)"
    );
    println!(
        "proof logging:   {l_tot:.1}ms ({log_pct:+.1}%), certified: {c_tot:.1}ms ({cert_pct:+.1}%)"
    );
    println!(
        "certified {}/{} unsat answers, {} proofs checked, {} DRAT steps, {} bytes, {check_ms:.1}ms checking",
        sum(&|m| m.certified_unsat),
        sum(&|m| m.unsat_queries),
        sum(&|m| m.proofs_checked),
        sum(&|m| m.proof_steps),
        sum(&|m| m.proof_bytes)
    );
    std::fs::write(out_path, &json).expect("write benchmark artifact");
    println!("\nwrote {}", out_path.display());
    if smoke && log_pct > 10.0 {
        eprintln!("warning: proof logging overhead above 10% ({log_pct:.1}%)");
    }
}

/// The `--parallel` axis: the fully certified incremental pipeline, run
/// once per thread count. Handler-level workers and query-level
/// portfolio racing share one `CoreBudget`, so `threads` is the only
/// knob. Hard failures: a verdict that changes with the thread count, a
/// surviving `UNKNOWN`, or an Unsat answer that did not certify.
fn run_parallel_bench(
    image: &KernelImage,
    params: KernelParams,
    handlers: &[Sysno],
    thread_counts: &[usize],
    out_path: &std::path::Path,
    smoke: bool,
) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "parallel-solving benchmark over {} handler(s), certified, cold cache, \
         {cores} hardware thread(s) detected\n",
        handlers.len()
    );
    if cores < thread_counts.iter().copied().max().unwrap_or(1) {
        println!(
            "note: thread counts above {cores} measure oversubscription overhead \
             on this host, not speedup\n"
        );
    }
    let mut rows: Vec<(usize, Vec<Measurement>, Duration)> = Vec::new();
    for &t in thread_counts {
        let (m, wall) = run(image, params, handlers, true, false, true, t, false);
        println!(
            "threads={t}: wall {:.1}ms, handler-sum {:.1}ms",
            ms(wall),
            m.iter().map(|x| ms(x.total)).sum::<f64>()
        );
        rows.push((t, m, wall));
    }
    println!(
        "\n{:<18} {}",
        "handler",
        thread_counts
            .iter()
            .map(|t| format!("{:>12}", format!("t={t}")))
            .collect::<String>()
    );
    let base = &rows[0];
    let mut failed = false;
    for (i, b) in base.1.iter().enumerate() {
        let cells: String = rows
            .iter()
            .map(|(_, m, _)| format!("{:>10.1}ms", ms(m[i].total)))
            .collect();
        println!("{:<18} {cells}", b.name);
        for (t, m, _) in &rows {
            let p = &m[i];
            assert_eq!(p.name, b.name);
            if p.verdict != b.verdict && p.verdict != "UNKNOWN" && b.verdict != "UNKNOWN" {
                // A Sat<->Unsat flip under racing is a soundness bug.
                eprintln!(
                    "FAIL: threads={t} changed the verdict for {}: {} vs {}",
                    b.name, b.verdict, p.verdict
                );
                failed = true;
            }
            if p.verdict == "UNKNOWN" || b.verdict == "UNKNOWN" {
                // The per-call wall budget is real time: a thread count
                // the hardware cannot actually run divides the core and
                // can time out a query that fits sequentially. That is
                // an oversubscription artifact, same as the budget
                // tolerance in the other modes — but within the
                // hardware's parallelism it is a real regression.
                if *t <= cores && p.verdict == "UNKNOWN" {
                    eprintln!("FAIL: {} UNKNOWN at threads={t} ({cores} cores)", b.name);
                    failed = true;
                } else {
                    println!(
                        "note: {} hit a budget in one run ({} at t={}, {} at t={t})",
                        b.name, b.verdict, base.0, p.verdict
                    );
                }
            }
            if p.certified_unsat != p.unsat_queries {
                eprintln!(
                    "FAIL: {} certified only {}/{} unsat answers at threads={t}",
                    b.name, p.certified_unsat, p.unsat_queries
                );
                failed = true;
            }
        }
    }
    let mut json = String::from("{\n  \"threads\": {\n");
    for (r, (t, m, wall)) in rows.iter().enumerate() {
        json.push_str(&format!("    \"{t}\": {{\n      \"handlers\": {{\n"));
        for (i, p) in m.iter().enumerate() {
            json.push_str(&format!(
                "        \"{}\": {{\"total_ms\": {:.3}, \"solve_ms\": {:.3}, \
                 \"verdict\": \"{}\", \"races\": {}, \"race_workers\": {}, \
                 \"clauses_exported\": {}, \"clauses_imported\": {}, \
                 \"cubes_total\": {}, \"cubes_solved\": {}, \
                 \"unsat_queries\": {}, \"certified_unsat\": {}}}{}\n",
                p.name,
                ms(p.total),
                ms(p.solve),
                p.verdict,
                p.races,
                p.race_workers,
                p.clauses_exported,
                p.clauses_imported,
                p.cubes_total,
                p.cubes_solved,
                p.unsat_queries,
                p.certified_unsat,
                if i + 1 < m.len() { "," } else { "" }
            ));
        }
        let sum_ms: f64 = m.iter().map(|x| ms(x.total)).sum();
        let races: u64 = m.iter().map(|x| x.races).sum();
        let cubes: u64 = m.iter().map(|x| x.cubes_solved).sum();
        let shared: u64 = m.iter().map(|x| x.clauses_imported).sum();
        json.push_str(&format!(
            "      }},\n      \"wall_ms\": {:.3},\n      \"handler_sum_ms\": {sum_ms:.3},\n      \
             \"speedup_vs_t1\": {:.3},\n      \"races\": {races},\n      \
             \"clauses_imported\": {shared},\n      \"cubes_solved\": {cubes}\n    }}{}\n",
            ms(*wall),
            ms(base.2) / ms(*wall).max(1e-6),
            if r + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  }},\n  \"config\": {{\"smoke\": {smoke}, \"handlers\": {}, \"certify\": true, \
         \"incremental\": true, \"cores_detected\": {cores}, \
         \"max_conflicts\": {MAX_CONFLICTS}, \"max_solve_ms\": {MAX_SOLVE_MS}, {}}}\n}}\n",
        handlers.len(),
        features_json(true, true, true, false, false)
    ));
    std::fs::write(out_path, &json).expect("write benchmark artifact");
    let best = rows
        .iter()
        .map(|(t, _, w)| (*t, ms(base.2) / ms(*w).max(1e-6)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    println!(
        "\nbest wall-clock scaling: {:.2}x at threads={} (vs threads={})",
        best.1, best.0, base.0
    );
    println!("wrote {}", out_path.display());
    if failed {
        std::process::exit(1);
    }
}

/// The `--simplify` axis: the word-level static-analysis pass on vs
/// off, across both pipeline shapes, everything certified (so every
/// Unsat — including statically discharged queries, which certification
/// re-proves through the SAT path — carries a checked DRAT proof).
/// Hard failures: any Sat<->Unsat flip between columns, an uncertified
/// Unsat, simplify-on not reducing aggregate oneshot clauses, and (full
/// runs) missing the >=25% oneshot clause-reduction floor or failing to
/// statically discharge a single query.
fn run_simplify_bench(
    image: &KernelImage,
    params: KernelParams,
    handlers: &[Sysno],
    out_path: &std::path::Path,
    smoke: bool,
) {
    println!(
        "word-level simplification benchmark over {} handler(s), certified, cold cache\n",
        handlers.len()
    );
    let (os_off, osf_wall) = run(image, params, handlers, false, false, true, 1, false);
    let (os_on, osn_wall) = run(image, params, handlers, false, false, true, 1, true);
    let (inc_off, inf_wall) = run(image, params, handlers, true, false, true, 1, false);
    let (inc_on, inn_wall) = run(image, params, handlers, true, false, true, 1, true);
    let mut failed = false;
    println!(
        "{:<18} {:>12} {:>12} {:>8} {:>12} {:>12} {:>9} {:>6}",
        "handler", "1shot off", "1shot on", "clause%", "incr off", "incr on", "rewrites", "disch"
    );
    let mut json = String::from("{\n  \"handlers\": {\n");
    for i in 0..os_off.len() {
        let (oo, on, io, inn) = (&os_off[i], &os_on[i], &inc_off[i], &inc_on[i]);
        check_verdicts(oo, on, "simplify (oneshot)");
        check_verdicts(io, inn, "simplify (incremental)");
        for m in [oo, on, io, inn] {
            if m.certified_unsat != m.unsat_queries {
                eprintln!(
                    "FAIL: {} certified only {}/{} unsat answers",
                    m.name, m.certified_unsat, m.unsat_queries
                );
                failed = true;
            }
        }
        let clause_pct = pct(on.cnf_clauses as f64, oo.cnf_clauses.max(1) as f64);
        println!(
            "{:<18} {:>10.1}ms {:>10.1}ms {:>7.1}% {:>10.1}ms {:>10.1}ms {:>9} {:>6}",
            oo.name,
            ms(oo.total),
            ms(on.total),
            clause_pct,
            ms(io.total),
            ms(inn.total),
            on.simplify_rewrites + inn.simplify_rewrites,
            on.statically_discharged + inn.statically_discharged
        );
        let col = |m: &Measurement, out: &mut String| {
            out.push_str(&format!(
                "{{\"total_ms\": {:.3}, \"encode_ms\": {:.3}, \"solve_ms\": {:.3}, \
                 \"simplify_ms\": {:.3}, \"cnf_clauses\": {}, \"conflicts\": {}, \
                 \"rewrites\": {}, \"bits_pinned\": {}, \"conjuncts_before\": {}, \
                 \"conjuncts_after\": {}, \"coi_dropped\": {}, \"statically_discharged\": {}, \
                 \"unsat_queries\": {}, \"certified_unsat\": {}, \"verdict\": \"{}\"}}",
                ms(m.total),
                ms(m.encode),
                ms(m.solve),
                ms(m.simplify_time),
                m.cnf_clauses,
                m.conflicts,
                m.simplify_rewrites,
                m.simplify_bits_pinned,
                m.simplify_conjuncts_before,
                m.simplify_conjuncts_after,
                m.simplify_coi_dropped,
                m.statically_discharged,
                m.unsat_queries,
                m.certified_unsat,
                m.verdict,
            ));
        };
        json.push_str(&format!("    \"{}\": {{\"oneshot_off\": ", oo.name));
        col(oo, &mut json);
        json.push_str(", \"oneshot_on\": ");
        col(on, &mut json);
        json.push_str(", \"incremental_off\": ");
        col(io, &mut json);
        json.push_str(", \"incremental_on\": ");
        col(inn, &mut json);
        json.push_str(&format!(
            ", \"oneshot_clause_delta_pct\": {clause_pct:.3}}}{}\n",
            if i + 1 < os_off.len() { "," } else { "" }
        ));
    }
    let csum = |v: &[Measurement]| -> u64 { v.iter().map(|m| m.cnf_clauses as u64).sum() };
    let tsum = |v: &[Measurement]| -> f64 { v.iter().map(|m| ms(m.total)).sum() };
    let (oo_cl, on_cl) = (csum(&os_off), csum(&os_on));
    let (io_cl, in_cl) = (csum(&inc_off), csum(&inc_on));
    let clause_reduction_pct = (1.0 - on_cl as f64 / oo_cl.max(1) as f64) * 100.0;
    let discharged: u64 = os_on
        .iter()
        .chain(inc_on.iter())
        .map(|m| m.statically_discharged)
        .sum();
    let rewrites: u64 = os_on
        .iter()
        .chain(inc_on.iter())
        .map(|m| m.simplify_rewrites)
        .sum();
    let coi: u64 = os_on.iter().map(|m| m.simplify_coi_dropped).sum();
    json.push_str(&format!(
        "  }},\n  \"aggregate\": {{\n    \"oneshot_off_clauses\": {oo_cl},\n    \
         \"oneshot_on_clauses\": {on_cl},\n    \"oneshot_clause_reduction_pct\": \
         {clause_reduction_pct:.3},\n    \"incremental_off_clauses\": {io_cl},\n    \
         \"incremental_on_clauses\": {in_cl},\n    \"oneshot_off_total_ms\": {:.3},\n    \
         \"oneshot_on_total_ms\": {:.3},\n    \"incremental_off_total_ms\": {:.3},\n    \
         \"incremental_on_total_ms\": {:.3},\n    \"oneshot_off_wall_ms\": {:.3},\n    \
         \"oneshot_on_wall_ms\": {:.3},\n    \"incremental_off_wall_ms\": {:.3},\n    \
         \"incremental_on_wall_ms\": {:.3},\n    \"rewrites\": {rewrites},\n    \
         \"coi_dropped\": {coi},\n    \"statically_discharged\": {discharged}\n  }},\n  \
         \"config\": {{\"smoke\": {smoke}, \"handlers\": {}, \"threads\": 1, \"certify\": true, \
         \"max_conflicts\": {MAX_CONFLICTS}, \"max_solve_ms\": {MAX_SOLVE_MS}, {}}}\n}}\n",
        tsum(&os_off),
        tsum(&os_on),
        tsum(&inc_off),
        tsum(&inc_on),
        ms(osf_wall),
        ms(osn_wall),
        ms(inf_wall),
        ms(inn_wall),
        handlers.len(),
        features_json(true, false, true, false, true)
    ));
    println!(
        "\naggregate oneshot clauses: {oo_cl} off vs {on_cl} on \
         ({clause_reduction_pct:.1}% reduction)"
    );
    println!("aggregate incremental clauses: {io_cl} off vs {in_cl} on");
    println!(
        "{rewrites} rewrites, {coi} conjuncts COI-dropped, {discharged} queries statically discharged"
    );
    std::fs::write(out_path, &json).expect("write benchmark artifact");
    println!("\nwrote {}", out_path.display());
    if on_cl >= oo_cl {
        eprintln!(
            "FAIL: simplify-on did not reduce aggregate oneshot clauses ({on_cl} vs {oo_cl})"
        );
        failed = true;
    }
    if !smoke {
        if clause_reduction_pct < 25.0 {
            eprintln!(
                "FAIL: oneshot clause reduction {clause_reduction_pct:.1}% below the 25% floor"
            );
            failed = true;
        }
        if discharged == 0 {
            eprintln!("FAIL: no query was statically discharged");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// The `--bmc` axis: the bounded-model-checking harness registry, run
/// certified once per thread count. The substrate analogue of
/// `--parallel`: the same hard failures (verdict drift across thread
/// counts, surviving `UNKNOWN`, uncertified Unsat), plus any
/// counterexample — the stock models must prove at every tier.
fn run_bmc_bench(
    tier: hk_bmc::Tier,
    thread_counts: &[usize],
    out_path: &std::path::Path,
    smoke: bool,
) {
    use hk_bmc::BmcOutcome;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "bmc benchmark at the {} tier, certified, {cores} hardware thread(s) detected\n",
        tier.name()
    );
    let mut rows: Vec<(usize, hk_core::BmcReport)> = Vec::new();
    for &t in thread_counts {
        let cfg = hk_bmc::BmcConfig {
            tier,
            certify: true,
            threads: t,
            max_conflicts: Some(MAX_CONFLICTS),
            max_solve_ms: Some(MAX_SOLVE_MS),
            ..hk_bmc::BmcConfig::default()
        };
        let report = hk_core::run_bmc(&cfg, &hk_core::EventSink::null());
        println!(
            "threads={t}: wall {:.1}ms, {}/{} proved, {}/{} unsat certified",
            ms(report.total_time),
            report.proved(),
            report.harnesses.len(),
            report.certified_unsat(),
            report.unsat_queries()
        );
        rows.push((t, report));
    }
    let base = &rows[0];
    let mut failed = false;
    println!(
        "\n{:<28} {:>10} {:>9} {:>10} {}",
        "harness",
        "clauses",
        "queries",
        "verdict",
        thread_counts
            .iter()
            .map(|t| format!("{:>12}", format!("t={t}")))
            .collect::<String>()
    );
    for (i, b) in base.1.harnesses.iter().enumerate() {
        let cells: String = rows
            .iter()
            .map(|(_, r)| format!("{:>10.1}ms", ms(r.harnesses[i].time)))
            .collect();
        println!(
            "{:<28} {:>10} {:>9} {:>10} {cells}",
            b.name,
            b.cnf_clauses,
            b.queries,
            b.outcome.verdict()
        );
        for (t, r) in &rows {
            let h = &r.harnesses[i];
            assert_eq!(h.name, b.name);
            match &h.outcome {
                BmcOutcome::Proved => {}
                BmcOutcome::Counterexample(text) => {
                    eprintln!(
                        "FAIL: {} found a counterexample at threads={t}:\n{text}",
                        h.name
                    );
                    failed = true;
                }
                BmcOutcome::Unknown => {
                    eprintln!(
                        "FAIL: {} UNKNOWN at threads={t} (bounds {})",
                        h.name, h.bounds
                    );
                    failed = true;
                }
            }
            if h.outcome.verdict() != b.outcome.verdict() {
                eprintln!(
                    "FAIL: threads={t} changed the verdict for {}: {} vs {}",
                    h.name,
                    b.outcome.verdict(),
                    h.outcome.verdict()
                );
                failed = true;
            }
            if h.certified_unsat != h.unsat_queries {
                eprintln!(
                    "FAIL: {} certified only {}/{} unsat answers at threads={t}",
                    h.name, h.certified_unsat, h.unsat_queries
                );
                failed = true;
            }
        }
    }
    let mut json = String::from("{\n  \"threads\": {\n");
    for (r, (t, report)) in rows.iter().enumerate() {
        json.push_str(&format!("    \"{t}\": "));
        // Reuse the driver's "bmc" report section verbatim: per-harness
        // solve/encode times, clause counts, and proof counters.
        let section = report.to_json();
        json.push_str(&section.replace('\n', "\n    "));
        json.push_str(if r + 1 < rows.len() { ",\n" } else { "\n" });
    }
    let b_wall = ms(base.1.total_time);
    json.push_str(&format!(
        "  }},\n  \"aggregate\": {{\n    \"harnesses\": {},\n    \"proved\": {},\n    \
         \"unsat_queries\": {},\n    \"certified_unsat\": {},\n    \
         \"wall_ms_t{}\": {b_wall:.3},\n    \"best_speedup_vs_t{}\": {:.3}\n  }},\n  \
         \"config\": {{\"smoke\": {smoke}, \"tier\": \"{}\", \"certify\": true, \
         \"cores_detected\": {cores}, \"max_conflicts\": {MAX_CONFLICTS}, \
         \"max_solve_ms\": {MAX_SOLVE_MS}, {}}}\n}}\n",
        base.1.harnesses.len(),
        base.1.proved(),
        base.1.unsat_queries(),
        base.1.certified_unsat(),
        base.0,
        base.0,
        rows.iter()
            .map(|(_, r)| b_wall / ms(r.total_time).max(1e-6))
            .fold(0.0f64, f64::max),
        tier.name(),
        features_json(true, true, true, true, false)
    ));
    std::fs::write(out_path, &json).expect("write benchmark artifact");
    println!("\nwrote {}", out_path.display());
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let certify_mode = args.iter().any(|a| a == "--certify");
    let parallel_mode = args.iter().any(|a| a == "--parallel");
    let bmc_mode = args.iter().any(|a| a == "--bmc");
    let simplify_mode = args.iter().any(|a| a == "--simplify");
    let deep = args.iter().any(|a| a == "--deep");
    // --threads 1,2,4 overrides the parallel/bmc-mode scaling ladder.
    let thread_counts: Vec<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|list| {
            list.split(',')
                .map(|n| n.parse().expect("bad --threads value"))
                .collect()
        })
        .unwrap_or_else(|| {
            if smoke || bmc_mode {
                vec![1, 2]
            } else {
                vec![1, 4, 8]
            }
        });
    if bmc_mode {
        let tier = if deep {
            hk_bmc::Tier::Deep
        } else {
            hk_bmc::Tier::Fast
        };
        let out = if smoke {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../../target/BENCH_PR8_smoke.json")
        } else {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR8.json")
        };
        run_bmc_bench(tier, &thread_counts, &out, smoke);
        return;
    }
    // --only sys_a,sys_b restricts the handler set (for probing one
    // handler's cost without running the whole table).
    let only: Option<Vec<Sysno>> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .map(|list| {
            list.split(',')
                .map(|name| {
                    *Sysno::ALL
                        .iter()
                        .find(|s| s.func_name() == name)
                        .unwrap_or_else(|| panic!("unknown handler {name}"))
                })
                .collect()
        });
    let params = KernelParams::verification();
    let handlers: &[Sysno] = match &only {
        Some(v) => v,
        None if smoke => &SMOKE_HANDLERS,
        // The simplify comparison runs four certified columns, so it
        // uses the same budget-friendly subset as the certify axis.
        None if certify_mode || simplify_mode => &CERTIFY_HANDLERS,
        None => &FIG7_HANDLERS,
    };
    let image = KernelImage::build(params).expect("kernel build");
    if simplify_mode {
        let out = if smoke || only.is_some() {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../../target/BENCH_PR9_smoke.json")
        } else {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR9.json")
        };
        run_simplify_bench(&image, params, handlers, &out, smoke);
        return;
    }
    if parallel_mode {
        let out = if smoke || only.is_some() {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../../target/BENCH_PR7_smoke.json")
        } else {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR7.json")
        };
        run_parallel_bench(&image, params, handlers, &thread_counts, &out, smoke);
        return;
    }
    if certify_mode {
        let out = if smoke || only.is_some() {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../../target/BENCH_PR5_smoke.json")
        } else {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR5.json")
        };
        run_certify_bench(&image, params, handlers, &out, smoke);
        return;
    }
    println!(
        "incremental-solving benchmark over {} handler(s), cold cache\n",
        handlers.len()
    );
    // Incremental first: it is the fast side, so progress shows early
    // and a hung baseline handler is obvious from the trace.
    let (incremental, n_wall) = run(&image, params, handlers, true, false, false, 1, false);
    let (oneshot, o_wall) = run(&image, params, handlers, false, false, false, 1, false);
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "handler", "1shot enc", "incr enc", "1shot slv", "incr slv", "enc x"
    );
    let mut json = String::from("{\n  \"handlers\": {\n");
    for (i, (o, n)) in oneshot.iter().zip(incremental.iter()).enumerate() {
        assert_eq!(o.name, n.name);
        if o.verdict != n.verdict {
            // The per-call solve budget may run out in one mode but
            // not the other (learnt-clause reuse changes search depth);
            // that is a budget artifact, not a soundness divergence.
            // Any other disagreement is a bug.
            assert!(
                o.verdict == "UNKNOWN" || n.verdict == "UNKNOWN",
                "incremental changed the verdict for {}: {} vs {}",
                o.name,
                o.verdict,
                n.verdict
            );
            println!(
                "note: {} exhausted its solve budget in one mode ({} oneshot, {} incremental)",
                o.name, o.verdict, n.verdict
            );
        }
        let ratio = ms(o.encode) / ms(n.encode).max(1e-6);
        println!(
            "{:<18} {:>10.1}ms {:>10.1}ms {:>10.1}ms {:>10.1}ms {:>8.2}x",
            o.name,
            ms(o.encode),
            ms(n.encode),
            ms(o.solve),
            ms(n.solve),
            ratio
        );
        json.push_str(&format!("    \"{}\": {{\"oneshot\": ", o.name));
        json_entry(o, &mut json);
        json.push_str(", \"incremental\": ");
        json_entry(n, &mut json);
        json.push_str(&format!(", \"encode_speedup\": {ratio:.3}}}"));
        json.push_str(if i + 1 < oneshot.len() { ",\n" } else { "\n" });
    }
    let agg = |v: &[Measurement], f: &dyn Fn(&Measurement) -> f64| -> f64 { v.iter().map(f).sum() };
    let o_enc = agg(&oneshot, &|m| ms(m.encode));
    let n_enc = agg(&incremental, &|m| ms(m.encode));
    let o_slv = agg(&oneshot, &|m| ms(m.solve));
    let n_slv = agg(&incremental, &|m| ms(m.solve));
    let o_tot = agg(&oneshot, &|m| ms(m.total));
    let n_tot = agg(&incremental, &|m| ms(m.total));
    let speedup = o_enc / n_enc.max(1e-6);
    json.push_str(&format!(
        "  }},\n  \"aggregate\": {{\n    \"oneshot_encode_ms\": {o_enc:.3},\n    \
         \"incremental_encode_ms\": {n_enc:.3},\n    \"encode_speedup\": {speedup:.3},\n    \
         \"oneshot_solve_ms\": {o_slv:.3},\n    \"incremental_solve_ms\": {n_slv:.3},\n    \
         \"oneshot_total_ms\": {o_tot:.3},\n    \"incremental_total_ms\": {n_tot:.3},\n    \
         \"oneshot_wall_ms\": {ow:.3},\n    \"incremental_wall_ms\": {nw:.3}\n  }},\n  \
         \"config\": {{\"smoke\": {smoke}, \"handlers\": {}, \"threads\": 1, \
         \"max_conflicts\": {MAX_CONFLICTS}, \"max_solve_ms\": {MAX_SOLVE_MS}, {features}}}\n}}\n",
        handlers.len(),
        ow = ms(o_wall),
        nw = ms(n_wall),
        features = features_json(true, false, false, false, false)
    ));
    println!(
        "\naggregate encode: {o_enc:.1}ms oneshot vs {n_enc:.1}ms incremental ({speedup:.2}x)"
    );
    println!("aggregate solve:  {o_slv:.1}ms oneshot vs {n_slv:.1}ms incremental");
    println!("aggregate total:  {o_tot:.1}ms oneshot vs {n_tot:.1}ms incremental");
    let out = if smoke || only.is_some() {
        // The smoke run is a CI health check; keep the repo-root
        // artifact reserved for the full handler set.
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/BENCH_PR6_smoke.json")
    } else {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR6.json")
    };
    std::fs::write(&out, &json).expect("write benchmark artifact");
    println!("\nwrote {}", out.display());
    if smoke && speedup < 1.0 {
        // Smoke-level sanity: incrementality must never cost encode time.
        eprintln!("warning: incremental encoding slower than oneshot ({speedup:.2}x)");
    }
    // The ROADMAP exit criterion, enforced on every run (CI runs the
    // smoke subset on every push): incremental must not lose to the
    // fresh-pipeline baseline on total wall-clock.
    if n_tot > o_tot {
        eprintln!("FAIL: incremental aggregate total {n_tot:.1}ms exceeds oneshot {o_tot:.1}ms");
        std::process::exit(1);
    }
    // The shipping configuration is incremental; every handler must
    // reach a real verdict there (the BENCH_PR2 `alloc_pdpt` UNKNOWN is
    // the bug this enforces against). The oneshot baseline gets no such
    // guarantee: without learnt-clause reuse across a handler's queries
    // its hardest `alloc_pdpt` query is time-bound at any practical
    // budget — which is the regression story in reverse, and exactly
    // why the incremental pipeline is the default.
    let unknowns: Vec<&str> = incremental
        .iter()
        .filter(|m| m.verdict == "UNKNOWN")
        .map(|m| m.name)
        .collect();
    if !unknowns.is_empty() {
        eprintln!("FAIL: UNKNOWN verdicts survived budget escalation: {unknowns:?}");
        std::process::exit(1);
    }
}
