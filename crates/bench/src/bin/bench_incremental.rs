//! Cold-cache comparison of incremental vs fresh-solver-per-query
//! verification over the Figure-7 representative handlers.
//!
//! Runs the verifier twice on the stock kernel — once with
//! `SolverConfig::incremental` off (a fresh Ackermann/bit-blast/CDCL
//! pipeline for every query) and once with it on (one persistent solver
//! per handler, scoped queries under activation literals) — and writes
//! the per-handler encode/solve times, clause counts, and conflict
//! counts to `BENCH_PR2.json` at the repository root. Both modes run
//! under the same per-call conflict and wall-clock budgets so a
//! pathologically hard query becomes a bounded `UNKNOWN` data point
//! rather than an open-ended run.
//!
//! ```sh
//! cargo run --release -p hk-bench --bin bench_incremental
//! # CI smoke: tiny handler set, report to target/, no repo-root write
//! cargo run --release -p hk-bench --bin bench_incremental -- --smoke
//! ```

use std::time::Duration;

use hk_abi::{KernelParams, Sysno};
use hk_core::{verify_image, HandlerReport, VerifyConfig};
use hk_kernel::KernelImage;

/// The handlers the Figure-7 bug classes land in: file descriptors,
/// page-table allocation, I/O privilege, and pipe transfer — the
/// invariant-heavy core of the syscall surface.
const FIG7_HANDLERS: [Sysno; 5] = [
    Sysno::Dup,
    Sysno::AllocPdpt,
    Sysno::Close,
    Sysno::AllocPort,
    Sysno::PipeRead,
];

/// The CI smoke subset: quick handlers that still issue real queries.
const SMOKE_HANDLERS: [Sysno; 2] = [Sysno::AckIntr, Sysno::Dup];

/// Per-call solve budget, applied identically to both modes. The stock
/// `alloc_pdpt` refinement query is pathologically hard for the CDCL
/// core regardless of incrementality (it was never exercised by the
/// seed's fast tier either); the budget turns it into a bounded
/// `UNKNOWN` data point instead of an open-ended run. The hardest query
/// any other Figure-7 handler issues takes ~26k conflicts / ~52s, so
/// both limits leave better than 2x headroom.
const MAX_CONFLICTS: u64 = 100_000;
const MAX_SOLVE_MS: u64 = 120_000;

struct Measurement {
    name: &'static str,
    verdict: &'static str,
    encode: Duration,
    solve: Duration,
    total: Duration,
    queries: u64,
    cnf_clauses: usize,
    conflicts: u64,
}

fn measure(report: &HandlerReport) -> Measurement {
    Measurement {
        name: report.sysno.func_name(),
        verdict: report.verdict(),
        encode: report.phases.encode_time,
        solve: report.phases.solve_time,
        total: report.time,
        queries: report.phases.queries,
        cnf_clauses: report.cnf_clauses,
        conflicts: report.conflicts,
    }
}

fn run(
    image: &KernelImage,
    params: KernelParams,
    handlers: &[Sysno],
    incremental: bool,
) -> Vec<Measurement> {
    let mut config = VerifyConfig {
        params,
        threads: 1,
        only: handlers.to_vec(),
        ..VerifyConfig::default()
    };
    config.solver.incremental = incremental;
    config.solver.sat.max_conflicts = Some(MAX_CONFLICTS);
    config.solver.sat.max_solve_ms = Some(MAX_SOLVE_MS);
    let report = verify_image(image, &config);
    report.handlers.iter().map(measure).collect()
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn json_entry(m: &Measurement, out: &mut String) {
    out.push_str(&format!(
        "{{\"encode_ms\": {:.3}, \"solve_ms\": {:.3}, \"total_ms\": {:.3}, \
         \"queries\": {}, \"cnf_clauses\": {}, \"conflicts\": {}, \"verdict\": \"{}\"}}",
        ms(m.encode),
        ms(m.solve),
        ms(m.total),
        m.queries,
        m.cnf_clauses,
        m.conflicts,
        m.verdict,
    ));
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // --only sys_a,sys_b restricts the handler set (for probing one
    // handler's cost without running the whole table).
    let only: Option<Vec<Sysno>> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .map(|list| {
            list.split(',')
                .map(|name| {
                    *Sysno::ALL
                        .iter()
                        .find(|s| s.func_name() == name)
                        .unwrap_or_else(|| panic!("unknown handler {name}"))
                })
                .collect()
        });
    let params = KernelParams::verification();
    let handlers: &[Sysno] = match &only {
        Some(v) => v,
        None if smoke => &SMOKE_HANDLERS,
        None => &FIG7_HANDLERS,
    };
    let image = KernelImage::build(params).expect("kernel build");
    println!(
        "incremental-solving benchmark over {} handler(s), cold cache\n",
        handlers.len()
    );
    // Incremental first: it is the fast side, so progress shows early
    // and a hung baseline handler is obvious from the trace.
    let incremental = run(&image, params, handlers, true);
    let oneshot = run(&image, params, handlers, false);
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "handler", "1shot enc", "incr enc", "1shot slv", "incr slv", "enc x"
    );
    let mut json = String::from("{\n  \"handlers\": {\n");
    for (i, (o, n)) in oneshot.iter().zip(incremental.iter()).enumerate() {
        assert_eq!(o.name, n.name);
        if o.verdict != n.verdict {
            // The per-call solve budget may run out in one mode but
            // not the other (learnt-clause reuse changes search depth);
            // that is a budget artifact, not a soundness divergence.
            // Any other disagreement is a bug.
            assert!(
                o.verdict == "UNKNOWN" || n.verdict == "UNKNOWN",
                "incremental changed the verdict for {}: {} vs {}",
                o.name,
                o.verdict,
                n.verdict
            );
            println!(
                "note: {} hit the conflict budget in one mode ({} oneshot, {} incremental)",
                o.name, o.verdict, n.verdict
            );
        }
        let ratio = ms(o.encode) / ms(n.encode).max(1e-6);
        println!(
            "{:<18} {:>10.1}ms {:>10.1}ms {:>10.1}ms {:>10.1}ms {:>8.2}x",
            o.name,
            ms(o.encode),
            ms(n.encode),
            ms(o.solve),
            ms(n.solve),
            ratio
        );
        json.push_str(&format!("    \"{}\": {{\"oneshot\": ", o.name));
        json_entry(o, &mut json);
        json.push_str(", \"incremental\": ");
        json_entry(n, &mut json);
        json.push_str(&format!(", \"encode_speedup\": {ratio:.3}}}"));
        json.push_str(if i + 1 < oneshot.len() { ",\n" } else { "\n" });
    }
    let agg = |v: &[Measurement], f: &dyn Fn(&Measurement) -> f64| -> f64 { v.iter().map(f).sum() };
    let o_enc = agg(&oneshot, &|m| ms(m.encode));
    let n_enc = agg(&incremental, &|m| ms(m.encode));
    let o_slv = agg(&oneshot, &|m| ms(m.solve));
    let n_slv = agg(&incremental, &|m| ms(m.solve));
    let o_tot = agg(&oneshot, &|m| ms(m.total));
    let n_tot = agg(&incremental, &|m| ms(m.total));
    let speedup = o_enc / n_enc.max(1e-6);
    json.push_str(&format!(
        "  }},\n  \"aggregate\": {{\n    \"oneshot_encode_ms\": {o_enc:.3},\n    \
         \"incremental_encode_ms\": {n_enc:.3},\n    \"encode_speedup\": {speedup:.3},\n    \
         \"oneshot_solve_ms\": {o_slv:.3},\n    \"incremental_solve_ms\": {n_slv:.3},\n    \
         \"oneshot_total_ms\": {o_tot:.3},\n    \"incremental_total_ms\": {n_tot:.3}\n  }},\n  \
         \"config\": {{\"smoke\": {smoke}, \"handlers\": {}, \"threads\": 1, \
         \"max_conflicts\": {MAX_CONFLICTS}, \"max_solve_ms\": {MAX_SOLVE_MS}}}\n}}\n",
        handlers.len()
    ));
    println!(
        "\naggregate encode: {o_enc:.1}ms oneshot vs {n_enc:.1}ms incremental ({speedup:.2}x)"
    );
    println!("aggregate solve:  {o_slv:.1}ms oneshot vs {n_slv:.1}ms incremental");
    println!("aggregate total:  {o_tot:.1}ms oneshot vs {n_tot:.1}ms incremental");
    let out = if smoke || only.is_some() {
        // The smoke run is a CI health check; keep the repo-root
        // artifact reserved for the full handler set.
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/BENCH_PR2_smoke.json")
    } else {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR2.json")
    };
    std::fs::write(&out, &json).expect("write benchmark artifact");
    println!("\nwrote {}", out.display());
    if smoke && speedup < 1.0 {
        // Smoke-level sanity: incrementality must never cost encode time.
        eprintln!("warning: incremental encoding slower than oneshot ({speedup:.2}x)");
    }
}
