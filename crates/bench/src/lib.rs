//! Shared plumbing for the evaluation harness: the runtime benchmark
//! bodies (used by both the printable-table binaries and the plain
//! timing benches), a vendored PRNG, and table-formatting helpers.
//!
//! Every table and figure of the paper's §6 has a regenerator here:
//!
//! | artifact | binary |
//! |----------|--------|
//! | Figure 7 (xv6 bugs)              | `fig7_bugs` |
//! | Figure 8 (lines of code)         | `fig8_loc` |
//! | Figure 9 (verifier stability)    | `fig9_stability` |
//! | Figure 10 (runtime benchmarks)   | `fig10_runtime` |
//! | Figure 11 (syscall vs hypercall) | `fig11_hypercall` |
//! | §6.3 scaling (pages x2/x4/x100)  | `tab_scaling` |
//! | §3.3 encodings ablation          | `tab_encodings` |

use hk_abi::{KernelParams, Sysno, PTE_P, PTE_U, PTE_W};
use hk_kernel::{boot::boot, Kernel};
use hk_mono::MonoSys;
use hk_vm::{CostModel, Machine};

/// A tiny vendored xorshift64* PRNG, so the harness (and the randomized
/// tests elsewhere in the workspace) need no external crates and run
/// fully offline. Deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a PRNG from a nonzero seed (zero is mapped away).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi)` as i64; `lo < hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }

    /// A coin flip with probability `num/den` of true.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Times `iters` runs of `f` and prints min/mean per-iteration wall
/// clock — the offline stand-in for the Criterion harness.
pub fn bench_loop<F: FnMut()>(label: &str, iters: u32, mut f: F) {
    let mut best = std::time::Duration::MAX;
    let total_start = std::time::Instant::now();
    for _ in 0..iters {
        let start = std::time::Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    let mean = total_start.elapsed() / iters.max(1);
    println!(
        "{label:<28} {:>12} {:>12}   ({iters} iters)",
        format!("min {:.3?}", best),
        format!("mean {:.3?}", mean),
    );
}

/// Prints a row of a paper-vs-measured table.
pub fn row(label: &str, cols: &[String]) {
    print!("{label:<28}");
    for c in cols {
        print!(" {c:>14}");
    }
    println!();
}

/// A booted Hyperkernel machine for runtime measurements.
pub struct HkBench {
    /// The kernel.
    pub kernel: Kernel,
    /// The machine.
    pub machine: Machine,
    /// PT page holding the benchmark mappings.
    pub pt: i64,
    /// First mapped frame page number.
    pub first_frame: i64,
    /// Number of mapped pages.
    pub mapped: i64,
}

impl HkBench {
    /// Boots and maps `n` writable pages at PT slots `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if setup syscalls fail (kernel bug).
    pub fn new(params: KernelParams, cost: CostModel, n: i64) -> HkBench {
        assert!(n <= params.page_words as i64, "one PT only");
        let kernel = Kernel::new(params).expect("kernel");
        let mut machine = kernel.new_machine(cost);
        boot(&kernel, &mut machine);
        let all = PTE_P | PTE_W | PTE_U;
        let t = |m: &mut Machine, s, a: &[i64]| kernel.trap(m, s, a).unwrap();
        assert_eq!(t(&mut machine, Sysno::AllocPdpt, &[1, 0, 0, 3, all]), 0);
        assert_eq!(t(&mut machine, Sysno::AllocPd, &[1, 3, 0, 4, all]), 0);
        assert_eq!(t(&mut machine, Sysno::AllocPt, &[1, 4, 0, 5, all]), 0);
        for i in 0..n {
            assert_eq!(
                t(&mut machine, Sysno::AllocFrame, &[1, 5, i, 6 + i, all]),
                0,
                "map page {i}"
            );
        }
        HkBench {
            kernel,
            machine,
            pt: 5,
            first_frame: 6,
            mapped: n,
        }
    }

    /// One hypercall round trip into the verified kernel (`sys_nop`).
    pub fn nop(&mut self) -> u64 {
        let before = self.machine.cycles.total;
        self.machine.charge_hypercall_roundtrip();
        self.kernel
            .trap(&mut self.machine, Sysno::Nop, &[])
            .unwrap();
        self.machine.cycles.total - before
    }

    /// Virtual address of mapped page `i`, word 0.
    pub fn va(&self, i: i64) -> u64 {
        (i as u64) * self.machine.params().page_words
    }

    /// mprotect analogue through the verified interface.
    pub fn protect(&mut self, i: i64, writable: bool) -> u64 {
        let before = self.machine.cycles.total;
        let perm = if writable {
            PTE_P | PTE_W | PTE_U
        } else {
            PTE_P | PTE_U
        };
        self.machine.charge_hypercall_roundtrip();
        let r = self
            .kernel
            .trap(
                &mut self.machine,
                Sysno::ProtectFrame,
                &[self.pt, i, self.first_frame + i, perm],
            )
            .unwrap();
        assert_eq!(r, 0);
        self.machine.cycles.total - before
    }

    /// The `fault` benchmark: cycles to deliver a write-protection fault
    /// to a user-space handler. Protection setup/teardown is outside the
    /// measured window, as in the paper.
    pub fn fault_dispatch(&mut self, i: i64) -> u64 {
        self.protect(i, false);
        let va = self.va(i);
        let before = self.machine.cycles.total;
        let r = self.machine.guest_write(va, 1);
        assert!(r.is_err(), "expected a fault");
        self.machine.charge_fault_direct_user();
        let cost = self.machine.cycles.total - before;
        self.protect(i, true);
        cost
    }

    /// The Appel-Li "prot1+trap+unprot" step on page `i`: protect one
    /// page, take the write fault, unprotect in the handler, retry.
    pub fn appel1_step(&mut self, i: i64) -> u64 {
        let before = self.machine.cycles.total;
        self.protect(i, false);
        let va = self.va(i);
        assert!(self.machine.guest_write(va, 7).is_err());
        self.machine.charge_fault_direct_user();
        self.protect(i, true); // the user handler unprotects
        assert!(self.machine.guest_write(va, 7).is_ok());
        self.machine.cycles.total - before
    }

    /// The Appel-Li "protN+trap+unprot" round over all mapped pages.
    pub fn appel2_round(&mut self) -> u64 {
        let before = self.machine.cycles.total;
        for i in 0..self.mapped {
            self.protect(i, false);
        }
        for i in 0..self.mapped {
            let va = self.va(i);
            assert!(self.machine.guest_write(va, 9).is_err());
            self.machine.charge_fault_direct_user();
            self.protect(i, true);
            assert!(self.machine.guest_write(va, 9).is_ok());
        }
        self.machine.cycles.total - before
    }
}

/// The baseline (monolithic) machine with `n` mapped pages.
pub struct MonoBench {
    /// The baseline system.
    pub sys: MonoSys,
    /// Number of mapped pages.
    pub mapped: i64,
}

impl MonoBench {
    /// Boots the baseline and maps `n` pages.
    pub fn new(params: KernelParams, cost: CostModel, n: i64) -> MonoBench {
        let mut sys = MonoSys::boot(params, cost);
        for i in 0..n {
            let va = sys.page_va(i as u64 + 1);
            sys.sys_mmap_page(va).expect("mmap");
            sys.user_write(va, 0).expect("touch");
        }
        MonoBench { sys, mapped: n }
    }

    /// Null syscall cost.
    pub fn nop(&mut self) -> u64 {
        let before = self.sys.machine.cycles.total;
        self.sys.sys_nop();
        self.sys.machine.cycles.total - before
    }

    /// Kernel-mediated fault dispatch cost.
    pub fn fault_dispatch(&mut self) -> u64 {
        let va = self.sys.page_va(1);
        self.sys.sys_mprotect(va, false).unwrap();
        self.sys.sys_sigaction();
        let before = self.sys.machine.cycles.total;
        let _ = self.sys.user_write(va, 1);
        let cost = self.sys.machine.cycles.total - before;
        self.sys.sys_mprotect(va, true).unwrap();
        cost
    }

    /// Appel-Li prot1 step on page `i`.
    pub fn appel1_step(&mut self, i: i64) -> u64 {
        let va = self.sys.page_va(i as u64 + 1);
        self.sys.sys_sigaction();
        let before = self.sys.machine.cycles.total;
        self.sys.sys_mprotect(va, false).unwrap();
        let _ = self.sys.user_write(va, 7);
        self.sys.sys_mprotect(va, true).unwrap();
        self.sys.user_write(va, 7).unwrap();
        self.sys.machine.cycles.total - before
    }

    /// Appel-Li protN round over all mapped pages.
    pub fn appel2_round(&mut self) -> u64 {
        self.sys.sys_sigaction();
        let before = self.sys.machine.cycles.total;
        for i in 0..self.mapped {
            let va = self.sys.page_va(i as u64 + 1);
            self.sys.sys_mprotect(va, false).unwrap();
        }
        for i in 0..self.mapped {
            let va = self.sys.page_va(i as u64 + 1);
            let _ = self.sys.user_write(va, 9);
            self.sys.sys_mprotect(va, true).unwrap();
            self.sys.user_write(va, 9).unwrap();
        }
        self.sys.machine.cycles.total - before
    }
}

/// Hyp-Linux null-syscall cost: in-process interception (Figure 10's
/// third column), measured through the emulator's dispatch constant.
pub fn hyp_linux_nop_cycles() -> u64 {
    136
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_shapes_match_figure_10() {
        let params = KernelParams::production();
        let cost = CostModel::default_model();
        let mut hk = HkBench::new(params, cost, 16);
        let mut mono = MonoBench::new(params, cost, 16);
        // Null syscall: hypercall ~5x slower than syscall (Figure 10 row 1).
        let hk_nop = hk.nop();
        let mono_nop = mono.nop();
        assert!(
            hk_nop > 3 * mono_nop && hk_nop < 8 * mono_nop,
            "hk {hk_nop} vs mono {mono_nop}"
        );
        // Fault dispatch: direct user delivery beats the kernel-mediated
        // path by ~3-6x (Figure 10 row 2 inverts the winner).
        let hk_fault = hk.fault_dispatch(0);
        let mono_fault = mono.fault_dispatch();
        assert!(
            mono_fault > 2 * hk_fault,
            "hk {hk_fault} vs mono {mono_fault}"
        );
        // Appel-Li: Hyperkernel wins (Figure 10 rows 3-4).
        let hk_a1: u64 = (0..8).map(|i| hk.appel1_step(i)).sum();
        let mono_a1: u64 = (0..8).map(|i| mono.appel1_step(i)).sum();
        assert!(hk_a1 < mono_a1, "hk {hk_a1} vs mono {mono_a1}");
        let hk_a2 = hk.appel2_round();
        let mono_a2 = mono.appel2_round();
        assert!(hk_a2 < mono_a2, "hk {hk_a2} vs mono {mono_a2}");
    }
}
