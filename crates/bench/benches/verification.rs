//! Criterion bench for push-button verification itself: one fast
//! handler end-to-end (symx + UB query + sliced refinement), tracking
//! the §6.3 headline number's health over time.

use criterion::{criterion_group, criterion_main, Criterion};
use hk_abi::{KernelParams, Sysno};
use hk_core::{verify_image, VerifyConfig};
use hk_kernel::KernelImage;

fn bench_verify(c: &mut Criterion) {
    let params = KernelParams::verification();
    let image = KernelImage::build(params).expect("kernel");
    let mut group = c.benchmark_group("verify");
    group.sample_size(10);
    for sysno in [Sysno::Nop, Sysno::AckIntr, Sysno::Dup] {
        group.bench_function(sysno.func_name(), |b| {
            b.iter(|| {
                let config = VerifyConfig {
                    params,
                    threads: 1,
                    only: vec![sysno],
                    ..VerifyConfig::default()
                };
                let report = verify_image(&image, &config);
                assert!(report.all_verified());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verify);
criterion_main!(benches);
