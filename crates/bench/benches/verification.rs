//! Timing bench for push-button verification itself: fast handlers
//! end-to-end (symx + UB query + sliced refinement), tracking the §6.3
//! headline number's health over time, plus the effect of the solver
//! query cache on a re-verification pass.
//! Runs offline (`cargo bench -p hk-bench --bench verification`).

use std::sync::Arc;

use hk_abi::{KernelParams, Sysno};
use hk_bench::bench_loop;
use hk_core::{verify_image, VerifyConfig};
use hk_kernel::KernelImage;
use hk_smt::QueryCache;

fn main() {
    let params = KernelParams::verification();
    let image = KernelImage::build(params).expect("kernel");
    println!("== verify (cold, no cache) ==");
    for sysno in [Sysno::Nop, Sysno::AckIntr, Sysno::Dup] {
        bench_loop(sysno.func_name(), 3, || {
            let config = VerifyConfig {
                params,
                threads: 1,
                only: vec![sysno],
                ..VerifyConfig::default()
            };
            let report = verify_image(&image, &config);
            assert!(report.all_verified());
        });
    }

    println!("== verify (warm query cache) ==");
    let cache = Arc::new(QueryCache::new(1 << 14));
    for sysno in [Sysno::Nop, Sysno::AckIntr, Sysno::Dup] {
        let mut config = VerifyConfig {
            params,
            threads: 1,
            only: vec![sysno],
            ..VerifyConfig::default()
        };
        config.solver.cache = Some(cache.clone());
        // Prime the cache, then measure the cached re-verification.
        let report = verify_image(&image, &config);
        assert!(report.all_verified());
        bench_loop(sysno.func_name(), 3, || {
            let report = verify_image(&image, &config);
            assert!(report.all_verified());
        });
    }
    let stats = cache.stats();
    println!(
        "cache: {} hits, {} misses, {} entries",
        stats.hits,
        stats.misses,
        cache.len()
    );
}
