//! Timing benches over the Figure 10 runtime bodies: wall-clock time
//! of the *simulation* (the cycle numbers themselves are printed by
//! `fig10_runtime`). Keeping these here tracks regressions in the
//! interpreter and machine substrate; they run offline with no harness
//! dependencies (`cargo bench -p hk-bench --bench runtime`).

use hk_abi::KernelParams;
use hk_bench::{bench_loop, HkBench, MonoBench};
use hk_vm::CostModel;

fn main() {
    let params = KernelParams::production();
    let cost = CostModel::default_model();
    println!("== fig10 runtime bodies ==");
    let mut hk = HkBench::new(params, cost, 16);
    bench_loop("hyperkernel_nop", 200, || {
        hk.nop();
    });
    bench_loop("hyperkernel_fault", 200, || {
        hk.fault_dispatch(0);
    });
    bench_loop("hyperkernel_appel1", 50, || {
        hk.appel1_step(1);
    });
    let mut mono = MonoBench::new(params, cost, 16);
    bench_loop("linux_nop", 200, || {
        mono.nop();
    });
    bench_loop("linux_fault", 200, || {
        mono.fault_dispatch();
    });
    bench_loop("linux_appel1", 50, || {
        mono.appel1_step(1);
    });

    println!("== boot ==");
    bench_loop("kernel_compile_and_boot", 5, || {
        let kernel = hk_kernel::Kernel::new(KernelParams::verification()).expect("kernel");
        let mut machine = kernel.new_machine(CostModel::default_model());
        hk_kernel::boot::boot(&kernel, &mut machine);
        std::hint::black_box(machine.cycles.total);
    });
}
