//! Criterion benches over the Figure 10 runtime bodies: wall-clock time
//! of the *simulation* (the cycle numbers themselves are printed by
//! `fig10_runtime`). Keeping these under Criterion tracks regressions in
//! the interpreter and machine substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use hk_abi::KernelParams;
use hk_bench::{HkBench, MonoBench};
use hk_vm::CostModel;

fn bench_runtime(c: &mut Criterion) {
    let params = KernelParams::production();
    let cost = CostModel::default_model();
    let mut group = c.benchmark_group("fig10");
    group.sample_size(20);
    let mut hk = HkBench::new(params, cost, 16);
    group.bench_function("hyperkernel_nop", |b| b.iter(|| hk.nop()));
    group.bench_function("hyperkernel_fault", |b| b.iter(|| hk.fault_dispatch(0)));
    group.bench_function("hyperkernel_appel1", |b| b.iter(|| hk.appel1_step(1)));
    let mut mono = MonoBench::new(params, cost, 16);
    group.bench_function("linux_nop", |b| b.iter(|| mono.nop()));
    group.bench_function("linux_fault", |b| b.iter(|| mono.fault_dispatch()));
    group.bench_function("linux_appel1", |b| b.iter(|| mono.appel1_step(1)));
    group.finish();
}

fn bench_boot(c: &mut Criterion) {
    let mut group = c.benchmark_group("boot");
    group.sample_size(10);
    group.bench_function("kernel_compile_and_boot", |b| {
        b.iter(|| {
            let kernel =
                hk_kernel::Kernel::new(KernelParams::verification()).expect("kernel");
            let mut machine = kernel.new_machine(CostModel::default_model());
            hk_kernel::boot::boot(&kernel, &mut machine);
            machine.cycles.total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_runtime, bench_boot);
criterion_main!(benches);
