//! Timing benches for the SMT substrate: SAT on structured and random
//! instances, and bit-blasting of the operators the kernel leans on.
//! Runs offline with no harness dependencies
//! (`cargo bench -p hk-bench --bench solver`).

use hk_bench::{bench_loop, XorShift64};
use hk_smt::{Ctx, SatResult, Solver, Sort};

fn pigeonhole(n: i32) -> bool {
    let m = n - 1;
    let v = |i: i32, j: i32| i * m + j + 1;
    let mut s = hk_smt::SatSolver::new();
    for i in 0..n {
        let c: Vec<i32> = (0..m).map(|j| v(i, j)).collect();
        s.add_clause(&c);
    }
    for j in 0..m {
        for a in 0..n {
            for b in (a + 1)..n {
                s.add_clause(&[-v(a, j), -v(b, j)]);
            }
        }
    }
    matches!(s.solve(), hk_smt::sat::SatOutcome::Unsat)
}

/// Random 3-CNF at the satisfiable side of the phase transition.
fn random_3cnf(rng: &mut XorShift64, vars: u32, clauses: usize) {
    let mut s = hk_smt::SatSolver::new();
    s.reserve_vars(vars);
    let mut ok = true;
    for _ in 0..clauses {
        let c: Vec<i32> = (0..3)
            .map(|_| {
                let v = rng.below(vars as u64) as i32 + 1;
                if rng.chance(1, 2) {
                    -v
                } else {
                    v
                }
            })
            .collect();
        if !s.add_clause(&c) {
            ok = false;
            break;
        }
    }
    if ok {
        std::hint::black_box(s.solve());
    }
}

fn main() {
    println!("== sat ==");
    bench_loop("pigeonhole_7", 5, || assert!(pigeonhole(7)));
    bench_loop("random_3cnf_60v_240c", 20, || {
        let mut rng = XorShift64::new(42);
        random_3cnf(&mut rng, 60, 240);
    });

    println!("== bitblast ==");
    bench_loop("mul64_equation", 5, || {
        let mut ctx = Ctx::new();
        let x = ctx.var("x", Sort::Bv(64));
        let c7 = ctx.bv_const(64, 7);
        let p = ctx.bv_mul(x, c7);
        let t = ctx.bv_const(64, 693);
        let eq = ctx.eq(p, t);
        let mut s = Solver::new();
        s.assert(&mut ctx, eq);
        assert!(matches!(s.check(&mut ctx), SatResult::Sat(_)));
    });
    bench_loop("uf_congruence", 20, || {
        let mut ctx = Ctx::new();
        let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(64));
        let x = ctx.var("x", Sort::Bv(64));
        let y = ctx.var("y", Sort::Bv(64));
        let e = ctx.eq(x, y);
        let fx = ctx.apply(f, &[x]);
        let fy = ctx.apply(f, &[y]);
        let ne = ctx.ne(fx, fy);
        let mut s = Solver::new();
        s.assert(&mut ctx, e);
        s.assert(&mut ctx, ne);
        assert!(s.check(&mut ctx).is_unsat());
    });
}
