//! Criterion benches for the SMT substrate: SAT on structured instances
//! and bit-blasting of the operators the kernel leans on.

use criterion::{criterion_group, criterion_main, Criterion};
use hk_smt::{Ctx, SatResult, Solver, Sort};

fn pigeonhole(n: i32) -> bool {
    let m = n - 1;
    let v = |i: i32, j: i32| i * m + j + 1;
    let mut s = hk_smt::SatSolver::new();
    for i in 0..n {
        let c: Vec<i32> = (0..m).map(|j| v(i, j)).collect();
        s.add_clause(&c);
    }
    for j in 0..m {
        for a in 0..n {
            for b in (a + 1)..n {
                s.add_clause(&[-v(a, j), -v(b, j)]);
            }
        }
    }
    matches!(s.solve(), hk_smt::sat::SatOutcome::Unsat)
}

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat");
    group.sample_size(10);
    group.bench_function("pigeonhole_7", |b| b.iter(|| assert!(pigeonhole(7))));
    group.finish();
}

fn bench_bitblast(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitblast");
    group.sample_size(10);
    group.bench_function("mul64_equation", |b| {
        b.iter(|| {
            let mut ctx = Ctx::new();
            let x = ctx.var("x", Sort::Bv(64));
            let c7 = ctx.bv_const(64, 7);
            let p = ctx.bv_mul(x, c7);
            let t = ctx.bv_const(64, 693);
            let eq = ctx.eq(p, t);
            let mut s = Solver::new();
            s.assert(&mut ctx, eq);
            assert!(matches!(s.check(&mut ctx), SatResult::Sat(_)));
        })
    });
    group.bench_function("uf_congruence", |b| {
        b.iter(|| {
            let mut ctx = Ctx::new();
            let f = ctx.func("f", vec![Sort::Bv(64)], Sort::Bv(64));
            let x = ctx.var("x", Sort::Bv(64));
            let y = ctx.var("y", Sort::Bv(64));
            let e = ctx.eq(x, y);
            let fx = ctx.apply(f, &[x]);
            let fy = ctx.apply(f, &[y]);
            let ne = ctx.ne(fx, fy);
            let mut s = Solver::new();
            s.assert(&mut ctx, e);
            s.assert(&mut ctx, ne);
            assert!(s.check(&mut ctx).is_unsat());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sat, bench_bitblast);
criterion_main!(benches);
