//! The bench subset must not report `UNKNOWN` under the shipping
//! (incremental) configuration: `sys_alloc_pdpt` was budget-bound in
//! the BENCH_PR2 table, and the CDCL rework plus the budget escalation
//! retry (4x conflicts on `Unknown`) is the fix — its hardest
//! refinement query cracks in a few hundred thousand conflicts once
//! the handler's earlier queries have seeded the learnt-clause DB.
//! The oneshot baseline is deliberately not asserted here: without
//! learnt reuse that same query is time-bound at any practical budget
//! (BENCH_PR6.json records it as the baseline's surviving `UNKNOWN`),
//! which is the incremental pipeline's reason to exist.
//!
//! Ignored by default — minutes of CDCL search — and run by the
//! scheduled full CI job alongside the full benches:
//!
//! ```sh
//! cargo test --release -p hk-bench --test no_unknown -- --ignored
//! ```

use hk_abi::{KernelParams, Sysno};
use hk_core::{verify_image, VerifyConfig};
use hk_kernel::KernelImage;

/// The Figure-7 bench subset (mirrors `bench_incremental`).
const BENCH_HANDLERS: [Sysno; 5] = [
    Sysno::Dup,
    Sysno::AllocPdpt,
    Sysno::Close,
    Sysno::AllocPort,
    Sysno::PipeRead,
];

#[test]
#[ignore = "minutes of CDCL search; run with --ignored in the full tier"]
fn bench_subset_has_no_unknown_verdicts() {
    let params = KernelParams::verification();
    let image = KernelImage::build(params).expect("kernel build");
    let mut config = VerifyConfig {
        params,
        threads: 1,
        only: BENCH_HANDLERS.to_vec(),
        ..VerifyConfig::default()
    };
    config.solver.incremental = true;
    // Mirrors the bench_incremental budgets: the hardest alloc_pdpt
    // refinement query needs several hundred thousand conflicts and a
    // few minutes of search even with a warm learnt DB.
    config.solver.sat.max_conflicts = Some(10_000_000);
    config.solver.sat.max_solve_ms = Some(600_000);
    let report = verify_image(&image, &config);
    let unknowns: Vec<&str> = report
        .handlers
        .iter()
        .filter(|h| h.verdict() == "UNKNOWN")
        .map(|h| h.sysno.func_name())
        .collect();
    assert!(
        unknowns.is_empty(),
        "UNKNOWN verdicts survived escalation: {unknowns:?}"
    );
}
