//! Checkers for the unverified residue (paper §5).
//!
//! The two theorems cover trap handlers but not kernel initialization or
//! glue, so three checkers close the gaps:
//!
//! * **boot checker** — executes `check_rep_invariant` on the freshly
//!   booted state, and establishes *non-vacuity* of the declarative
//!   specification by evaluating it concretely on that state (a
//!   predicate that holds in no state would make Theorem 2 meaningless);
//! * **stack checker** — bounds the worst-case stack use of every trap
//!   handler over the call graph against the 4 KiB kernel stack;
//! * **link checker** — validates that all kernel symbols occupy
//!   pairwise-disjoint physical ranges and stay inside the kernel's
//!   memory regions.

use hk_abi::Sysno;
use hk_kernel::Kernel;
use hk_smt::eval::Assignment;
use hk_smt::Ctx;
use hk_spec::{shapes_of, SpecState};
use hk_vm::Machine;

/// Result of one checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// The checker passed.
    Ok,
    /// The checker found problems.
    Failed(Vec<String>),
}

impl CheckResult {
    /// True if the checker passed.
    pub fn ok(&self) -> bool {
        matches!(self, CheckResult::Ok)
    }

    fn from_errors(errors: Vec<String>) -> CheckResult {
        if errors.is_empty() {
            CheckResult::Ok
        } else {
            CheckResult::Failed(errors)
        }
    }
}

// ---------------------------------------------------------------------
// Boot checker.
// ---------------------------------------------------------------------

/// Runs the boot checker on a booted machine: the representation
/// invariant must hold, and the declarative specification must be
/// non-vacuous (it holds in at least this one state).
pub fn boot_checker(kernel: &Kernel, machine: &mut Machine) -> CheckResult {
    let mut errors = Vec::new();
    match kernel.check_invariant(machine) {
        Ok(true) => {}
        Ok(false) => errors.push("check_rep_invariant is false at boot".to_string()),
        Err(e) => errors.push(format!("check_rep_invariant failed to run: {e}")),
    }
    // Non-vacuity: evaluate every declarative property on the concrete
    // boot state.
    let mut ctx = Ctx::new();
    let shapes = shapes_of(&kernel.image.module);
    let mut st = SpecState::fresh(&mut ctx, &shapes, kernel.image.params);
    let mut asg = Assignment::new();
    for (g, f, idx) in st.all_cells() {
        let (i, s) = match idx.len() {
            0 => (0, 0),
            1 => (idx[0], 0),
            _ => (idx[0], idx[1]),
        };
        let val = kernel.read_global(machine, &g, i, &f, s) as u64;
        let base = st.map(&g, &f).base;
        asg.func_mut(base).set(idx, val);
    }
    for prop in hk_spec::decl::all_properties() {
        let term = (prop.build)(&mut ctx, &mut st);
        if !hk_smt::eval::eval_bool(&ctx, term, &asg) {
            errors.push(format!(
                "declarative property `{}` does not hold at boot (vacuity risk)",
                prop.name
            ));
        }
    }
    CheckResult::from_errors(errors)
}

// ---------------------------------------------------------------------
// Stack checker.
// ---------------------------------------------------------------------

/// The kernel stack size the paper's stack checker validates against.
pub const KERNEL_STACK_BYTES: u64 = 4096;

/// Fixed per-call overhead: return address + saved frame pointer.
const CALL_OVERHEAD_BYTES: u64 = 16;

/// Conservatively estimates the worst-case stack use of every trap
/// handler: each frame spills all its registers (8 bytes each) plus call
/// overhead, maximized over the (acyclic) call graph. The bound itself
/// comes from [`hk_hir::CallGraph::max_stack_bytes`], the single home
/// for call-graph reasoning shared with the HIR verifier and the static
/// analysis pipeline.
pub fn stack_checker(kernel: &Kernel) -> CheckResult {
    let module = &kernel.image.module;
    let graph = hk_hir::CallGraph::build(module);
    if let Some(cycle) = graph.find_cycle() {
        return CheckResult::Failed(vec![format!(
            "call graph has a cycle ({} functions); stack unbounded",
            cycle.len()
        )]);
    }
    let mut errors = Vec::new();
    for sysno in Sysno::ALL {
        let f = kernel.image.handler(sysno);
        let use_bytes = graph
            .max_stack_bytes(module, f, CALL_OVERHEAD_BYTES)
            .expect("acyclic graph has a finite bound");
        if use_bytes > KERNEL_STACK_BYTES {
            errors.push(format!(
                "{} may use {use_bytes} bytes of stack (> {KERNEL_STACK_BYTES})",
                sysno.func_name()
            ));
        }
    }
    CheckResult::from_errors(errors)
}

/// The worst-case handler and its stack estimate (for reports).
pub fn stack_worst_case(kernel: &Kernel) -> (String, u64) {
    let module = &kernel.image.module;
    let graph = hk_hir::CallGraph::build(module);
    Sysno::ALL
        .iter()
        .map(|&s| {
            (
                s.func_name().to_string(),
                graph
                    .max_stack_bytes(module, kernel.image.handler(s), CALL_OVERHEAD_BYTES)
                    .unwrap_or(u64::MAX),
            )
        })
        .max_by_key(|(_, v)| *v)
        .unwrap()
}

// ---------------------------------------------------------------------
// Link checker.
// ---------------------------------------------------------------------

/// Validates the kernel image layout: symbols pairwise disjoint, the
/// metadata symbols inside the kernel region, and the `pages` symbol
/// exactly covering the RAM-pages region.
pub fn link_checker(kernel: &Kernel, machine: &Machine) -> CheckResult {
    let mut errors = Vec::new();
    let mut syms = kernel.layout.symbols();
    syms.sort_by_key(|(_, start, _)| *start);
    for w in syms.windows(2) {
        let (ref n1, s1, len1) = w[0];
        let (ref n2, s2, _) = w[1];
        if s1 + len1 > s2 {
            errors.push(format!("symbols {n1} and {n2} overlap"));
        }
    }
    let kernel_words = kernel.layout.kernel_words;
    for (name, start, len) in &syms {
        if name == "pages" {
            if *start != machine.map.pages_base() {
                errors.push(format!(
                    "pages symbol at {start}, expected {}",
                    machine.map.pages_base()
                ));
            }
            let expect = machine.map.params.nr_pages * machine.map.params.page_words;
            if *len != expect {
                errors.push(format!("pages symbol has {len} words, expected {expect}"));
            }
        } else if start + len > kernel_words {
            errors.push(format!(
                "symbol {name} escapes the kernel region ({start}+{len} > {kernel_words})"
            ));
        }
    }
    if machine.map.total_words() > machine.phys.size() {
        errors.push("memory map exceeds physical memory".to_string());
    }
    CheckResult::from_errors(errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hk_abi::KernelParams;
    use hk_vm::CostModel;

    fn booted() -> (Kernel, Machine) {
        let kernel = Kernel::new(KernelParams::verification()).unwrap();
        let mut machine = kernel.new_machine(CostModel::default_model());
        hk_kernel::boot::boot(&kernel, &mut machine);
        (kernel, machine)
    }

    #[test]
    fn boot_checker_passes_on_clean_boot() {
        let (kernel, mut machine) = booted();
        assert_eq!(boot_checker(&kernel, &mut machine), CheckResult::Ok);
    }

    #[test]
    fn boot_checker_catches_corruption() {
        let (kernel, mut machine) = booted();
        // Corrupt: current points at a free process slot.
        kernel.write_global(&mut machine, "current", 0, "value", 0, 5);
        let result = boot_checker(&kernel, &mut machine);
        assert!(!result.ok());
    }

    #[test]
    fn stack_checker_passes_and_reports() {
        let (kernel, _machine) = booted();
        assert_eq!(stack_checker(&kernel), CheckResult::Ok);
        let (name, worst) = stack_worst_case(&kernel);
        assert!(worst > 0 && worst <= KERNEL_STACK_BYTES, "{name}: {worst}");
    }

    #[test]
    fn link_checker_passes() {
        let (kernel, machine) = booted();
        assert_eq!(link_checker(&kernel, &machine), CheckResult::Ok);
    }

    #[test]
    #[ignore = "slow tier: production-size boot is minutes in debug builds; run with --ignored"]
    fn checkers_pass_at_production_size() {
        let kernel = Kernel::new(KernelParams::production()).unwrap();
        let mut machine = kernel.new_machine(CostModel::default_model());
        hk_kernel::boot::boot(&kernel, &mut machine);
        assert_eq!(boot_checker(&kernel, &mut machine), CheckResult::Ok);
        assert_eq!(stack_checker(&kernel), CheckResult::Ok);
        assert_eq!(link_checker(&kernel, &machine), CheckResult::Ok);
    }
}
