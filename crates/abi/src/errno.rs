//! Error codes returned by trap handlers.
//!
//! Handlers return `0` on success and a negative errno on failure, following
//! the Unix convention that xv6 and Hyperkernel inherit. The values are
//! stable ABI: the state-machine specifications return exactly the same
//! codes, and the refinement proof checks return values for equality.

/// Operation not permitted (ownership or lifetime check failed).
pub const EPERM: i64 = 1;
/// No such process / process slot not in the required state.
pub const ESRCH: i64 = 3;
/// Resource temporarily unavailable (e.g. pipe full or empty).
pub const EAGAIN: i64 = 11;
/// Out of memory / page not free.
pub const ENOMEM: i64 = 12;
/// Resource busy (slot already in use).
pub const EBUSY: i64 = 16;
/// Invalid argument (out of range or malformed).
pub const EINVAL: i64 = 22;
/// Bad file descriptor.
pub const EBADF: i64 = 9;
/// No such device or device slot unavailable.
pub const ENODEV: i64 = 19;
/// Too many open files (file table exhausted at the requested slot).
pub const ENFILE: i64 = 23;
/// Broken pipe (no reader).
pub const EPIPE: i64 = 32;

/// All errno symbols with their names, for diagnostics and test output.
pub const ERRNO_TABLE: &[(&str, i64)] = &[
    ("EPERM", EPERM),
    ("ESRCH", ESRCH),
    ("EBADF", EBADF),
    ("EAGAIN", EAGAIN),
    ("ENOMEM", ENOMEM),
    ("EBUSY", EBUSY),
    ("ENODEV", ENODEV),
    ("EINVAL", EINVAL),
    ("ENFILE", ENFILE),
    ("EPIPE", EPIPE),
];

/// Renders a handler return value: `"0"`, `"-EINVAL"`, or the raw number.
///
/// # Examples
///
/// ```
/// assert_eq!(hk_abi::errno_name(0), "0");
/// assert_eq!(hk_abi::errno_name(-hk_abi::EINVAL), "-EINVAL");
/// ```
pub fn errno_name(ret: i64) -> String {
    if ret >= 0 {
        return ret.to_string();
    }
    for (name, val) in ERRNO_TABLE {
        if -val == ret {
            return format!("-{name}");
        }
    }
    ret.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errnos_are_distinct() {
        for (i, a) in ERRNO_TABLE.iter().enumerate() {
            for b in &ERRNO_TABLE[i + 1..] {
                assert_ne!(a.1, b.1, "{} and {} collide", a.0, b.0);
            }
        }
    }

    #[test]
    fn errno_name_roundtrip() {
        assert_eq!(errno_name(-EBADF), "-EBADF");
        assert_eq!(errno_name(42), "42");
        assert_eq!(errno_name(-12345), "-12345");
    }
}
