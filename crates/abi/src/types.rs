//! Resource type tags and sentinels shared by the kernel, the specs, and
//! user space.
//!
//! These are plain `i64` constants rather than Rust enums because the same
//! values must appear inside HyperC kernel source, inside SMT terms, and
//! inside guest-visible memory; a single numeric namespace avoids any
//! translation layer that would itself need verification.

/// PID of the initial process created by the (trusted) boot code.
pub const INIT_PID: i64 = 1;
/// The "no process" sentinel used for owners and parents.
pub const PID_NONE: i64 = 0;

/// Process states (field `procs[pid].state`).
pub mod proc_state {
    /// Slot unused.
    pub const FREE: i64 = 0;
    /// Created but not yet runnable (between `clone_proc` and
    /// `set_runnable`).
    pub const EMBRYO: i64 = 1;
    /// Eligible to run.
    pub const RUNNABLE: i64 = 2;
    /// Currently executing (exactly one process, `current`).
    pub const RUNNING: i64 = 3;
    /// Blocked in `sys_recv` waiting for an IPC message.
    pub const SLEEPING: i64 = 4;
    /// Killed; resources must be reclaimed before the slot can be reaped.
    pub const ZOMBIE: i64 = 5;

    /// Human-readable name for diagnostics.
    pub fn name(s: i64) -> &'static str {
        match s {
            FREE => "FREE",
            EMBRYO => "EMBRYO",
            RUNNABLE => "RUNNABLE",
            RUNNING => "RUNNING",
            SLEEPING => "SLEEPING",
            ZOMBIE => "ZOMBIE",
            _ => "?",
        }
    }
}

/// Page types (field `page_desc[pn].ty`), following the typed-pages design
/// of paper §4.1: user processes retype pages through system calls, and the
/// kernel decides legality from the recorded type.
pub mod page_type {
    /// Free and allocatable.
    pub const FREE: i64 = 0;
    /// Reserved for the kernel (boot memory, kernel image, metadata).
    pub const RESERVED: i64 = 1;
    /// Page-table root (PML4) of a process.
    pub const PML4: i64 = 2;
    /// Third-level page-directory-pointer table.
    pub const PDPT: i64 = 3;
    /// Second-level page directory.
    pub const PD: i64 = 4;
    /// First-level page table.
    pub const PT: i64 = 5;
    /// Data page mapped into a process address space.
    pub const FRAME: i64 = 6;
    /// Kernel-managed stack page of a process.
    pub const STACK: i64 = 7;
    /// Virtual-machine control structure page of a process.
    pub const HVM: i64 = 8;
    /// IOMMU page-table root referenced by a device-table entry.
    pub const IOMMU_PML4: i64 = 9;
    /// IOMMU third-level table.
    pub const IOMMU_PDPT: i64 = 10;
    /// IOMMU second-level table.
    pub const IOMMU_PD: i64 = 11;
    /// IOMMU first-level table.
    pub const IOMMU_PT: i64 = 12;

    /// Human-readable name for diagnostics.
    pub fn name(t: i64) -> &'static str {
        match t {
            FREE => "FREE",
            RESERVED => "RESERVED",
            PML4 => "PML4",
            PDPT => "PDPT",
            PD => "PD",
            PT => "PT",
            FRAME => "FRAME",
            STACK => "STACK",
            HVM => "HVM",
            IOMMU_PML4 => "IOMMU_PML4",
            IOMMU_PDPT => "IOMMU_PDPT",
            IOMMU_PD => "IOMMU_PD",
            IOMMU_PT => "IOMMU_PT",
            _ => "?",
        }
    }

    /// True for the four CPU page-table levels (root through leaf table).
    pub fn is_cpu_table(t: i64) -> bool {
        matches!(t, PML4 | PDPT | PD | PT)
    }

    /// True for the four IOMMU page-table levels.
    pub fn is_iommu_table(t: i64) -> bool {
        matches!(t, IOMMU_PML4 | IOMMU_PDPT | IOMMU_PD | IOMMU_PT)
    }
}

/// File types (field `files[f].ty`).
pub mod file_type {
    /// Slot unused.
    pub const NONE: i64 = 0;
    /// Kernel pipe; `files[f].value` is the pipe index, `files[f].omode`
    /// selects the read (0) or write (1) end.
    pub const PIPE: i64 = 1;
    /// Inode handle interpreted by the user-space file server;
    /// `files[f].value` is the inode number.
    pub const INODE: i64 = 2;
    /// Socket handle interpreted by the user-space network server.
    pub const SOCKET: i64 = 3;

    /// Human-readable name for diagnostics.
    pub fn name(t: i64) -> &'static str {
        match t {
            NONE => "NONE",
            PIPE => "PIPE",
            INODE => "INODE",
            SOCKET => "SOCKET",
            _ => "?",
        }
    }
}

/// Interrupt-remapping-table entry states (field `intremaps[i].state`).
pub mod intremap_state {
    /// Entry unused.
    pub const FREE: i64 = 0;
    /// Entry active: routes `devid`'s interrupts to `vector`.
    pub const ACTIVE: i64 = 1;
}

/// Open modes for pipe file entries (field `files[f].omode`).
pub mod omode {
    /// Read end.
    pub const READ: i64 = 0;
    /// Write end.
    pub const WRITE: i64 = 1;
}

/// Sentinel stored in `devs[d].root` when the device-table entry is
/// invalid (no IOMMU page-table root attached).
pub const DEV_ROOT_NONE: i64 = -1;

/// Sentinel stored in `page_desc[pn].parent_pn` when a page is not
/// referenced by any page-table entry or device-table entry.
pub const PARENT_NONE: i64 = -1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_type_predicates() {
        assert!(page_type::is_cpu_table(page_type::PML4));
        assert!(page_type::is_cpu_table(page_type::PT));
        assert!(!page_type::is_cpu_table(page_type::FRAME));
        assert!(page_type::is_iommu_table(page_type::IOMMU_PD));
        assert!(!page_type::is_iommu_table(page_type::PD));
    }

    #[test]
    fn names_cover_all_tags() {
        for t in 0..=12 {
            assert_ne!(page_type::name(t), "?", "page type {t} unnamed");
        }
        for s in 0..=5 {
            assert_ne!(proc_state::name(s), "?", "proc state {s} unnamed");
        }
    }
}
