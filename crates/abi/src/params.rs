//! Kernel size parameters.
//!
//! Hyperkernel's finite-interface design means every trap handler touches a
//! constant number of resources regardless of how large these tables are
//! (paper §2.1). The verifier exploits that: verification time must be
//! independent of the parameter values, which the scaling experiment in
//! §6.3 demonstrates by multiplying the page count by 2x, 4x, and 100x.
//!
//! Two stock profiles are provided: [`KernelParams::verification`] (small
//! tables, so counterexamples stay readable — the paper's "small
//! counterexample" debugging methodology from §6.2) and
//! [`KernelParams::production`] (xv6-derived sizes used when actually
//! running the system).

/// Size parameters of every kernel table.
///
/// All limits are exclusive upper bounds on the corresponding resource
/// identifier: PIDs range over `1..nr_procs` (0 is the "none" sentinel),
/// file descriptors over `0..nr_fds`, and so on.
///
/// # Examples
///
/// ```
/// let p = hk_abi::KernelParams::verification();
/// assert!(p.nr_procs < hk_abi::KernelParams::production().nr_procs);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelParams {
    /// Number of process-table slots (PID 0 is reserved as "none").
    pub nr_procs: u64,
    /// Per-process file-descriptor table size.
    pub nr_fds: u64,
    /// System-wide file-table size. `nr_files` itself is the "no file"
    /// sentinel stored in FD slots, exactly as in the paper's `dup` spec
    /// (`proc_fd_table(pid, fd) < NR_FILES` means "open").
    pub nr_files: u64,
    /// Number of RAM pages managed by the page metadata table.
    pub nr_pages: u64,
    /// Number of DMA pages (the dedicated volatile region of Figure 6).
    pub nr_dmapages: u64,
    /// Number of device-table slots (IOMMU device table).
    pub nr_devs: u64,
    /// Number of I/O ports that can be delegated to user space.
    pub nr_ports: u64,
    /// Number of interrupt vectors that can be delegated to user space.
    pub nr_vectors: u64,
    /// Number of interrupt-remapping-table entries.
    pub nr_intremaps: u64,
    /// Number of kernel pipe buffers.
    pub nr_pipes: u64,
    /// Page size in 64-bit words (production: 512 words = 4 KiB).
    pub page_words: u64,
    /// Pipe buffer capacity in 64-bit words.
    pub pipe_words: u64,
}

impl KernelParams {
    /// Small tables used for verification and for generating readable
    /// counterexamples (§6.2: "temporarily lowering system parameters";
    /// the paper's small-counterexample methodology doubles here as a
    /// small-model verification profile, and the §6.3 scaling experiment
    /// demonstrates that verification cost does not depend on these
    /// values).
    pub const fn verification() -> Self {
        KernelParams {
            nr_procs: 6,
            nr_fds: 4,
            nr_files: 6,
            nr_pages: 16,
            nr_dmapages: 3,
            nr_devs: 3,
            nr_ports: 4,
            nr_vectors: 4,
            nr_intremaps: 3,
            nr_pipes: 3,
            page_words: 4,
            pipe_words: 4,
        }
    }

    /// xv6-derived sizes used when running the system.
    pub const fn production() -> Self {
        KernelParams {
            nr_procs: 64,
            nr_fds: 16,
            nr_files: 128,
            nr_pages: 8192,
            nr_dmapages: 64,
            nr_devs: 16,
            nr_ports: 64,
            nr_vectors: 32,
            nr_intremaps: 32,
            nr_pipes: 32,
            page_words: 512,
            pipe_words: 512,
        }
    }

    /// The verification profile with the page count scaled by `factor`,
    /// used by the §6.3 scaling experiment.
    pub const fn verification_scaled_pages(factor: u64) -> Self {
        let mut p = Self::verification();
        p.nr_pages *= factor;
        p
    }

    /// Page size in bytes.
    pub const fn page_bytes(&self) -> u64 {
        self.page_words * 8
    }

    /// Total number of page-frame numbers: RAM pages followed by DMA pages.
    ///
    /// Page-table entries address this combined space; a pfn `>= nr_pages`
    /// refers to DMA page `pfn - nr_pages`.
    pub const fn nr_pfns(&self) -> u64 {
        self.nr_pages + self.nr_dmapages
    }

    /// Returns true if the parameters are internally consistent (non-zero
    /// tables, power-of-two page size, and identifiers that fit the PTE
    /// pfn field).
    pub fn validate(&self) -> bool {
        self.nr_procs >= 2
            && self.nr_fds >= 1
            && self.nr_files >= 1
            && self.nr_pages >= 8
            && self.page_words.is_power_of_two()
            && self.page_words >= 4
            && self.pipe_words >= 1
            && self.nr_pfns() < (1 << 40)
    }
}

impl Default for KernelParams {
    fn default() -> Self {
        Self::production()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_validate() {
        assert!(KernelParams::verification().validate());
        assert!(KernelParams::production().validate());
        assert!(KernelParams::verification_scaled_pages(100).validate());
    }

    #[test]
    fn scaling_only_touches_pages() {
        let base = KernelParams::verification();
        let scaled = KernelParams::verification_scaled_pages(4);
        assert_eq!(scaled.nr_pages, base.nr_pages * 4);
        assert_eq!(scaled.nr_procs, base.nr_procs);
        assert_eq!(scaled.nr_files, base.nr_files);
    }

    #[test]
    fn page_bytes_production_is_4k() {
        assert_eq!(KernelParams::production().page_bytes(), 4096);
    }
}
