//! Shared ABI definitions for the Hyperkernel reproduction.
//!
//! This crate is the single source of truth for everything that must agree
//! across the kernel implementation, the specifications, the verifier, the
//! machine substrate, and user space: system-call numbers, error codes,
//! resource type tags, page-table entry encodings, and the kernel size
//! parameters ([`KernelParams`]).
//!
//! It deliberately has no dependencies so that every other crate can use it.

pub mod errno;
pub mod params;
pub mod pte;
pub mod sysno;
pub mod types;

pub use errno::*;
pub use params::KernelParams;
pub use pte::*;
pub use sysno::Sysno;
pub use types::*;
