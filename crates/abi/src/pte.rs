//! Page-table entry encoding, shared by the kernel (which writes entries),
//! the machine substrate (whose page walker reads them), the specification
//! (whose abstract page-walk model reasons about them), and user space.
//!
//! The encoding mirrors x86-64: low permission bits, page-frame number
//! shifted left by 12. The pfn field addresses the combined RAM+DMA frame
//! space (see [`crate::KernelParams::nr_pfns`]).

/// Present bit.
pub const PTE_P: i64 = 1 << 0;
/// Writable bit.
pub const PTE_W: i64 = 1 << 1;
/// User-accessible bit.
pub const PTE_U: i64 = 1 << 2;
/// Mask of the permission bits a user process may request.
pub const PTE_PERM_MASK: i64 = PTE_P | PTE_W | PTE_U;
/// Shift of the page-frame-number field.
pub const PTE_PFN_SHIFT: i64 = 12;

/// Number of page-table levels in a CPU or IOMMU walk.
pub const PT_LEVELS: u64 = 4;

/// Encodes a page-table entry from a frame number and permission bits.
///
/// # Examples
///
/// ```
/// use hk_abi::{pte_encode, pte_pfn, pte_perm, PTE_P, PTE_W};
/// let e = pte_encode(7, PTE_P | PTE_W);
/// assert_eq!(pte_pfn(e), 7);
/// assert_eq!(pte_perm(e), PTE_P | PTE_W);
/// ```
pub const fn pte_encode(pfn: i64, perm: i64) -> i64 {
    (pfn << PTE_PFN_SHIFT) | (perm & PTE_PERM_MASK)
}

/// Extracts the page-frame number from an entry.
pub const fn pte_pfn(entry: i64) -> i64 {
    // Arithmetic shift is fine: pfns are validated non-negative.
    entry >> PTE_PFN_SHIFT
}

/// Extracts the permission bits from an entry.
pub const fn pte_perm(entry: i64) -> i64 {
    entry & PTE_PERM_MASK
}

/// True if the entry has the present bit set.
pub const fn pte_present(entry: i64) -> bool {
    entry & PTE_P != 0
}

/// True if the entry is present and writable.
pub const fn pte_writable(entry: i64) -> bool {
    entry & (PTE_P | PTE_W) == (PTE_P | PTE_W)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_perms() {
        for perm in 0..8 {
            for pfn in [0i64, 1, 31, 8191, (1 << 40) - 1] {
                let e = pte_encode(pfn, perm);
                assert_eq!(pte_pfn(e), pfn);
                assert_eq!(pte_perm(e), perm);
                assert_eq!(pte_present(e), perm & PTE_P != 0);
            }
        }
    }

    #[test]
    fn perm_mask_strips_extra_bits() {
        let e = pte_encode(3, 0xff);
        assert_eq!(pte_perm(e), PTE_PERM_MASK);
        assert_eq!(pte_pfn(e), 3);
    }

    #[test]
    fn writable_requires_present() {
        assert!(!pte_writable(pte_encode(1, PTE_W)));
        assert!(pte_writable(pte_encode(1, PTE_P | PTE_W)));
    }
}
