//! The 50 trap handlers of the kernel interface.
//!
//! Hyperkernel's interface consists of 45 system calls (invoked from guest
//! mode via a hypercall) plus 5 other trap handlers (preemption timer,
//! external interrupt, triple fault, debug print, and the unknown-hypercall
//! fallback), for a total of **50 verified trap handlers**, matching the
//! paper's count.

/// Identifier of a trap handler. The numeric value is the hypercall number
/// used by guests; traps above [`Sysno::FIRST_TRAP`] are not directly
/// invocable from user space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u64)]
pub enum Sysno {
    // Process management.
    Nop = 0,
    AckIntr = 1,
    CloneProc = 2,
    SetRunnable = 3,
    Switch = 4,
    Kill = 5,
    Reap = 6,
    Reparent = 7,
    // Virtual memory.
    AllocPdpt = 8,
    AllocPd = 9,
    AllocPt = 10,
    AllocFrame = 11,
    CopyFrame = 12,
    ProtectFrame = 13,
    FreePdpt = 14,
    FreePd = 15,
    FreePt = 16,
    FreeFrame = 17,
    ReclaimPage = 18,
    MapDmaPage = 19,
    // File descriptors and pipes.
    CreateFile = 20,
    Close = 21,
    Dup = 22,
    Dup2 = 23,
    Pipe = 24,
    PipeRead = 25,
    PipeWrite = 26,
    // IPC.
    Send = 27,
    Recv = 28,
    ReplyWait = 29,
    TransferFd = 30,
    // Scheduling and time.
    Yield = 31,
    Uptime = 32,
    // IOMMU and devices.
    AllocIommuRoot = 33,
    AllocIommuPdpt = 34,
    AllocIommuPd = 35,
    AllocIommuPt = 36,
    AllocIommuFrame = 37,
    FreeIommuRoot = 38,
    AllocPort = 39,
    ReclaimPort = 40,
    // Interrupt delegation.
    AllocVector = 41,
    ReclaimVector = 42,
    AllocIntremap = 43,
    ReclaimIntremap = 44,
    // Non-syscall traps.
    TrapTimer = 45,
    TrapIrq = 46,
    TrapTripleFault = 47,
    TrapDebugPrint = 48,
    TrapInvalid = 49,
}

impl Sysno {
    /// First handler number that is a trap rather than a hypercall.
    pub const FIRST_TRAP: u64 = 45;
    /// Total number of trap handlers (the paper's "50").
    pub const COUNT: usize = 50;

    /// All 50 handlers in numeric order.
    pub const ALL: [Sysno; Sysno::COUNT] = [
        Sysno::Nop,
        Sysno::AckIntr,
        Sysno::CloneProc,
        Sysno::SetRunnable,
        Sysno::Switch,
        Sysno::Kill,
        Sysno::Reap,
        Sysno::Reparent,
        Sysno::AllocPdpt,
        Sysno::AllocPd,
        Sysno::AllocPt,
        Sysno::AllocFrame,
        Sysno::CopyFrame,
        Sysno::ProtectFrame,
        Sysno::FreePdpt,
        Sysno::FreePd,
        Sysno::FreePt,
        Sysno::FreeFrame,
        Sysno::ReclaimPage,
        Sysno::MapDmaPage,
        Sysno::CreateFile,
        Sysno::Close,
        Sysno::Dup,
        Sysno::Dup2,
        Sysno::Pipe,
        Sysno::PipeRead,
        Sysno::PipeWrite,
        Sysno::Send,
        Sysno::Recv,
        Sysno::ReplyWait,
        Sysno::TransferFd,
        Sysno::Yield,
        Sysno::Uptime,
        Sysno::AllocIommuRoot,
        Sysno::AllocIommuPdpt,
        Sysno::AllocIommuPd,
        Sysno::AllocIommuPt,
        Sysno::AllocIommuFrame,
        Sysno::FreeIommuRoot,
        Sysno::AllocPort,
        Sysno::ReclaimPort,
        Sysno::AllocVector,
        Sysno::ReclaimVector,
        Sysno::AllocIntremap,
        Sysno::ReclaimIntremap,
        Sysno::TrapTimer,
        Sysno::TrapIrq,
        Sysno::TrapTripleFault,
        Sysno::TrapDebugPrint,
        Sysno::TrapInvalid,
    ];

    /// Decodes a hypercall number. Unknown numbers resolve to
    /// [`Sysno::TrapInvalid`], which is itself a verified handler — the
    /// kernel has no unverified "default" path.
    pub fn from_hypercall(n: u64) -> Sysno {
        if n < Sysno::FIRST_TRAP {
            Sysno::ALL[n as usize]
        } else {
            Sysno::TrapInvalid
        }
    }

    /// The hypercall/trap number.
    pub const fn number(self) -> u64 {
        self as u64
    }

    /// True for the five handlers that are not user-invocable hypercalls.
    pub const fn is_trap(self) -> bool {
        self as u64 >= Sysno::FIRST_TRAP
    }

    /// Name of the HyperC function implementing this handler.
    pub const fn func_name(self) -> &'static str {
        match self {
            Sysno::Nop => "sys_nop",
            Sysno::AckIntr => "sys_ack_intr",
            Sysno::CloneProc => "sys_clone_proc",
            Sysno::SetRunnable => "sys_set_runnable",
            Sysno::Switch => "sys_switch",
            Sysno::Kill => "sys_kill",
            Sysno::Reap => "sys_reap",
            Sysno::Reparent => "sys_reparent",
            Sysno::AllocPdpt => "sys_alloc_pdpt",
            Sysno::AllocPd => "sys_alloc_pd",
            Sysno::AllocPt => "sys_alloc_pt",
            Sysno::AllocFrame => "sys_alloc_frame",
            Sysno::CopyFrame => "sys_copy_frame",
            Sysno::ProtectFrame => "sys_protect_frame",
            Sysno::FreePdpt => "sys_free_pdpt",
            Sysno::FreePd => "sys_free_pd",
            Sysno::FreePt => "sys_free_pt",
            Sysno::FreeFrame => "sys_free_frame",
            Sysno::ReclaimPage => "sys_reclaim_page",
            Sysno::MapDmaPage => "sys_map_dmapage",
            Sysno::CreateFile => "sys_create_file",
            Sysno::Close => "sys_close",
            Sysno::Dup => "sys_dup",
            Sysno::Dup2 => "sys_dup2",
            Sysno::Pipe => "sys_pipe",
            Sysno::PipeRead => "sys_pipe_read",
            Sysno::PipeWrite => "sys_pipe_write",
            Sysno::Send => "sys_send",
            Sysno::Recv => "sys_recv",
            Sysno::ReplyWait => "sys_reply_wait",
            Sysno::TransferFd => "sys_transfer_fd",
            Sysno::Yield => "sys_yield",
            Sysno::Uptime => "sys_uptime",
            Sysno::AllocIommuRoot => "sys_alloc_iommu_root",
            Sysno::AllocIommuPdpt => "sys_alloc_iommu_pdpt",
            Sysno::AllocIommuPd => "sys_alloc_iommu_pd",
            Sysno::AllocIommuPt => "sys_alloc_iommu_pt",
            Sysno::AllocIommuFrame => "sys_alloc_iommu_frame",
            Sysno::FreeIommuRoot => "sys_free_iommu_root",
            Sysno::AllocPort => "sys_alloc_port",
            Sysno::ReclaimPort => "sys_reclaim_port",
            Sysno::AllocVector => "sys_alloc_vector",
            Sysno::ReclaimVector => "sys_reclaim_vector",
            Sysno::AllocIntremap => "sys_alloc_intremap",
            Sysno::ReclaimIntremap => "sys_reclaim_intremap",
            Sysno::TrapTimer => "trap_timer",
            Sysno::TrapIrq => "trap_irq",
            Sysno::TrapTripleFault => "trap_triple_fault",
            Sysno::TrapDebugPrint => "trap_debug_print",
            Sysno::TrapInvalid => "trap_invalid",
        }
    }

    /// Number of `i64` arguments the handler takes.
    pub const fn arg_count(self) -> usize {
        match self {
            Sysno::Nop
            | Sysno::Yield
            | Sysno::Uptime
            | Sysno::TrapTimer
            | Sysno::TrapTripleFault
            | Sysno::TrapInvalid => 0,
            Sysno::SetRunnable
            | Sysno::Switch
            | Sysno::Kill
            | Sysno::Reap
            | Sysno::Reparent
            | Sysno::ReclaimPage
            | Sysno::Close
            | Sysno::AllocPort
            | Sysno::ReclaimPort
            | Sysno::AllocVector
            | Sysno::ReclaimVector
            | Sysno::ReclaimIntremap
            | Sysno::AckIntr
            | Sysno::TrapIrq
            | Sysno::TrapDebugPrint => 1,
            Sysno::CopyFrame
            | Sysno::Dup
            | Sysno::Dup2
            | Sysno::AllocIommuRoot
            | Sysno::FreeIommuRoot => 2,
            Sysno::FreePdpt
            | Sysno::FreePd
            | Sysno::FreePt
            | Sysno::FreeFrame
            | Sysno::Recv
            | Sysno::TransferFd
            | Sysno::AllocIntremap => 3,
            Sysno::CloneProc
            | Sysno::ProtectFrame
            | Sysno::PipeRead
            | Sysno::PipeWrite
            | Sysno::AllocIommuPdpt
            | Sysno::AllocIommuPd
            | Sysno::AllocIommuPt
            | Sysno::AllocIommuFrame => 4,
            Sysno::AllocPdpt
            | Sysno::AllocPd
            | Sysno::AllocPt
            | Sysno::AllocFrame
            | Sysno::MapDmaPage
            | Sysno::CreateFile
            | Sysno::Pipe
            | Sysno::Send
            | Sysno::ReplyWait => 5,
        }
    }
}

impl std::fmt::Display for Sysno {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.func_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_complete_and_ordered() {
        assert_eq!(Sysno::ALL.len(), 50);
        for (i, s) in Sysno::ALL.iter().enumerate() {
            assert_eq!(s.number(), i as u64);
        }
    }

    #[test]
    fn from_hypercall_roundtrip() {
        for s in Sysno::ALL {
            if !s.is_trap() {
                assert_eq!(Sysno::from_hypercall(s.number()), s);
            }
        }
        assert_eq!(Sysno::from_hypercall(999), Sysno::TrapInvalid);
        assert_eq!(Sysno::from_hypercall(45), Sysno::TrapInvalid);
    }

    #[test]
    fn func_names_unique() {
        let mut names: Vec<_> = Sysno::ALL.iter().map(|s| s.func_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 50);
    }

    #[test]
    fn exactly_five_traps() {
        assert_eq!(Sysno::ALL.iter().filter(|s| s.is_trap()).count(), 5);
    }
}
