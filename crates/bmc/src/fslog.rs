//! Crash-safety harnesses for the write-ahead journal.
//!
//! The write schedule is not hand-modeled: it is extracted by running
//! the *real* `hk_user::fs::log::Log::commit` against a recording
//! [`ShadowDisk`], so the symbolic crash analysis replays exactly the
//! sector writes the code issues, in the code's order. Each write in
//! the schedule is then re-targeted at symbolic home LBAs and payloads,
//! a symbolic crash point truncates the schedule, and the *real*
//! recovery algorithm (mirrored step for step) runs on the crashed
//! state. Atomicity says the data region is then uniformly pre-commit
//! or uniformly post-commit — never torn.
//!
//! Bounding caveat (documented in DESIGN.md): sector writes are atomic
//! in this model, as in the `DiskIo` interface itself; crashes tear
//! *between* sector writes, not inside one.

use hk_smt::{Ctx, Model, Sort, TermId};
use hk_user::fs::disk::DiskIo;
use hk_user::fs::log::Log;

use crate::harness::{BmcConfig, HarnessReport, Prover, SeededBug};

/// Placeholder home LBA of staged sector `i` during schedule
/// extraction (far outside any bounded disk).
const HOME_BASE: u64 = 1000;
/// Marker payload word of staged sector `i` during extraction.
const MARK_BASE: i64 = 2000;

/// A disk that records every write and reads back zeros — the
/// instrument for extracting `commit`'s write schedule.
#[derive(Debug)]
pub struct ShadowDisk {
    sector_words: u64,
    nsectors: u64,
    /// All writes, in issue order.
    pub writes: Vec<(u64, Vec<i64>)>,
}

impl ShadowDisk {
    /// A fresh recorder.
    pub fn new(sector_words: u64, nsectors: u64) -> ShadowDisk {
        ShadowDisk {
            sector_words,
            nsectors,
            writes: Vec::new(),
        }
    }
}

impl DiskIo for ShadowDisk {
    fn sector_words(&self) -> u64 {
        self.sector_words
    }

    fn nsectors(&self) -> u64 {
        self.nsectors
    }

    fn read_sector(&mut self, _lba: u64, buf: &mut [i64]) {
        buf.fill(0);
    }

    fn write_sector(&mut self, lba: u64, buf: &[i64]) {
        self.writes.push((lba, buf.to_vec()));
    }
}

/// A disk wrapper that drops writes once its budget is exhausted — the
/// native crash simulation for the differential fuzz bridge.
#[derive(Debug)]
pub struct CrashDisk<D: DiskIo> {
    /// The disk that survives the crash.
    pub inner: D,
    /// Sector writes still allowed before the power fails.
    pub remaining: u64,
}

impl<D: DiskIo> CrashDisk<D> {
    /// Wraps `inner`, allowing `remaining` more sector writes.
    pub fn new(inner: D, remaining: u64) -> CrashDisk<D> {
        CrashDisk { inner, remaining }
    }
}

impl<D: DiskIo> DiskIo for CrashDisk<D> {
    fn sector_words(&self) -> u64 {
        self.inner.sector_words()
    }

    fn nsectors(&self) -> u64 {
        self.inner.nsectors()
    }

    fn read_sector(&mut self, lba: u64, buf: &mut [i64]) {
        self.inner.read_sector(lba, buf);
    }

    fn write_sector(&mut self, lba: u64, buf: &[i64]) {
        if self.remaining > 0 {
            self.remaining -= 1;
            self.inner.write_sector(lba, buf);
        }
    }
}

/// One write of the extracted commit schedule, classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymWrite {
    /// Staged sector `i` written into log slot `header_lba + 1 + i`.
    LogSlot(usize),
    /// The commit-point header (count + home LBAs).
    Header,
    /// Staged sector `i` installed at its home LBA.
    Install(usize),
    /// The header zeroed after install.
    HeaderClear,
}

/// Runs the real `Log::commit` for an `n`-sector transaction against a
/// [`ShadowDisk`] and classifies its write schedule. The
/// [`SeededBug::JournalHeaderFirst`] fixture reorders the extracted
/// schedule to publish the header before the log payload.
pub fn commit_schedule(
    n: usize,
    capacity: u64,
    sector_words: u64,
    bug: Option<SeededBug>,
) -> Vec<SymWrite> {
    assert!(n as u64 <= capacity && sector_words as usize > n);
    let disk = ShadowDisk::new(sector_words, 2 * HOME_BASE);
    let mut log = Log::new(disk, 0, capacity);
    log.begin();
    for i in 0..n {
        let marker = vec![MARK_BASE + i as i64; sector_words as usize];
        log.write(HOME_BASE + i as u64, &marker);
    }
    log.commit();
    let writes = log.into_disk().writes;

    let mut sched = Vec::new();
    for (lba, data) in writes {
        let w = if lba == 0 {
            if data[0] == 0 {
                SymWrite::HeaderClear
            } else {
                assert_eq!(data[0], n as i64, "header sector count");
                for (i, &h) in data[1..=n].iter().enumerate() {
                    assert_eq!(h, (HOME_BASE as i64) + i as i64, "header home lba");
                }
                SymWrite::Header
            }
        } else if lba >= HOME_BASE {
            let i = (lba - HOME_BASE) as usize;
            assert!(i < n, "install outside the transaction");
            assert_eq!(data[0], MARK_BASE + i as i64, "install payload");
            SymWrite::Install(i)
        } else {
            let j = (data[0] - MARK_BASE) as usize;
            assert!(j < n, "unrecognized log payload");
            assert_eq!(lba, 1 + j as u64, "log slot placement");
            SymWrite::LogSlot(j)
        };
        sched.push(w);
    }
    // The code's protocol: n log writes, header, n installs, clear.
    assert_eq!(sched.len(), 2 * n + 2, "unexpected schedule length");
    assert_eq!(sched[n], SymWrite::Header, "commit point out of place");
    assert_eq!(*sched.last().unwrap(), SymWrite::HeaderClear);

    if bug == Some(SeededBug::JournalHeaderFirst) {
        // Seeded bug: publish the commit point before the log payload
        // has been made durable.
        sched.remove(n);
        sched.insert(0, SymWrite::Header);
    }
    sched
}

/// A symbolic disk: `nsectors` sectors of `sector_words` 64-bit words.
pub type DiskState = Vec<Vec<TermId>>;

/// One symbolic crash/recovery instance for an `n`-sector transaction.
pub struct FsLogInstance {
    /// Staged sectors in the transaction.
    pub n: usize,
    /// Words per sector.
    pub sector_words: u64,
    /// Disk size in sectors.
    pub nsectors: u64,
    /// Log capacity (slots).
    pub capacity: u64,
    /// Initial disk contents (free variables; header assumed clean).
    pub d0: DiskState,
    /// Symbolic home LBAs of the staged sectors.
    pub homes: Vec<TermId>,
    /// Symbolic payloads of the staged sectors.
    pub payloads: Vec<Vec<TermId>>,
    /// Symbolic crash point: writes `< crash` land, the rest are lost.
    pub crash: TermId,
    /// The extracted write schedule.
    pub schedule: Vec<SymWrite>,
    /// Disk as the crash left it.
    pub crash_state: DiskState,
    /// Disk after one recovery.
    pub recovered: DiskState,
    /// Disk after a second recovery.
    pub recovered_twice: DiskState,
    /// Data region uniformly equals the pre-commit contents.
    pub match_pre: TermId,
    /// Data region uniformly equals the post-commit contents.
    pub match_post: TermId,
    /// Both recoveries agree on every sector.
    pub idempotent: TermId,
    /// Constraints the instance needs (home bounds/distinctness, crash
    /// bound, clean initial header).
    pub assumptions: Vec<TermId>,
}

/// Mirrors `Log::recover` over a symbolic disk state: buffer the
/// header, replay `header[1+i] < header[0]` slots, clear the header if
/// it named anything.
fn apply_recovery(ctx: &mut Ctx, st: &DiskState, capacity: u64) -> DiskState {
    let sw = st[0].len();
    let nh = st[0][0];
    let zero = ctx.bv_const(64, 0);
    let mut out = st.clone();
    for i in 0..capacity {
        let ic = ctx.bv_const(64, i);
        let active = ctx.ult(ic, nh);
        let home = st[0][1 + i as usize];
        let slot = 1 + i as usize;
        let buf: Vec<TermId> = out[slot].clone();
        for (s, sector) in out.iter_mut().enumerate() {
            let sc = ctx.bv_const(64, s as u64);
            let here = ctx.eq(home, sc);
            let hit = ctx.and2(active, here);
            for w in 0..sw {
                sector[w] = ctx.ite(hit, buf[w], sector[w]);
            }
        }
    }
    let committed = ctx.ne(nh, zero);
    for word in out[0].iter_mut() {
        *word = ctx.ite(committed, zero, *word);
    }
    out
}

/// Encodes the full crash/recovery circuit for an `n`-sector commit.
pub fn encode_fslog(ctx: &mut Ctx, cfg: &BmcConfig, n: usize) -> FsLogInstance {
    let (sw, nsectors, capacity) = cfg.fs_bounds();
    let data_lo = capacity + 1;
    let mut assumptions = Vec::new();
    let zero = ctx.bv_const(64, 0);

    let mut d0: DiskState = Vec::new();
    for s in 0..nsectors {
        let mut sector = Vec::new();
        for w in 0..sw {
            sector.push(ctx.var(format!("n{n}_d0_s{s}_w{w}"), Sort::Bv(64)));
        }
        d0.push(sector);
    }
    // The disk was cleanly unmounted: no pending log in the header.
    for &word in &d0[0] {
        assumptions.push(ctx.eq(word, zero));
    }

    let lo = ctx.bv_const(64, data_lo);
    let hi = ctx.bv_const(64, nsectors);
    let mut homes = Vec::new();
    for i in 0..n {
        let h = ctx.var(format!("n{n}_home{i}"), Sort::Bv(64));
        assumptions.push(ctx.ule(lo, h));
        assumptions.push(ctx.ult(h, hi));
        homes.push(h);
    }
    assumptions.push(ctx.distinct(&homes));

    let mut payloads = Vec::new();
    for i in 0..n {
        let mut p = Vec::new();
        for w in 0..sw {
            p.push(ctx.var(format!("n{n}_p{i}_w{w}"), Sort::Bv(64)));
        }
        payloads.push(p);
    }

    let schedule = commit_schedule(n, capacity, sw, cfg.seeded_bug);
    let crash = ctx.var(format!("n{n}_crash"), Sort::Bv(64));
    let len_c = ctx.bv_const(64, schedule.len() as u64);
    assumptions.push(ctx.ule(crash, len_c));

    // Replay the schedule; each write lands iff it precedes the crash.
    let mut state = d0.clone();
    for (t, wr) in schedule.iter().enumerate() {
        let tc = ctx.bv_const(64, t as u64);
        let done = ctx.ult(tc, crash);
        match *wr {
            SymWrite::LogSlot(j) => {
                let slot = 1 + j;
                for w in 0..sw as usize {
                    state[slot][w] = ctx.ite(done, payloads[j][w], state[slot][w]);
                }
            }
            SymWrite::Header => {
                let nc = ctx.bv_const(64, n as u64);
                state[0][0] = ctx.ite(done, nc, state[0][0]);
                for (i, &h) in homes.iter().enumerate() {
                    state[0][1 + i] = ctx.ite(done, h, state[0][1 + i]);
                }
                for word in state[0].iter_mut().skip(1 + n) {
                    *word = ctx.ite(done, zero, *word);
                }
            }
            SymWrite::Install(i) => {
                for (s, sector) in state.iter_mut().enumerate() {
                    let sc = ctx.bv_const(64, s as u64);
                    let here = ctx.eq(homes[i], sc);
                    let hit = ctx.and2(done, here);
                    for w in 0..sw as usize {
                        sector[w] = ctx.ite(hit, payloads[i][w], sector[w]);
                    }
                }
            }
            SymWrite::HeaderClear => {
                for word in state[0].iter_mut() {
                    *word = ctx.ite(done, zero, *word);
                }
            }
        }
    }
    let crash_state = state;
    let recovered = apply_recovery(ctx, &crash_state, capacity);
    let recovered_twice = apply_recovery(ctx, &recovered, capacity);

    // Post-commit disk: payloads installed at their homes.
    let mut post = d0.clone();
    for (s, sector) in post.iter_mut().enumerate() {
        let sc = ctx.bv_const(64, s as u64);
        for (i, &h) in homes.iter().enumerate() {
            let here = ctx.eq(h, sc);
            for w in 0..sw as usize {
                sector[w] = ctx.ite(here, payloads[i][w], sector[w]);
            }
        }
    }

    let mut pre_eqs = Vec::new();
    let mut post_eqs = Vec::new();
    for s in data_lo as usize..nsectors as usize {
        for w in 0..sw as usize {
            pre_eqs.push(ctx.eq(recovered[s][w], d0[s][w]));
            post_eqs.push(ctx.eq(recovered[s][w], post[s][w]));
        }
    }
    let match_pre = ctx.and(&pre_eqs);
    let match_post = ctx.and(&post_eqs);

    let mut idem = Vec::new();
    for s in 0..nsectors as usize {
        for w in 0..sw as usize {
            idem.push(ctx.eq(recovered[s][w], recovered_twice[s][w]));
        }
    }
    let idempotent = ctx.and(&idem);

    FsLogInstance {
        n,
        sector_words: sw,
        nsectors,
        capacity,
        d0,
        homes,
        payloads,
        crash,
        schedule,
        crash_state,
        recovered,
        recovered_twice,
        match_pre,
        match_post,
        idempotent,
        assumptions,
    }
}

fn render_region(ctx: &Ctx, model: &Model, st: &DiskState, lo: usize) -> String {
    let mut out = String::new();
    for (s, sector) in st.iter().enumerate().skip(lo) {
        out.push_str(&format!("    lba {s}:"));
        for &w in sector {
            out.push_str(&format!(" {}", model.eval_i64(ctx, w).unwrap_or(0)));
        }
        out.push('\n');
    }
    out
}

fn render_fslog_cex(ctx: &Ctx, model: &Model, inst: &FsLogInstance) -> String {
    let crash = model.eval_bv(ctx, inst.crash).unwrap_or(0);
    let mut out = format!(
        "fs-log counterexample: n={} crash after write {crash}/{}\n  schedule:",
        inst.n,
        inst.schedule.len()
    );
    for (t, wr) in inst.schedule.iter().enumerate() {
        let mark = if (t as u64) < crash { "done" } else { "lost" };
        out.push_str(&format!(" {wr:?}[{mark}]"));
    }
    out.push('\n');
    for (i, &h) in inst.homes.iter().enumerate() {
        out.push_str(&format!(
            "  staged[{i}]: home lba {}\n",
            model.eval_bv(ctx, h).unwrap_or(0)
        ));
    }
    let lo = (inst.capacity + 1) as usize;
    out.push_str("  pre-commit data region:\n");
    out.push_str(&render_region(ctx, model, &inst.d0, lo));
    out.push_str("  crash-state data region:\n");
    out.push_str(&render_region(ctx, model, &inst.crash_state, lo));
    out.push_str("  recovered data region:\n");
    out.push_str(&render_region(ctx, model, &inst.recovered, lo));
    out
}

fn bounds_of(cfg: &BmcConfig) -> String {
    let (sw, d, cap) = cfg.fs_bounds();
    format!("sector_words={sw} nsectors={d} log_capacity={cap}")
}

/// Harness: for every transaction size, crash point, home placement,
/// payload, and initial disk, recovery yields the pre-commit or
/// post-commit data region — never a torn mix.
pub fn crash_atomicity(cfg: &BmcConfig) -> HarnessReport {
    let (_, _, capacity) = cfg.fs_bounds();
    let mut ctx = Ctx::new();
    let instances: Vec<FsLogInstance> = (1..=capacity as usize)
        .map(|n| encode_fslog(&mut ctx, cfg, n))
        .collect();
    let mut prover = Prover::new(ctx, cfg);
    for inst in &instances {
        for &a in &inst.assumptions {
            prover.assume(a);
        }
    }
    for inst in &instances {
        let prop = prover.ctx.or2(inst.match_pre, inst.match_post);
        prover.prove(prop, |ctx, model| render_fslog_cex(ctx, model, inst));
    }
    prover.finish("fslog_crash_atomicity", "fslog", bounds_of(cfg))
}

/// Harness: recovery is idempotent — a second recovery pass (e.g. a
/// crash during the first mount) changes nothing, on any crashed disk.
pub fn recovery_idempotent(cfg: &BmcConfig) -> HarnessReport {
    let (_, _, capacity) = cfg.fs_bounds();
    let mut ctx = Ctx::new();
    let instances: Vec<FsLogInstance> = (1..=capacity as usize)
        .map(|n| encode_fslog(&mut ctx, cfg, n))
        .collect();
    let mut prover = Prover::new(ctx, cfg);
    for inst in &instances {
        for &a in &inst.assumptions {
            prover.assume(a);
        }
    }
    for inst in &instances {
        prover.prove(inst.idempotent, |ctx, model| {
            format!(
                "second recovery diverged\n{}",
                render_fslog_cex(ctx, model, inst)
            )
        });
    }
    prover.finish("fslog_recovery_idempotent", "fslog", bounds_of(cfg))
}
