//! Bounded model checking of the trusted substrate (the "residue").
//!
//! Hyperkernel's push-button verification covers the finite syscall
//! interface, but the machine substrate the proofs stand on — hk-vm's
//! page walker, TLB, and IOMMU, and hk-user's journaling file system —
//! was only sampled by concrete tests. This crate closes that gap with
//! Kani-style *harnesses*: bounded proof obligations that lift small
//! symbolic state into hk-smt terms, mirror the real Rust code as term
//! circuits, and discharge the properties through the same incremental
//! CDCL/portfolio solver stack as the kernel proofs, with every Unsat
//! optionally re-derived by the independent DRAT checker.
//!
//! Four harness families ship here:
//!
//! * [`paging`] — the 4-level walk agrees with a clean-room spec,
//!   permissions compose monotonically, no walk arithmetic overflows,
//!   and `split_va`/`join_va` round-trip;
//! * [`tlb`] — walk-after-flush equals walk-from-scratch for all
//!   symbolic probes under bounded fill/evict traces;
//! * [`iommu`] — device translations never leave the DMA region and
//!   only resolve frames some device-table entry grants;
//! * [`fslog`] — for every crash point inside a bounded commit,
//!   recovery yields the pre- or post-commit disk, never a torn one.
//!
//! The encodings themselves are validated two ways: negative fixtures
//! ([`harness::SeededBug`]) plant classic defects that each harness
//! must catch with a concrete counterexample, and the differential
//! fuzz bridge (in `tests/`) executes randomized concrete states both
//! natively and through the symbolic models, asserting agreement.

pub mod fslog;
pub mod harness;
pub mod iommu;
pub mod model;
pub mod paging;
pub mod tlb;

pub use harness::{
    harnesses, run_all, BmcConfig, BmcOutcome, HarnessDef, HarnessReport, Prover, SeededBug, Tier,
};
