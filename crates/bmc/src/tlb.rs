//! TLB coherence harnesses over bounded symbolic fill/evict traces.
//!
//! The model is a capacity-`C` slot array mirroring `hk_vm::tlb::Tlb`,
//! with the `HashMap`'s arbitrary eviction choice lifted into a free
//! symbolic victim per step — so a proof over the model covers every
//! eviction order the real hash map can exhibit. The page-table walk
//! is abstracted as uninterpreted functions `walk0` (before a remap)
//! and `walk1` (after), constrained to agree everywhere except the
//! remapped page. Coherence then says: after the remap's shootdown,
//! every TLB hit equals the *current* walk — walk-after-flush is
//! walk-from-scratch.

use hk_smt::{Ctx, Model, Sort, TermId};

use crate::harness::{BmcConfig, HarnessReport, Prover, SeededBug};

/// Symbolic knobs of one trace step.
pub struct TlbOp {
    /// Operation selector, Bv(2): 0 insert, 1 flush_page, 2 flush_all,
    /// 3 nop.
    pub op: TermId,
    /// Virtual page operand (insert / flush_page).
    pub arg: TermId,
    /// Eviction victim slot for a full insert, Bv(64) `< capacity`.
    pub victim: TermId,
}

/// Uninterpreted walk functions of the trace.
pub struct TlbFuncs {
    /// Frame translation before the remap.
    pub walk0_pfn: hk_smt::FuncId,
    /// Writability before the remap (Bv(1)).
    pub walk0_w: hk_smt::FuncId,
    /// Frame translation after the remap.
    pub walk1_pfn: hk_smt::FuncId,
    /// Writability after the remap (Bv(1)).
    pub walk1_w: hk_smt::FuncId,
}

/// The encoded trace with its probe observation.
pub struct TlbTrace {
    /// Modeled capacity.
    pub capacity: usize,
    /// All steps, pre-remap ops first.
    pub ops: Vec<TlbOp>,
    /// How many of `ops` run before the remap.
    pub n_pre: usize,
    /// The virtual page remapped between the phases.
    pub remap_va: TermId,
    /// Probed virtual page.
    pub probe: TermId,
    /// Probe is a write access (Bool).
    pub probe_write: TermId,
    /// Probe hits (Bool).
    pub hit: TermId,
    /// Frame returned on a hit.
    pub hit_pfn: TermId,
    /// Writability returned on a hit (Bv(1)).
    pub hit_w: TermId,
    /// `walk1` applied at the probe (frame, writability).
    pub walk_pfn_probe: TermId,
    /// See [`TlbTrace::walk_pfn_probe`].
    pub walk_w_probe: TermId,
    /// Per-slot valid bits after the whole trace.
    pub final_valid: Vec<TermId>,
    /// Constraints the model needs (victim bounds, walk agreement off
    /// the remapped page); assert via [`Prover::assume`] or satisfy
    /// when binding concretely.
    pub assumptions: Vec<TermId>,
    /// The walk functions, for concrete binding in the fuzz bridge.
    pub funcs: TlbFuncs,
}

struct Slots {
    valid: Vec<TermId>,
    vp: Vec<TermId>,
    pfn: Vec<TermId>,
    w: Vec<TermId>,
}

impl Slots {
    fn empty(ctx: &mut Ctx, capacity: usize) -> Slots {
        let f = ctx.fls();
        let z64 = ctx.bv_const(64, 0);
        let z1 = ctx.bv_const(1, 0);
        Slots {
            valid: vec![f; capacity],
            vp: vec![z64; capacity],
            pfn: vec![z64; capacity],
            w: vec![z1; capacity],
        }
    }
}

/// One step of the slot machine: insert / flush_page / flush_all / nop
/// selected by `op.op`, with insert mirroring `Tlb::insert` (evict the
/// victim when full, then update the matching slot or the first free
/// one).
fn apply_op(ctx: &mut Ctx, s: &Slots, op: &TlbOp, pfn_new: TermId, w_new: TermId) -> Slots {
    let cap = s.valid.len();
    let full = ctx.and(&s.valid);

    // Insert.
    let mut after_evict = Vec::with_capacity(cap);
    for (j, &valid) in s.valid.iter().enumerate() {
        let jc = ctx.bv_const(64, j as u64);
        let chosen = ctx.eq(op.victim, jc);
        let evict = ctx.and2(full, chosen);
        let keep = ctx.not(evict);
        after_evict.push(ctx.and2(valid, keep));
    }
    let mut matches = Vec::with_capacity(cap);
    for (j, &ae) in after_evict.iter().enumerate() {
        let same = ctx.eq(s.vp[j], op.arg);
        matches.push(ctx.and2(ae, same));
    }
    let any_match = ctx.or(&matches);
    let mut ins = Slots {
        valid: Vec::new(),
        vp: Vec::new(),
        pfn: Vec::new(),
        w: Vec::new(),
    };
    for j in 0..cap {
        let mut ff = vec![ctx.not(after_evict[j])];
        ff.extend_from_slice(&after_evict[..j]);
        let first_free = ctx.and(&ff);
        let place = ctx.ite(any_match, matches[j], first_free);
        ins.valid.push(ctx.or2(after_evict[j], place));
        ins.vp.push(ctx.ite(place, op.arg, s.vp[j]));
        ins.pfn.push(ctx.ite(place, pfn_new, s.pfn[j]));
        ins.w.push(ctx.ite(place, w_new, s.w[j]));
    }

    // flush_page / flush_all.
    let fp_valid: Vec<TermId> = (0..cap)
        .map(|j| {
            let differs = ctx.ne(s.vp[j], op.arg);
            ctx.and2(s.valid[j], differs)
        })
        .collect();
    let fls = ctx.fls();

    let c0 = ctx.bv_const(2, 0);
    let c1 = ctx.bv_const(2, 1);
    let c2 = ctx.bv_const(2, 2);
    let is_ins = ctx.eq(op.op, c0);
    let is_fp = ctx.eq(op.op, c1);
    let is_fa = ctx.eq(op.op, c2);
    let mut out = Slots {
        valid: Vec::new(),
        vp: Vec::new(),
        pfn: Vec::new(),
        w: Vec::new(),
    };
    // `j` strides five parallel slot vectors at once; a zip would bury
    // the symmetry.
    #[allow(clippy::needless_range_loop)]
    for j in 0..cap {
        let v2 = ctx.ite(is_fa, fls, s.valid[j]);
        let v1 = ctx.ite(is_fp, fp_valid[j], v2);
        out.valid.push(ctx.ite(is_ins, ins.valid[j], v1));
        out.vp.push(ctx.ite(is_ins, ins.vp[j], s.vp[j]));
        out.pfn.push(ctx.ite(is_ins, ins.pfn[j], s.pfn[j]));
        out.w.push(ctx.ite(is_ins, ins.w[j], s.w[j]));
    }
    out
}

/// Encodes a bounded trace: `n_pre` symbolic ops against `walk0`, a
/// remap of `remap_va` (with its `flush_page` shootdown unless
/// `flush_on_remap` is false — the seeded bug), `n_post` symbolic ops
/// against `walk1`, an optional forced `flush_all`, then one probe.
pub fn encode_tlb_trace(
    ctx: &mut Ctx,
    capacity: usize,
    n_pre: usize,
    n_post: usize,
    flush_on_remap: bool,
    final_flush: bool,
) -> TlbTrace {
    let walk0_pfn = ctx.func("walk0_pfn", vec![Sort::Bv(64)], Sort::Bv(64));
    let walk0_w = ctx.func("walk0_w", vec![Sort::Bv(64)], Sort::Bv(1));
    let walk1_pfn = ctx.func("walk1_pfn", vec![Sort::Bv(64)], Sort::Bv(64));
    let walk1_w = ctx.func("walk1_w", vec![Sort::Bv(64)], Sort::Bv(1));
    let remap_va = ctx.var("remap_va", Sort::Bv(64));
    let probe = ctx.var("probe", Sort::Bv(64));
    let probe_write = ctx.var("probe_write", Sort::Bool);

    let mut assumptions = Vec::new();
    let cap_c = ctx.bv_const(64, capacity as u64);
    let mut ops = Vec::new();
    let mut slots = Slots::empty(ctx, capacity);
    let mut sites = vec![probe];

    for i in 0..n_pre + n_post {
        let pre = i < n_pre;
        let tag = if pre { "pre" } else { "post" };
        let op = TlbOp {
            op: ctx.var(format!("{tag}_op{i}"), Sort::Bv(2)),
            arg: ctx.var(format!("{tag}_arg{i}"), Sort::Bv(64)),
            victim: ctx.var(format!("{tag}_victim{i}"), Sort::Bv(64)),
        };
        assumptions.push(ctx.ult(op.victim, cap_c));
        sites.push(op.arg);
        let (fp, fw) = if pre {
            (walk0_pfn, walk0_w)
        } else {
            (walk1_pfn, walk1_w)
        };
        let pfn_new = ctx.apply(fp, &[op.arg]);
        let w_new = ctx.apply(fw, &[op.arg]);
        slots = apply_op(ctx, &slots, &op, pfn_new, w_new);
        ops.push(op);

        if i + 1 == n_pre && flush_on_remap {
            // The remap's TLB shootdown (INVLPG on the remapped page).
            let shoot = TlbOp {
                op: ctx.bv_const(2, 1),
                arg: remap_va,
                victim: ctx.bv_const(64, 0),
            };
            let z64 = ctx.bv_const(64, 0);
            let z1 = ctx.bv_const(1, 0);
            slots = apply_op(ctx, &slots, &shoot, z64, z1);
        }
    }
    if final_flush {
        let fa = TlbOp {
            op: ctx.bv_const(2, 2),
            arg: ctx.bv_const(64, 0),
            victim: ctx.bv_const(64, 0),
        };
        let z64 = ctx.bv_const(64, 0);
        let z1 = ctx.bv_const(1, 0);
        slots = apply_op(ctx, &slots, &fa, z64, z1);
    }

    // The remap changed the walk only at remap_va: walk1 == walk0 on
    // every other page, stated at each ground application site.
    for t in sites {
        let differs = ctx.ne(t, remap_va);
        let p0 = ctx.apply(walk0_pfn, &[t]);
        let p1 = ctx.apply(walk1_pfn, &[t]);
        let w0 = ctx.apply(walk0_w, &[t]);
        let w1 = ctx.apply(walk1_w, &[t]);
        let pe = ctx.eq(p0, p1);
        let we = ctx.eq(w0, w1);
        let agree = ctx.and2(pe, we);
        assumptions.push(ctx.implies(differs, agree));
    }

    // Probe: a write through a read-only entry misses, as in
    // `Tlb::lookup`.
    let one1 = ctx.bv_const(1, 1);
    let mut hit = ctx.fls();
    let mut hit_pfn = ctx.bv_const(64, 0);
    let mut hit_w = ctx.bv_const(1, 0);
    for j in 0..capacity {
        let same = ctx.eq(slots.vp[j], probe);
        let w_ok = ctx.eq(slots.w[j], one1);
        let nw = ctx.not(probe_write);
        let perm = ctx.or2(nw, w_ok);
        let hj = ctx.and(&[slots.valid[j], same, perm]);
        hit = ctx.or2(hit, hj);
        hit_pfn = ctx.ite(hj, slots.pfn[j], hit_pfn);
        hit_w = ctx.ite(hj, slots.w[j], hit_w);
    }

    let walk_pfn_probe = ctx.apply(walk1_pfn, &[probe]);
    let walk_w_probe = ctx.apply(walk1_w, &[probe]);

    TlbTrace {
        capacity,
        ops,
        n_pre,
        remap_va,
        probe,
        probe_write,
        hit,
        hit_pfn,
        hit_w,
        walk_pfn_probe,
        walk_w_probe,
        final_valid: slots.valid,
        assumptions,
        funcs: TlbFuncs {
            walk0_pfn,
            walk0_w,
            walk1_pfn,
            walk1_w,
        },
    }
}

/// Concrete reference simulator with the model's explicit-victim insert
/// semantics, for the differential fuzz bridge. The real
/// `hk_vm::tlb::Tlb` is one victim policy of this machine.
#[derive(Debug, Clone)]
pub struct RefTlb {
    slots: Vec<Option<(u64, u64, bool)>>,
}

impl RefTlb {
    /// An empty TLB with `capacity` slots.
    pub fn new(capacity: usize) -> RefTlb {
        RefTlb {
            slots: vec![None; capacity],
        }
    }

    /// Lookup with the write-through-read-only-misses rule.
    pub fn lookup(&self, vp: u64, write: bool) -> Option<(u64, bool)> {
        self.slots
            .iter()
            .flatten()
            .find(|(v, _, w)| *v == vp && (!write || *w))
            .map(|&(_, pfn, w)| (pfn, w))
    }

    /// Insert, evicting slot `victim` when full.
    pub fn insert(&mut self, vp: u64, pfn: u64, w: bool, victim: usize) {
        if self.slots.iter().all(Option::is_some) {
            self.slots[victim] = None;
        }
        let target = self
            .slots
            .iter()
            .position(|s| matches!(s, Some((v, _, _)) if *v == vp))
            .or_else(|| self.slots.iter().position(Option::is_none));
        self.slots[target.expect("eviction freed a slot")] = Some((vp, pfn, w));
    }

    /// Drops any entry for `vp`.
    pub fn flush_page(&mut self, vp: u64) {
        for s in &mut self.slots {
            if matches!(s, Some((v, _, _)) if *v == vp) {
                *s = None;
            }
        }
    }

    /// Drops everything.
    pub fn flush_all(&mut self) {
        self.slots = vec![None; self.slots.len()];
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// True when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn render_trace_cex(ctx: &Ctx, model: &Model, t: &TlbTrace) -> String {
    let mut out = String::from("tlb counterexample trace:\n");
    for (i, op) in t.ops.iter().enumerate() {
        let code = model.eval_bv(ctx, op.op).unwrap_or(3);
        let arg = model.eval_bv(ctx, op.arg).unwrap_or(0);
        let victim = model.eval_bv(ctx, op.victim).unwrap_or(0);
        let name = match code {
            0 => "insert",
            1 => "flush_page",
            2 => "flush_all",
            _ => "nop",
        };
        let phase = if i < t.n_pre { "pre " } else { "post" };
        out.push_str(&format!("  [{phase}] {name}(vp={arg}) victim={victim}\n"));
    }
    let remap = model.eval_bv(ctx, t.remap_va).unwrap_or(0);
    let probe = model.eval_bv(ctx, t.probe).unwrap_or(0);
    let write = model.eval_bool(ctx, t.probe_write).unwrap_or(false);
    out.push_str(&format!(
        "  remap_va={remap}\n  probe vp={probe} write={write}\n"
    ));
    out.push_str(&format!(
        "  hit={} hit_pfn={} hit_w={} / walk_now pfn={} w={}\n",
        model.eval_bool(ctx, t.hit).unwrap_or(false),
        model.eval_bv(ctx, t.hit_pfn).unwrap_or(0),
        model.eval_bv(ctx, t.hit_w).unwrap_or(0),
        model.eval_bv(ctx, t.walk_pfn_probe).unwrap_or(0),
        model.eval_bv(ctx, t.walk_w_probe).unwrap_or(0),
    ));
    out
}

fn bounds_of(cfg: &BmcConfig) -> String {
    let (c, pre, post) = cfg.tlb_bounds();
    format!("capacity={c} pre_ops={pre} post_ops={post}")
}

/// Harness: after a remap's shootdown, every TLB hit agrees with the
/// current walk for all symbolic traces, probes, and eviction orders.
pub fn coherence(cfg: &BmcConfig) -> HarnessReport {
    let (capacity, n_pre, n_post) = cfg.tlb_bounds();
    let flush_on_remap = cfg.seeded_bug != Some(SeededBug::TlbFlushSkip);
    let mut ctx = Ctx::new();
    let t = encode_tlb_trace(&mut ctx, capacity, n_pre, n_post, flush_on_remap, false);
    let pfn_ok = ctx.eq(t.hit_pfn, t.walk_pfn_probe);
    let w_ok = ctx.eq(t.hit_w, t.walk_w_probe);
    let agree = ctx.and2(pfn_ok, w_ok);
    let prop = ctx.implies(t.hit, agree);

    let mut prover = Prover::new(ctx, cfg);
    for &a in &t.assumptions {
        prover.assume(a);
    }
    prover.prove(prop, |ctx, model| render_trace_cex(ctx, model, &t));
    prover.finish("tlb_coherence", "tlb", bounds_of(cfg))
}

/// Harness: a final `flush_all` empties the TLB — no probe can hit, so
/// the next access walks from scratch.
pub fn flush_from_scratch(cfg: &BmcConfig) -> HarnessReport {
    let (capacity, n_pre, n_post) = cfg.tlb_bounds();
    let mut ctx = Ctx::new();
    let t = encode_tlb_trace(&mut ctx, capacity, n_pre, n_post, true, true);
    let no_hit = ctx.not(t.hit);
    let mut claims = vec![no_hit];
    for &v in &t.final_valid {
        claims.push(ctx.not(v));
    }
    let prop = ctx.and(&claims);

    let mut prover = Prover::new(ctx, cfg);
    for &a in &t.assumptions {
        prover.assume(a);
    }
    prover.prove(prop, |ctx, model| render_trace_cex(ctx, model, &t));
    prover.finish("tlb_flush_from_scratch", "tlb", bounds_of(cfg))
}
