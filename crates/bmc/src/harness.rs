//! Harness registry, bound knobs, budgets, and the certified prover.
//!
//! A harness is a named bounded proof obligation over one of the
//! substrate models. Each harness builds its symbolic model at the
//! bounds of the configured [`Tier`], discharges the property through
//! one incremental [`hk_smt::Solver`] (negation asserted in a scope,
//! `Unsat` expected), and reports per-harness solver statistics. With
//! [`BmcConfig::certify`] every `Unsat` is re-derived by the
//! independent DRAT checker, exactly as for the syscall handlers.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hk_abi::KernelParams;
use hk_smt::{CoreBudget, Ctx, Model, SatResult, Solver, SolverConfig, TermId};

/// Bound tier: how big the symbolic state is allowed to get.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// CI-sized bounds: seconds per harness.
    Fast,
    /// Nightly bounds: the full verification-profile table sizes.
    Deep,
}

impl Tier {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Fast => "fast",
            Tier::Deep => "deep",
        }
    }
}

/// A seeded bug for the negative-fixture tests: each variant plants one
/// classic defect in the corresponding symbolic model, and its harness
/// must produce a concrete counterexample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeededBug {
    /// The page walker extracts the level index with a shift that is one
    /// level too low (conflates the word offset with the level-0 index).
    PagingLevelOffByOne,
    /// The TLB shootdown after a remap skips the `flush_page`, leaving a
    /// stale translation cached.
    TlbFlushSkip,
    /// The IOMMU walk drops the DMA-region confinement check, silently
    /// widening the device grant set to RAM pages.
    IommuGrantWiden,
    /// The journal writes its commit header before the log payload
    /// sectors, so a crash between the two replays garbage.
    JournalHeaderFirst,
}

/// Configuration of one BMC run.
#[derive(Debug, Clone)]
pub struct BmcConfig {
    /// Bound tier.
    pub tier: Tier,
    /// Re-check every Unsat with the independent proof checker.
    pub certify: bool,
    /// Per-query conflict budget (`None`: run to completion).
    pub max_conflicts: Option<u64>,
    /// Per-query wall-clock budget in milliseconds.
    pub max_solve_ms: Option<u64>,
    /// Worker threads available to the intra-query portfolio (1
    /// disables racing; verdicts are deterministic either way).
    pub threads: usize,
    /// Plant one seeded bug (negative-fixture tests only).
    pub seeded_bug: Option<SeededBug>,
    /// Restrict the run to harnesses with these exact names.
    pub only: Option<Vec<String>>,
}

impl Default for BmcConfig {
    fn default() -> Self {
        BmcConfig {
            tier: Tier::Fast,
            certify: true,
            max_conflicts: Some(10_000_000),
            max_solve_ms: Some(600_000),
            threads: 1,
            seeded_bug: None,
            only: None,
        }
    }
}

impl BmcConfig {
    /// Kernel parameters for the paging/IOMMU models at this tier.
    ///
    /// The deep tier is exactly the verification profile; the fast tier
    /// shrinks the page counts (but not the walk depth or entry width),
    /// which is what keeps CI in seconds while nightly proves the full
    /// small-model sizes.
    pub fn params(&self) -> KernelParams {
        let mut p = KernelParams::verification();
        if self.tier == Tier::Fast {
            p.nr_pages = 4;
            p.nr_dmapages = 2;
            p.nr_devs = 2;
        }
        p
    }

    /// TLB model bounds `(capacity, pre_ops, post_ops)`.
    pub fn tlb_bounds(&self) -> (usize, usize, usize) {
        match self.tier {
            Tier::Fast => (2, 2, 1),
            Tier::Deep => (3, 3, 2),
        }
    }

    /// fs-log model bounds `(sector_words, nsectors, log_capacity)`.
    pub fn fs_bounds(&self) -> (u64, u64, u64) {
        match self.tier {
            Tier::Fast => (3, 6, 2),
            Tier::Deep => (4, 12, 3),
        }
    }
}

/// Verdict of one harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BmcOutcome {
    /// Every property query answered Unsat: the bound is proved.
    Proved,
    /// Some property query answered Sat; the payload is the rendered
    /// concrete counterexample (page table, trace, or disk state).
    Counterexample(String),
    /// A query exhausted its budget.
    Unknown,
}

impl BmcOutcome {
    /// Short verdict mnemonic for logs and JSON.
    pub fn verdict(&self) -> &'static str {
        match self {
            BmcOutcome::Proved => "proved",
            BmcOutcome::Counterexample(_) => "CEX",
            BmcOutcome::Unknown => "UNKNOWN",
        }
    }
}

/// Result of running one harness.
#[derive(Debug, Clone)]
pub struct HarnessReport {
    /// Harness name (stable identifier; `--only` matches it).
    pub name: &'static str,
    /// Harness family: `paging`, `tlb`, `iommu`, or `fslog`.
    pub family: &'static str,
    /// Human-readable bound description (knob values).
    pub bounds: String,
    /// The verdict.
    pub outcome: BmcOutcome,
    /// Property queries issued.
    pub queries: u64,
    /// CNF clauses encoded across the harness's queries.
    pub cnf_clauses: usize,
    /// CDCL conflicts across the queries.
    pub conflicts: u64,
    /// Term-to-CNF encoding time.
    pub encode_time: Duration,
    /// CDCL search time.
    pub solve_time: Duration,
    /// Whole-harness wall clock (model build + solving).
    pub time: Duration,
    /// Queries answered Unsat.
    pub unsat_queries: u64,
    /// Unsat answers confirmed by the independent proof checker.
    pub certified_unsat: u64,
    /// DRAT steps logged across the harness.
    pub proof_steps: u64,
}

/// An incremental solver session accumulating per-harness statistics.
///
/// One `Prover` per harness: base model constraints are asserted once
/// with [`Prover::assume`], then each property is discharged in its own
/// scope by [`Prover::prove`] (assert the negation, expect Unsat), so
/// consecutive properties of one model reuse the encoding and learnt
/// clauses of the previous ones.
pub struct Prover {
    /// The term context the model was built in.
    pub ctx: Ctx,
    solver: Solver,
    start: Instant,
    queries: u64,
    cnf_clauses: usize,
    conflicts: u64,
    encode_time: Duration,
    solve_time: Duration,
    unsat_queries: u64,
    certified_unsat: u64,
    proof_steps: u64,
    outcome: BmcOutcome,
}

impl Prover {
    /// A fresh session under the run configuration's solver knobs.
    pub fn new(ctx: Ctx, cfg: &BmcConfig) -> Prover {
        let mut sc = SolverConfig {
            certify: cfg.certify,
            cache: None,
            ..SolverConfig::default()
        };
        sc.sat.max_conflicts = cfg.max_conflicts;
        sc.sat.max_solve_ms = cfg.max_solve_ms;
        if cfg.threads > 1 {
            sc.parallel.workers = cfg.threads;
            sc.parallel.budget = Some(Arc::new(CoreBudget::new(cfg.threads - 1)));
        } else {
            sc.parallel.budget = None;
        }
        Prover {
            ctx,
            solver: Solver::with_config(sc),
            start: Instant::now(),
            queries: 0,
            cnf_clauses: 0,
            conflicts: 0,
            encode_time: Duration::ZERO,
            solve_time: Duration::ZERO,
            unsat_queries: 0,
            certified_unsat: 0,
            proof_steps: 0,
            outcome: BmcOutcome::Proved,
        }
    }

    /// Asserts a model constraint (holds for every subsequent property).
    pub fn assume(&mut self, t: TermId) {
        self.solver.assert(&mut self.ctx, t);
    }

    /// Discharges one property: asserts its negation in a scope and
    /// expects Unsat. On Sat, `render` turns the model into a concrete
    /// counterexample; the first counterexample (or Unknown) sticks.
    pub fn prove(&mut self, prop: TermId, render: impl FnOnce(&Ctx, &Model) -> String) {
        self.prove_under(&[], prop, render);
    }

    /// Like [`Prover::prove`], with extra scope-local assumptions (used
    /// when one session checks several differently-constrained
    /// instances of a model).
    pub fn prove_under(
        &mut self,
        assumptions: &[TermId],
        prop: TermId,
        render: impl FnOnce(&Ctx, &Model) -> String,
    ) {
        if matches!(self.outcome, BmcOutcome::Counterexample(_)) {
            return;
        }
        let neg = self.ctx.not(prop);
        self.solver.push();
        for &a in assumptions {
            self.solver.assert(&mut self.ctx, a);
        }
        self.solver.assert(&mut self.ctx, neg);
        let result = self.solver.check(&mut self.ctx);
        let st = &self.solver.stats;
        self.queries += 1;
        self.cnf_clauses += st.cnf_clauses;
        self.conflicts += st.conflicts;
        self.encode_time += st.encode_time;
        self.solve_time += st.solve_time;
        self.unsat_queries += st.unsat_queries;
        self.certified_unsat += st.certified_unsat;
        self.proof_steps += st.proof_steps;
        self.solver.pop();
        match result {
            SatResult::Unsat | SatResult::StaticallyDischarged => {}
            SatResult::Sat(model) => {
                self.outcome = BmcOutcome::Counterexample(render(&self.ctx, &model));
            }
            SatResult::Unknown => self.outcome = BmcOutcome::Unknown,
        }
    }

    /// Finalizes the session into a report.
    pub fn finish(self, name: &'static str, family: &'static str, bounds: String) -> HarnessReport {
        HarnessReport {
            name,
            family,
            bounds,
            outcome: self.outcome,
            queries: self.queries,
            cnf_clauses: self.cnf_clauses,
            conflicts: self.conflicts,
            encode_time: self.encode_time,
            solve_time: self.solve_time,
            time: self.start.elapsed(),
            unsat_queries: self.unsat_queries,
            certified_unsat: self.certified_unsat,
            proof_steps: self.proof_steps,
        }
    }
}

/// One registered harness.
pub struct HarnessDef {
    /// Stable name.
    pub name: &'static str,
    /// Family: `paging`, `tlb`, `iommu`, `fslog`.
    pub family: &'static str,
    /// One-line property statement.
    pub describes: &'static str,
    /// Entry point.
    pub run: fn(&BmcConfig) -> HarnessReport,
}

/// The full harness registry, in run order.
pub fn harnesses() -> Vec<HarnessDef> {
    vec![
        HarnessDef {
            name: "paging_walk_agrees_spec",
            family: "paging",
            describes: "hardware walk equals the clean-room spec on all symbolic tables",
            run: crate::paging::walk_agrees_spec,
        },
        HarnessDef {
            name: "paging_perm_monotonic",
            family: "paging",
            describes: "write permission implies read permission with the same translation",
            run: crate::paging::perm_monotonic,
        },
        HarnessDef {
            name: "paging_no_overflow",
            family: "paging",
            describes: "walk address arithmetic never wraps and stays in its region",
            run: crate::paging::no_overflow,
        },
        HarnessDef {
            name: "paging_split_join_roundtrip",
            family: "paging",
            describes: "split_va/join_va invert each other on the canonical range",
            run: crate::paging::split_join_roundtrip,
        },
        HarnessDef {
            name: "tlb_coherence",
            family: "tlb",
            describes: "every TLB hit equals the current page-table walk, across a remap",
            run: crate::tlb::coherence,
        },
        HarnessDef {
            name: "tlb_flush_from_scratch",
            family: "tlb",
            describes: "after flush_all no lookup hits: walk-after-flush is walk-from-scratch",
            run: crate::tlb::flush_from_scratch,
        },
        HarnessDef {
            name: "iommu_dma_confinement",
            family: "iommu",
            describes: "device translations resolve only inside the DMA region",
            run: crate::iommu::dma_confinement,
        },
        HarnessDef {
            name: "iommu_grant_set",
            family: "iommu",
            describes: "resolved frames appear in some present device-table entry",
            run: crate::iommu::grant_set,
        },
        HarnessDef {
            name: "fslog_crash_atomicity",
            family: "fslog",
            describes: "recovery after any crash point yields pre- or post-commit data, never torn",
            run: crate::fslog::crash_atomicity,
        },
        HarnessDef {
            name: "fslog_recovery_idempotent",
            family: "fslog",
            describes: "running recovery twice equals running it once",
            run: crate::fslog::recovery_idempotent,
        },
    ]
}

/// Runs every harness selected by the configuration, in registry order.
pub fn run_all(cfg: &BmcConfig) -> Vec<HarnessReport> {
    harnesses()
        .into_iter()
        .filter(|h| match &cfg.only {
            Some(names) => names.iter().any(|n| n == h.name),
            None => true,
        })
        .map(|h| (h.run)(cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_unique_and_families_complete() {
        let hs = harnesses();
        let mut names: Vec<&str> = hs.iter().map(|h| h.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), hs.len());
        for fam in ["paging", "tlb", "iommu", "fslog"] {
            assert!(hs.iter().any(|h| h.family == fam), "missing family {fam}");
        }
    }

    #[test]
    fn only_filter_selects() {
        let cfg = BmcConfig {
            only: Some(vec!["paging_split_join_roundtrip".into()]),
            ..BmcConfig::default()
        };
        let reports = run_all(&cfg);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].name, "paging_split_join_roundtrip");
        assert_eq!(reports[0].outcome, BmcOutcome::Proved);
    }
}
