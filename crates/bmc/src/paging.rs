//! Page-walker harnesses: spec agreement, permission monotonicity,
//! overflow freedom, and the split/join round trip.
//!
//! The clean-room spec here is deliberately written with different
//! machinery than the walker model in [`crate::model`]: bit-field
//! `extract`s instead of shift-and-mask, a flat memory read instead of
//! the nested page/word selection, and root-first `ite` nesting instead
//! of a fault accumulator. Agreement between the two circuits (and,
//! via the fuzz bridge, with the real `hk_vm::paging::walk`) is the
//! paging tentpole property.

use hk_abi::{KernelParams, PT_LEVELS};
use hk_smt::{BvBinOp, Ctx, Model, Sort, TermId};
use hk_vm::MemoryMap;

use crate::harness::{BmcConfig, HarnessReport, Prover};
use crate::model::{
    encode_walk, fault_name, render_tables, SymMem, WalkFlavor, FAULT_BAD_FRAME,
    FAULT_NON_CANONICAL, FAULT_NOT_PRESENT, FAULT_NOT_USER, FAULT_NOT_WRITABLE,
};

/// Kernel-region words used by every BMC memory map. The value is
/// arbitrary (it only offsets the region bases); 64 matches the vm unit
/// tests.
pub const KERNEL_WORDS: u64 = 64;

/// Outputs of the clean-room spec walk circuit.
pub struct SpecWalk {
    /// Translation succeeded.
    pub ok: TermId,
    /// Leaf frame number.
    pub pfn: TermId,
    /// Translated physical word address.
    pub phys_addr: TermId,
    /// Leaf grants writes (Bool).
    pub writable: TermId,
    /// First fault code, Bv(4).
    pub fault_code: TermId,
    /// First fault level, Bv(4).
    pub fault_level: TermId,
}

/// Encodes the clean-room executable spec of the 4-level walk.
pub fn encode_spec_walk(
    ctx: &mut Ctx,
    mem: &SymMem,
    map: &MemoryMap,
    root_pn: TermId,
    va: TermId,
    is_write: TermId,
) -> SpecWalk {
    let params = &map.params;
    let k = params.page_words.trailing_zeros();
    let total_bits = k * (PT_LEVELS as u32 + 1);
    let nr_pages = ctx.bv_const(64, params.nr_pages);
    let nr_pfns = ctx.bv_const(64, params.nr_pfns());
    let zero_bit = |ctx: &mut Ctx, t: TermId, bit: u32| {
        let b = ctx.extract(t, bit, bit);
        let z = ctx.bv_const(1, 0);
        ctx.eq(b, z)
    };

    // Bit-field decomposition of the VA.
    let noncanon = if total_bits < 64 {
        let hi = ctx.extract(va, 63, total_bits);
        let z = ctx.bv_const(64 - total_bits, 0);
        ctx.ne(hi, z)
    } else {
        ctx.fls()
    };
    let off_bits = ctx.extract(va, k - 1, 0);
    let offset = ctx.zext(off_bits, 64);

    // Walk the levels root-first, collecting per-level predicates.
    struct Level {
        table_ok: TermId,
        present: TermId,
        user: TermId,
        frame_ok: TermId,
        entry: TermId,
        level: u64,
    }
    let mut levels: Vec<Level> = Vec::new();
    let mut pn = root_pn;
    for i in 0..PT_LEVELS as u32 {
        let level = PT_LEVELS as u32 - 1 - i;
        let idx_bits = ctx.extract(va, k * (level + 2) - 1, k * (level + 1));
        let ix = ctx.zext(idx_bits, 64);
        let table_ok = ctx.ult(pn, nr_pages);
        let entry = mem.read_flat(ctx, pn, ix);
        let np = zero_bit(ctx, entry, 0);
        let present = ctx.not(np);
        let nu = zero_bit(ctx, entry, 2);
        let user = ctx.not(nu);
        let pfn_bits = ctx.extract(entry, 63, 12);
        let pfn = ctx.sext(pfn_bits, 64);
        let frame_ok = ctx.ult(pfn, nr_pfns);
        levels.push(Level {
            table_ok,
            present,
            user,
            frame_ok,
            entry,
            level: level as u64,
        });
        pn = pfn;
    }
    let leaf_entry = levels.last().unwrap().entry;
    let nw = zero_bit(ctx, leaf_entry, 1);
    let writable = ctx.not(nw);

    // Fault selection, innermost (leaf write check) outward to the
    // root, then the canonicality check on the very outside.
    let mut ok = {
        let nw_denied = ctx.and2(is_write, nw);
        ctx.not(nw_denied)
    };
    let mut code = ctx.bv_const(4, FAULT_NOT_WRITABLE);
    let mut level_t = ctx.bv_const(4, 0);
    for l in levels.iter().rev() {
        let lvl_ok = ctx.and(&[l.table_ok, l.present, l.user, l.frame_ok]);
        let bad = ctx.bv_const(4, FAULT_BAD_FRAME);
        let np = ctx.bv_const(4, FAULT_NOT_PRESENT);
        let nu = ctx.bv_const(4, FAULT_NOT_USER);
        let c1 = ctx.ite(l.user, bad, nu);
        let c2 = ctx.ite(l.present, c1, np);
        let lvl_code = ctx.ite(l.table_ok, c2, bad);
        let lc = ctx.bv_const(4, l.level);
        code = ctx.ite(lvl_ok, code, lvl_code);
        level_t = ctx.ite(lvl_ok, level_t, lc);
        ok = ctx.and2(lvl_ok, ok);
    }
    let ncc = ctx.bv_const(4, FAULT_NON_CANONICAL);
    let ncl = ctx.bv_const(4, PT_LEVELS - 1);
    code = ctx.ite(noncanon, ncc, code);
    level_t = ctx.ite(noncanon, ncl, level_t);
    let canon = ctx.not(noncanon);
    ok = ctx.and2(canon, ok);

    // Address join: page base Or'd with the (disjoint) word offset.
    let kc = ctx.bv_const(64, k as u64);
    let in_ram = ctx.ult(pn, nr_pages);
    let pages_base = ctx.bv_const(64, map.pages_base());
    let dma_base = ctx.bv_const(64, map.dma_base());
    let ram_off = ctx.bv_bin(BvBinOp::Shl, pn, kc);
    let ram_base = ctx.bv_add(pages_base, ram_off);
    let dpfn = ctx.bv_sub(pn, nr_pages);
    let dma_off = ctx.bv_bin(BvBinOp::Shl, dpfn, kc);
    let dma_addr = ctx.bv_add(dma_base, dma_off);
    let page_addr = ctx.ite(in_ram, ram_base, dma_addr);
    let phys_addr = ctx.bv_bin(BvBinOp::Or, page_addr, offset);

    SpecWalk {
        ok,
        pfn: pn,
        phys_addr,
        writable,
        fault_code: code,
        fault_level: level_t,
    }
}

/// Concrete clean-room walk for the differential fuzz bridge: a third
/// implementation (after `hk_vm::paging::walk` and the two circuits)
/// using division/modulo arithmetic over a plain word slice.
///
/// `ram` is the RAM-page region only (`nr_pages * page_words` words);
/// `kernel_words` fixes the region bases. Returns
/// `Ok((pfn, phys_addr, writable))` or `Err((fault_code, level))` in
/// the [`crate::model`] fault-code convention.
pub fn spec_walk(
    params: &KernelParams,
    kernel_words: u64,
    ram: &[i64],
    root_pn: u64,
    va: u64,
    write: bool,
) -> Result<(u64, u64, bool), (u64, u64)> {
    let pw = params.page_words;
    let levels = PT_LEVELS;
    let va_limit = pw.checked_pow(levels as u32 + 1).expect("va space fits");
    if va >= va_limit {
        return Err((FAULT_NON_CANONICAL, levels - 1));
    }
    let pages_base = kernel_words;
    let dma_base = pages_base + params.nr_pages * pw;
    let mut pn = root_pn;
    let mut entry = 0i64;
    for i in 0..levels {
        let level = levels - 1 - i;
        if pn >= params.nr_pages {
            return Err((FAULT_BAD_FRAME, level));
        }
        let ix = (va / pw.pow(level as u32 + 1)) % pw;
        entry = ram[(pn * pw + ix) as usize];
        if entry.rem_euclid(2) == 0 {
            return Err((FAULT_NOT_PRESENT, level));
        }
        if entry.div_euclid(4).rem_euclid(2) == 0 {
            return Err((FAULT_NOT_USER, level));
        }
        let pfn = entry.div_euclid(4096);
        if pfn < 0 || pfn as u64 >= params.nr_pfns() {
            return Err((FAULT_BAD_FRAME, level));
        }
        pn = pfn as u64;
    }
    let writable = entry.div_euclid(2).rem_euclid(2) != 0;
    if write && !writable {
        return Err((FAULT_NOT_WRITABLE, 0));
    }
    let page_addr = if pn < params.nr_pages {
        pages_base + pn * pw
    } else {
        dma_base + (pn - params.nr_pages) * pw
    };
    Ok((pn, page_addr + va % pw, writable))
}

struct WalkSetup {
    mem: SymMem,
    map: MemoryMap,
    root: TermId,
    va: TermId,
}

fn setup(ctx: &mut Ctx, cfg: &BmcConfig) -> WalkSetup {
    let params = cfg.params();
    let map = MemoryMap::new(params, KERNEL_WORDS);
    let mem = SymMem::new(ctx, &params);
    let root = ctx.var("root_pn", Sort::Bv(64));
    let va = ctx.var("va", Sort::Bv(64));
    WalkSetup { mem, map, root, va }
}

fn bounds_of(params: &KernelParams) -> String {
    format!(
        "nr_pages={} page_words={} nr_dmapages={}",
        params.nr_pages, params.page_words, params.nr_dmapages
    )
}

fn render_walk_cex(
    ctx: &Ctx,
    model: &Model,
    mem: &SymMem,
    root: TermId,
    va: TermId,
    detail: &str,
) -> String {
    let r = model.eval_bv(ctx, root).unwrap_or(0);
    let v = model.eval_bv(ctx, va).unwrap_or(0);
    format!(
        "paging counterexample: root_pn={r} va={v:#x}\n{detail}\nconcrete page tables:\n{}",
        render_tables(ctx, model, mem)
    )
}

fn render_outcome(ctx: &Ctx, model: &Model, ok: TermId, code: TermId, level: TermId) -> String {
    if model.eval_bool(ctx, ok).unwrap_or(false) {
        "ok".to_string()
    } else {
        let c = model.eval_bv(ctx, code).unwrap_or(15);
        let l = model.eval_bv(ctx, level).unwrap_or(15);
        format!("fault {} at level {l}", fault_name(c))
    }
}

/// Harness: the walker model and the clean-room spec agree on verdict,
/// translation, and fault classification for every bounded table state.
pub fn walk_agrees_spec(cfg: &BmcConfig) -> HarnessReport {
    let mut ctx = Ctx::new();
    let s = setup(&mut ctx, cfg);
    let is_write = ctx.var("is_write", Sort::Bool);
    let w = encode_walk(
        &mut ctx,
        &s.mem,
        &s.map,
        s.root,
        s.va,
        is_write,
        WalkFlavor::Cpu,
        None,
        cfg.seeded_bug,
    );
    let spec = encode_spec_walk(&mut ctx, &s.mem, &s.map, s.root, s.va, is_write);

    let same_ok = ctx.eq(w.ok, spec.ok);
    let same_pfn = ctx.eq(w.pfn, spec.pfn);
    let same_addr = ctx.eq(w.phys_addr, spec.phys_addr);
    let same_w = ctx.eq(w.writable, spec.writable);
    let ok_agree = ctx.and(&[same_pfn, same_addr, same_w]);
    let when_ok = ctx.implies(w.ok, ok_agree);
    let same_code = ctx.eq(w.fault_code, spec.fault_code);
    let same_level = ctx.eq(w.fault_level, spec.fault_level);
    let fault_agree = ctx.and2(same_code, same_level);
    let not_ok = ctx.not(w.ok);
    let when_fault = ctx.implies(not_ok, fault_agree);
    let prop = ctx.and(&[same_ok, when_ok, when_fault]);

    let mut prover = Prover::new(ctx, cfg);
    let (mem, root, va) = (&s.mem, s.root, s.va);
    prover.prove(prop, |ctx, model| {
        let detail = format!(
            "write={} walker: {} / spec: {}",
            model.eval_bool(ctx, is_write).unwrap_or(false),
            render_outcome(ctx, model, w.ok, w.fault_code, w.fault_level),
            render_outcome(ctx, model, spec.ok, spec.fault_code, spec.fault_level),
        );
        render_walk_cex(ctx, model, mem, root, va, &detail)
    });
    prover.finish(
        "paging_walk_agrees_spec",
        "paging",
        bounds_of(&cfg.params()),
    )
}

/// Harness: permissions compose monotonically — a successful write walk
/// implies a successful read walk with the identical translation, and a
/// writable read walk implies the write walk succeeds.
pub fn perm_monotonic(cfg: &BmcConfig) -> HarnessReport {
    let mut ctx = Ctx::new();
    let s = setup(&mut ctx, cfg);
    let t = ctx.tru();
    let f = ctx.fls();
    let ww = encode_walk(
        &mut ctx,
        &s.mem,
        &s.map,
        s.root,
        s.va,
        t,
        WalkFlavor::Cpu,
        None,
        cfg.seeded_bug,
    );
    let wr = encode_walk(
        &mut ctx,
        &s.mem,
        &s.map,
        s.root,
        s.va,
        f,
        WalkFlavor::Cpu,
        None,
        cfg.seeded_bug,
    );

    let same_pfn = ctx.eq(ww.pfn, wr.pfn);
    let same_addr = ctx.eq(ww.phys_addr, wr.phys_addr);
    let strong = ctx.and(&[wr.ok, same_pfn, same_addr, ww.writable, wr.writable]);
    let write_implies_read = ctx.implies(ww.ok, strong);
    let writable_read = ctx.and2(wr.ok, wr.writable);
    let read_implies_write = ctx.implies(writable_read, ww.ok);
    let prop = ctx.and2(write_implies_read, read_implies_write);

    let mut prover = Prover::new(ctx, cfg);
    let (mem, root, va) = (&s.mem, s.root, s.va);
    prover.prove(prop, |ctx, model| {
        let detail = format!(
            "write walk: {} / read walk: {}",
            render_outcome(ctx, model, ww.ok, ww.fault_code, ww.fault_level),
            render_outcome(ctx, model, wr.ok, wr.fault_code, wr.fault_level),
        );
        render_walk_cex(ctx, model, mem, root, va, &detail)
    });
    prover.finish("paging_perm_monotonic", "paging", bounds_of(&cfg.params()))
}

/// Harness: every address the walk computes — each level's entry
/// address and the final translation — equals its 66-bit recomputation
/// (no wrap) and stays inside its region.
pub fn no_overflow(cfg: &BmcConfig) -> HarnessReport {
    let mut ctx = Ctx::new();
    let s = setup(&mut ctx, cfg);
    let is_write = ctx.var("is_write", Sort::Bool);
    let w = encode_walk(
        &mut ctx,
        &s.mem,
        &s.map,
        s.root,
        s.va,
        is_write,
        WalkFlavor::Cpu,
        None,
        cfg.seeded_bug,
    );

    let pages_base = ctx.bv_const(64, s.map.pages_base());
    let dma_base = ctx.bv_const(64, s.map.dma_base());
    let total = ctx.bv_const(64, s.map.total_words());
    let mut claims = Vec::new();
    for l in &w.levels {
        let no_wrap = ctx.not(l.entry_addr_ovf);
        let lo = ctx.ule(pages_base, l.entry_addr);
        let hi = ctx.ult(l.entry_addr, dma_base);
        let in_region = ctx.and(&[no_wrap, lo, hi]);
        claims.push(ctx.implies(l.reached, in_region));
    }
    let no_wrap = ctx.not(w.phys_addr_ovf);
    let lo = ctx.ule(pages_base, w.phys_addr);
    let hi = ctx.ult(w.phys_addr, total);
    let final_in = ctx.and(&[no_wrap, lo, hi]);
    claims.push(ctx.implies(w.ok, final_in));
    let prop = ctx.and(&claims);

    let mut prover = Prover::new(ctx, cfg);
    let (mem, root, va) = (&s.mem, s.root, s.va);
    prover.prove(prop, |ctx, model| {
        let detail = format!(
            "walk: {}",
            render_outcome(ctx, model, w.ok, w.fault_code, w.fault_level)
        );
        render_walk_cex(ctx, model, mem, root, va, &detail)
    });
    prover.finish("paging_no_overflow", "paging", bounds_of(&cfg.params()))
}

/// Harness: `split_va`/`join_va` invert each other — join-after-split
/// is the identity on canonical addresses, and split-after-join
/// recovers in-range indices and offset exactly.
pub fn split_join_roundtrip(cfg: &BmcConfig) -> HarnessReport {
    let params = cfg.params();
    let k = params.page_words.trailing_zeros();
    let mask = params.page_words - 1;
    let mut ctx = Ctx::new();

    // Direction 1: canonical va => join(split(va)) == va.
    let va = ctx.var("va", Sort::Bv(64));
    let total_bits = k * (PT_LEVELS as u32 + 1);
    let hi = ctx.extract(va, 63, total_bits);
    let zhi = ctx.bv_const(64 - total_bits, 0);
    let canon = ctx.eq(hi, zhi);
    let mask_c = ctx.bv_const(64, mask);
    let mut rejoin = ctx.bv_bin(BvBinOp::And, va, mask_c);
    for level in 0..PT_LEVELS {
        let sc = ctx.bv_const(64, k as u64 * (level + 1));
        let sh = ctx.bv_bin(BvBinOp::Lshr, va, sc);
        let ix = ctx.bv_bin(BvBinOp::And, sh, mask_c);
        let back = ctx.bv_bin(BvBinOp::Shl, ix, sc);
        rejoin = ctx.bv_bin(BvBinOp::Or, rejoin, back);
    }
    let same = ctx.eq(rejoin, va);
    let dir1 = ctx.implies(canon, same);

    // Direction 2: in-range parts => split(join(parts)) == parts, and
    // the joined address is canonical.
    let pw = ctx.bv_const(64, params.page_words);
    let off = ctx.var("off", Sort::Bv(64));
    let mut parts = vec![off];
    let mut in_range = vec![ctx.ult(off, pw)];
    let mut joined = off;
    for level in 0..PT_LEVELS {
        let ix = ctx.var(format!("ix{level}"), Sort::Bv(64));
        parts.push(ix);
        in_range.push(ctx.ult(ix, pw));
        let sc = ctx.bv_const(64, k as u64 * (level + 1));
        let back = ctx.bv_bin(BvBinOp::Shl, ix, sc);
        joined = ctx.bv_bin(BvBinOp::Or, joined, back);
    }
    let mut recovered = vec![ctx.bv_bin(BvBinOp::And, joined, mask_c)];
    for level in 0..PT_LEVELS {
        let sc = ctx.bv_const(64, k as u64 * (level + 1));
        let sh = ctx.bv_bin(BvBinOp::Lshr, joined, sc);
        recovered.push(ctx.bv_bin(BvBinOp::And, sh, mask_c));
    }
    let hi2 = ctx.extract(joined, 63, total_bits);
    let mut claims = vec![ctx.eq(hi2, zhi)];
    for (p, r) in parts.iter().zip(recovered.iter()) {
        claims.push(ctx.eq(*p, *r));
    }
    let all = ctx.and(&claims);
    let pre = ctx.and(&in_range);
    let dir2 = ctx.implies(pre, all);
    let prop = ctx.and2(dir1, dir2);

    let mut prover = Prover::new(ctx, cfg);
    prover.prove(prop, |ctx, model| {
        format!(
            "split/join mismatch: va={:#x} joined={:#x}",
            model.eval_bv(ctx, va).unwrap_or(0),
            model.eval_bv(ctx, joined).unwrap_or(0),
        )
    });
    prover.finish("paging_split_join_roundtrip", "paging", bounds_of(&params))
}
