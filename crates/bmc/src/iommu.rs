//! IOMMU/DMA harnesses: device translations are confined to the DMA
//! region and always come from the symbolic device-table grant set.
//!
//! The model wraps the shared walker ([`crate::model::encode_walk`],
//! IOMMU flavor: no user-bit check, `NoRoot` before everything,
//! `OutsideDmaRegion` at the leaf) with a symbolic device table: one
//! `(root_set, root_pn)` pair per device, selected by a symbolic
//! device id.

use hk_smt::{BvBinOp, Ctx, Model, Sort, TermId};
use hk_vm::iommu::DmaFault;
use hk_vm::MemoryMap;

use crate::harness::{BmcConfig, HarnessReport, Prover};
use crate::model::{
    encode_walk, fault_name, render_tables, SymMem, WalkFlavor, WalkModel, FAULT_BAD_FRAME,
    FAULT_NON_CANONICAL, FAULT_NOT_PRESENT, FAULT_NOT_WRITABLE, FAULT_NO_ROOT, FAULT_OUTSIDE_DMA,
};
use crate::paging::KERNEL_WORDS;

/// The symbolic IOMMU instance.
pub struct IommuModel {
    /// RAM holding the device page tables.
    pub mem: SymMem,
    /// Region geometry.
    pub map: MemoryMap,
    /// Symbolic device id (assumed `< nr_devs`).
    pub dev: TermId,
    /// Per-device "root programmed" bit.
    pub root_set: Vec<TermId>,
    /// Per-device root page number.
    pub root_pn: Vec<TermId>,
    /// Symbolic device address.
    pub dva: TermId,
    /// Write access (Bool).
    pub is_write: TermId,
    /// The encoded walk.
    pub walk: WalkModel,
    /// Constraints to assume (device id in range).
    pub assumptions: Vec<TermId>,
}

/// Encodes the IOMMU walk for a symbolic device over symbolic tables.
pub fn encode_iommu(ctx: &mut Ctx, cfg: &BmcConfig) -> IommuModel {
    let params = cfg.params();
    let map = MemoryMap::new(params, KERNEL_WORDS);
    let mem = SymMem::new(ctx, &params);
    let dev = ctx.var("dev", Sort::Bv(64));
    let dva = ctx.var("dva", Sort::Bv(64));
    let is_write = ctx.var("dma_write", Sort::Bool);

    let mut root_set = Vec::new();
    let mut root_pn = Vec::new();
    for d in 0..params.nr_devs {
        root_set.push(ctx.var(format!("root_set{d}"), Sort::Bool));
        root_pn.push(ctx.var(format!("root_pn{d}"), Sort::Bv(64)));
    }
    let mut sel_set = ctx.fls();
    let mut sel_pn = ctx.bv_const(64, 0);
    for d in (0..params.nr_devs as usize).rev() {
        let dc = ctx.bv_const(64, d as u64);
        let here = ctx.eq(dev, dc);
        sel_set = ctx.ite(here, root_set[d], sel_set);
        sel_pn = ctx.ite(here, root_pn[d], sel_pn);
    }
    let no_root = ctx.not(sel_set);

    let walk = encode_walk(
        ctx,
        &mem,
        &map,
        sel_pn,
        dva,
        is_write,
        WalkFlavor::Iommu,
        Some(no_root),
        cfg.seeded_bug,
    );

    let nr_devs = ctx.bv_const(64, params.nr_devs);
    let assumptions = vec![ctx.ult(dev, nr_devs)];
    IommuModel {
        mem,
        map,
        dev,
        root_set,
        root_pn,
        dva,
        is_write,
        walk,
        assumptions,
    }
}

/// Maps a concrete [`DmaFault`] into the model's `(code, level)`
/// convention (`level` is `None` for variants that don't carry one).
pub fn dma_fault_code(f: &DmaFault) -> (u64, Option<u64>) {
    match f {
        DmaFault::NoRoot => (FAULT_NO_ROOT, None),
        DmaFault::NonCanonical => (FAULT_NON_CANONICAL, None),
        DmaFault::NotPresent { level } => (FAULT_NOT_PRESENT, Some(*level as u64)),
        DmaFault::NotWritable => (FAULT_NOT_WRITABLE, None),
        DmaFault::OutsideDmaRegion => (FAULT_OUTSIDE_DMA, None),
        DmaFault::BadFrame { level } => (FAULT_BAD_FRAME, Some(*level as u64)),
    }
}

fn render_iommu_cex(ctx: &Ctx, model: &Model, m: &IommuModel, what: &str) -> String {
    let dev = model.eval_bv(ctx, m.dev).unwrap_or(0);
    let dva = model.eval_bv(ctx, m.dva).unwrap_or(0);
    let write = model.eval_bool(ctx, m.is_write).unwrap_or(false);
    let mut out = format!("iommu counterexample ({what}): dev={dev} dva={dva:#x} write={write}\n");
    out.push_str("  device table:");
    for d in 0..m.root_set.len() {
        if model.eval_bool(ctx, m.root_set[d]).unwrap_or(false) {
            let pn = model.eval_bv(ctx, m.root_pn[d]).unwrap_or(0);
            out.push_str(&format!(" dev{d}->root {pn}"));
        } else {
            out.push_str(&format!(" dev{d}->unset"));
        }
    }
    out.push('\n');
    if model.eval_bool(ctx, m.walk.ok).unwrap_or(false) {
        out.push_str(&format!(
            "  resolved pfn={} phys_addr={}\n",
            model.eval_bv(ctx, m.walk.pfn).unwrap_or(0),
            model.eval_bv(ctx, m.walk.phys_addr).unwrap_or(0),
        ));
    } else {
        let c = model.eval_bv(ctx, m.walk.fault_code).unwrap_or(15);
        out.push_str(&format!("  faulted: {}\n", fault_name(c)));
    }
    out.push_str("concrete page tables:\n");
    out.push_str(&render_tables(ctx, model, &m.mem));
    out
}

fn bounds_of(cfg: &BmcConfig) -> String {
    let p = cfg.params();
    format!(
        "nr_devs={} nr_pages={} nr_dmapages={}",
        p.nr_devs, p.nr_pages, p.nr_dmapages
    )
}

/// Harness: a successful device translation always lands in the DMA
/// region — frame in `[nr_pages, nr_pfns)`, address in
/// `[dma_base, total_words)`, with no wrap in the address arithmetic.
pub fn dma_confinement(cfg: &BmcConfig) -> HarnessReport {
    let mut ctx = Ctx::new();
    let m = encode_iommu(&mut ctx, cfg);
    let p = cfg.params();
    let nr_pages = ctx.bv_const(64, p.nr_pages);
    let nr_pfns = ctx.bv_const(64, p.nr_pfns());
    let dma_base = ctx.bv_const(64, m.map.dma_base());
    let total = ctx.bv_const(64, m.map.total_words());
    let pfn_lo = ctx.ule(nr_pages, m.walk.pfn);
    let pfn_hi = ctx.ult(m.walk.pfn, nr_pfns);
    let addr_lo = ctx.ule(dma_base, m.walk.phys_addr);
    let addr_hi = ctx.ult(m.walk.phys_addr, total);
    let no_wrap = ctx.not(m.walk.phys_addr_ovf);
    let confined = ctx.and(&[pfn_lo, pfn_hi, addr_lo, addr_hi, no_wrap]);
    let prop = ctx.implies(m.walk.ok, confined);

    let mut prover = Prover::new(ctx, cfg);
    for &a in &m.assumptions {
        prover.assume(a);
    }
    prover.prove(prop, |ctx, model| {
        render_iommu_cex(ctx, model, &m, "translation escaped the DMA region")
    });
    prover.finish("iommu_dma_confinement", "iommu", bounds_of(cfg))
}

/// Harness: every frame a device resolves is granted by some present
/// entry of the in-memory device tables — the walk cannot invent a
/// frame that no table entry names.
pub fn grant_set(cfg: &BmcConfig) -> HarnessReport {
    let mut ctx = Ctx::new();
    let m = encode_iommu(&mut ctx, cfg);
    let p = cfg.params();
    let one = ctx.bv_const(64, 1);
    let shift = ctx.bv_const(64, hk_abi::PTE_PFN_SHIFT as u64);
    let zero = ctx.bv_const(64, 0);
    let mut granted = Vec::new();
    for pn in 0..p.nr_pages {
        for w in 0..p.page_words {
            let word = m.mem.word(pn, w);
            let p_bit = ctx.bv_bin(BvBinOp::And, word, one);
            let present = ctx.ne(p_bit, zero);
            let pfn = ctx.bv_bin(BvBinOp::Ashr, word, shift);
            let names = ctx.eq(pfn, m.walk.pfn);
            granted.push(ctx.and2(present, names));
        }
    }
    let any = ctx.or(&granted);
    let prop = ctx.implies(m.walk.ok, any);

    let mut prover = Prover::new(ctx, cfg);
    for &a in &m.assumptions {
        prover.assume(a);
    }
    prover.prove(prop, |ctx, model| {
        render_iommu_cex(ctx, model, &m, "resolved frame granted by no table entry")
    });
    prover.finish("iommu_grant_set", "iommu", bounds_of(cfg))
}
