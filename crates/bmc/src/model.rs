//! Shared symbolic models: bounded physical memory and the page walker.
//!
//! [`SymMem`] lifts a bounded RAM-page region into one Bv(64) variable
//! per word; [`encode_walk`] encodes the 4-level walk of
//! `hk_vm::paging::walk` (and its IOMMU flavor) over that memory as a
//! pure term circuit with first-fault-wins semantics. The encoding is
//! validated against the real Rust walkers by the differential fuzz
//! bridge, so the bounded proofs discharged on top of it are proofs
//! about the code's actual behavior at these bounds.

use hk_abi::{KernelParams, PTE_P, PTE_PFN_SHIFT, PTE_U, PTE_W, PT_LEVELS};
use hk_smt::eval::{Assignment, Value};
use hk_smt::{BvBinOp, Ctx, Sort, TermData, TermId, VarId};
use hk_vm::{MemoryMap, PhysMem};

use crate::harness::SeededBug;

/// Fault codes shared by the CPU and IOMMU walk models (Bv(4)).
pub const FAULT_NOT_PRESENT: u64 = 0;
/// Entry lacks `PTE_U` (CPU walk only).
pub const FAULT_NOT_USER: u64 = 1;
/// Leaf lacks `PTE_W` on a write access.
pub const FAULT_NOT_WRITABLE: u64 = 2;
/// Table page number or entry frame out of range.
pub const FAULT_BAD_FRAME: u64 = 3;
/// Virtual address has bits above the translated range.
pub const FAULT_NON_CANONICAL: u64 = 4;
/// Device has no root table programmed (IOMMU only).
pub const FAULT_NO_ROOT: u64 = 5;
/// Leaf frame resolves into kernel RAM instead of the DMA region
/// (IOMMU only).
pub const FAULT_OUTSIDE_DMA: u64 = 6;

/// Human-readable name of a fault code.
pub fn fault_name(code: u64) -> &'static str {
    match code {
        FAULT_NOT_PRESENT => "NotPresent",
        FAULT_NOT_USER => "NotUser",
        FAULT_NOT_WRITABLE => "NotWritable",
        FAULT_BAD_FRAME => "BadFrame",
        FAULT_NON_CANONICAL => "NonCanonical",
        FAULT_NO_ROOT => "NoRoot",
        FAULT_OUTSIDE_DMA => "OutsideDmaRegion",
        _ => "?",
    }
}

/// Bounded symbolic RAM: one 64-bit variable per word of the RAM-page
/// region (`nr_pages * page_words` words).
pub struct SymMem {
    /// RAM pages modeled.
    pub nr_pages: u64,
    /// Words per page (power of two).
    pub page_words: u64,
    /// Word variables, page-major: `words[pn * page_words + w]`.
    pub words: Vec<TermId>,
}

impl SymMem {
    /// Declares fresh variables for every RAM word at these parameters.
    pub fn new(ctx: &mut Ctx, params: &KernelParams) -> SymMem {
        let mut words = Vec::new();
        for pn in 0..params.nr_pages {
            for w in 0..params.page_words {
                words.push(ctx.var(format!("ram_p{pn}_w{w}"), Sort::Bv(64)));
            }
        }
        SymMem {
            nr_pages: params.nr_pages,
            page_words: params.page_words,
            words,
        }
    }

    /// The variable holding word `w` of page `pn`.
    pub fn word(&self, pn: u64, w: u64) -> TermId {
        self.words[(pn * self.page_words + w) as usize]
    }

    /// Symbolic read mirroring the walker's two-step indexing: select
    /// the page by `table_pn`, then the word by `ix`. Out-of-range
    /// addresses read as zero (all uses are guarded by bound checks).
    pub fn read_nested(&self, ctx: &mut Ctx, table_pn: TermId, ix: TermId) -> TermId {
        let mut acc = ctx.bv_const(64, 0);
        for pn in (0..self.nr_pages).rev() {
            let mut page = ctx.bv_const(64, 0);
            for w in (0..self.page_words).rev() {
                let wc = ctx.bv_const(64, w);
                let hit = ctx.eq(ix, wc);
                page = ctx.ite(hit, self.word(pn, w), page);
            }
            let pc = ctx.bv_const(64, pn);
            let hit = ctx.eq(table_pn, pc);
            acc = ctx.ite(hit, page, acc);
        }
        acc
    }

    /// Structurally different read used by the clean-room spec: one
    /// flat selection keyed on the combined word index
    /// `table_pn * page_words + ix`.
    pub fn read_flat(&self, ctx: &mut Ctx, table_pn: TermId, ix: TermId) -> TermId {
        let k = self.page_words.trailing_zeros();
        let kc = ctx.bv_const(64, k as u64);
        let shifted = ctx.bv_bin(BvBinOp::Shl, table_pn, kc);
        let key = ctx.bv_bin(BvBinOp::Or, shifted, ix);
        let mut acc = ctx.bv_const(64, 0);
        for pn in (0..self.nr_pages).rev() {
            for w in (0..self.page_words).rev() {
                let kc = ctx.bv_const(64, (pn << k) | w);
                let hit = ctx.eq(key, kc);
                acc = ctx.ite(hit, self.word(pn, w), acc);
            }
        }
        acc
    }

    /// Binds every word variable to its value in a concrete memory
    /// (the differential-fuzz direction: concrete RAM, evaluated model).
    pub fn bind(&self, ctx: &Ctx, asg: &mut Assignment, phys: &PhysMem, map: &MemoryMap) {
        for pn in 0..self.nr_pages {
            for w in 0..self.page_words {
                let val = phys.read(map.ram_page_addr(pn) + w) as u64;
                asg.set_var(var_of(ctx, self.word(pn, w)), Value::Bv(val));
            }
        }
    }
}

/// The `VarId` behind a variable term.
pub fn var_of(ctx: &Ctx, t: TermId) -> VarId {
    match ctx.data(t) {
        TermData::Var(v) => *v,
        other => panic!("expected a variable term, got {other:?}"),
    }
}

/// Which walker is being modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkFlavor {
    /// `hk_vm::paging::walk`: user-bit checked at every level, leaf may
    /// land anywhere in `0..nr_pfns()`.
    Cpu,
    /// `hk_vm::iommu::Iommu::walk`: no user-bit check, leaf must land
    /// in the DMA region.
    Iommu,
}

/// Per-level observation points for the overflow harness.
pub struct LevelProbe {
    /// Walk reached this level with no prior fault.
    pub reached: TermId,
    /// 64-bit entry address as the code computes it (wrapping).
    pub entry_addr: TermId,
    /// Some step of the entry-address arithmetic wrapped (Bool):
    /// shift lost high bits or an addition carried out of 64 bits.
    pub entry_addr_ovf: TermId,
    /// The page-table entry read at this level.
    pub entry: TermId,
}

/// The encoded walk: verdict, outputs, and fault classification.
pub struct WalkModel {
    /// Translation succeeded.
    pub ok: TermId,
    /// Leaf frame number (meaningful under `ok`).
    pub pfn: TermId,
    /// Translated physical word address (meaningful under `ok`).
    pub phys_addr: TermId,
    /// Some step of the final address arithmetic wrapped (Bool).
    pub phys_addr_ovf: TermId,
    /// Leaf entry grants write access (meaningful under `ok`).
    pub writable: TermId,
    /// First fault code (meaningful under `!ok`), Bv(4).
    pub fault_code: TermId,
    /// Level of the first fault (meaningful under `!ok`), Bv(4).
    pub fault_level: TermId,
    /// Per-level probes, in walk order (level 3 first).
    pub levels: Vec<LevelProbe>,
}

struct FaultAcc {
    ok: TermId,
    code: TermId,
    level: TermId,
}

impl FaultAcc {
    fn new(ctx: &mut Ctx) -> FaultAcc {
        FaultAcc {
            ok: ctx.tru(),
            code: ctx.bv_const(4, 0),
            level: ctx.bv_const(4, 0),
        }
    }

    /// First-fault-wins: record `(code, level)` if `cond` fires while
    /// no earlier check has.
    fn fail(&mut self, ctx: &mut Ctx, cond: TermId, code: u64, level: u64) {
        let trig = ctx.and2(self.ok, cond);
        let cc = ctx.bv_const(4, code);
        let lc = ctx.bv_const(4, level);
        self.code = ctx.ite(trig, cc, self.code);
        self.level = ctx.ite(trig, lc, self.level);
        let nc = ctx.not(cond);
        self.ok = ctx.and2(self.ok, nc);
    }
}

/// Encodes the bounded walk from `root_pn` on `va` over `mem`.
///
/// `is_write` is a Bool term; `pre_fault` (IOMMU `NoRoot`) fires before
/// every other check, matching `walk_inner`'s `?` on the root lookup.
/// `bug` plants a seeded defect for the negative fixtures.
#[allow(clippy::too_many_arguments)]
pub fn encode_walk(
    ctx: &mut Ctx,
    mem: &SymMem,
    map: &MemoryMap,
    root_pn: TermId,
    va: TermId,
    is_write: TermId,
    flavor: WalkFlavor,
    pre_fault: Option<TermId>,
    bug: Option<SeededBug>,
) -> WalkModel {
    let params = &map.params;
    let k = params.page_words.trailing_zeros() as u64;
    let total_bits = k * (PT_LEVELS + 1);
    let mask = params.page_words - 1;
    let top = PT_LEVELS - 1;

    let mut acc = FaultAcc::new(ctx);

    if let Some(no_root) = pre_fault {
        acc.fail(ctx, no_root, FAULT_NO_ROOT, top);
    }

    // Non-canonical: any bit at or above `total_bits` set.
    if total_bits < 64 {
        let tb = ctx.bv_const(64, total_bits);
        let hi = ctx.bv_bin(BvBinOp::Lshr, va, tb);
        let zero = ctx.bv_const(64, 0);
        let noncanon = ctx.ne(hi, zero);
        acc.fail(ctx, noncanon, FAULT_NON_CANONICAL, top);
    }

    let nr_pages = ctx.bv_const(64, params.nr_pages);
    let nr_pfns = ctx.bv_const(64, params.nr_pfns());
    let mask_c = ctx.bv_const(64, mask);
    let pte_p = ctx.bv_const(64, PTE_P as u64);
    let pte_u = ctx.bv_const(64, PTE_U as u64);
    let pte_w = ctx.bv_const(64, PTE_W as u64);
    let zero64 = ctx.bv_const(64, 0);
    let shift_c = ctx.bv_const(64, PTE_PFN_SHIFT as u64);

    let mut table_pn = root_pn;
    let mut last_entry = zero64;
    let mut levels = Vec::new();

    for i in 0..PT_LEVELS {
        let level = top - i;
        // Table page in range?
        let bad_table = ctx.ule(nr_pages, table_pn);
        acc.fail(ctx, bad_table, FAULT_BAD_FRAME, level);
        let reached = acc.ok;

        // Level index from the VA; the seeded off-by-one bug shifts by
        // one level too little, reading the next-lower level's bits.
        let good_shift = k * (level + 1);
        let shift = match bug {
            Some(SeededBug::PagingLevelOffByOne) => k * level,
            _ => good_shift,
        };
        let sc = ctx.bv_const(64, shift);
        let sh = ctx.bv_bin(BvBinOp::Lshr, va, sc);
        let ix = ctx.bv_bin(BvBinOp::And, sh, mask_c);

        // Entry address as the code computes it (wrapping adds), with
        // explicit wrap detection for the overflow harness: a left
        // shift loses high bits iff they were set, an unsigned add
        // carries iff the result is below an operand.
        let kc = ctx.bv_const(64, k);
        let pn_off = ctx.bv_bin(BvBinOp::Shl, table_pn, kc);
        let hishift = ctx.bv_const(64, 64 - k);
        let lost = ctx.bv_bin(BvBinOp::Lshr, table_pn, hishift);
        let shl_ovf = ctx.ne(lost, zero64);
        let base = ctx.bv_const(64, map.pages_base());
        let t0 = ctx.bv_add(base, pn_off);
        let carry0 = ctx.ult(t0, base);
        let entry_addr = ctx.bv_add(t0, ix);
        let carry1 = ctx.ult(entry_addr, t0);
        let entry_addr_ovf = ctx.or(&[shl_ovf, carry0, carry1]);

        let entry = mem.read_nested(ctx, table_pn, ix);
        levels.push(LevelProbe {
            reached,
            entry_addr,
            entry_addr_ovf,
            entry,
        });

        let p_bit = ctx.bv_bin(BvBinOp::And, entry, pte_p);
        let not_present = ctx.eq(p_bit, zero64);
        acc.fail(ctx, not_present, FAULT_NOT_PRESENT, level);

        if flavor == WalkFlavor::Cpu {
            let u_bit = ctx.bv_bin(BvBinOp::And, entry, pte_u);
            let not_user = ctx.eq(u_bit, zero64);
            acc.fail(ctx, not_user, FAULT_NOT_USER, level);
        }

        // pfn = entry >> 12 arithmetic; a negative pfn becomes a huge
        // unsigned value, so the single unsigned bound check matches
        // the code's `pfn < 0 || pfn as u64 >= nr_pfns()`.
        let pfn = ctx.bv_bin(BvBinOp::Ashr, entry, shift_c);
        let bad_frame = ctx.ule(nr_pfns, pfn);
        acc.fail(ctx, bad_frame, FAULT_BAD_FRAME, level);

        last_entry = entry;
        table_pn = pfn;
    }

    let w_bit = ctx.bv_bin(BvBinOp::And, last_entry, pte_w);
    let writable = ctx.ne(w_bit, zero64);
    let not_writable_cond = ctx.not(writable);
    let denied = ctx.and2(is_write, not_writable_cond);
    acc.fail(ctx, denied, FAULT_NOT_WRITABLE, 0);

    if flavor == WalkFlavor::Iommu && bug != Some(SeededBug::IommuGrantWiden) {
        let in_ram = ctx.ult(table_pn, nr_pages);
        acc.fail(ctx, in_ram, FAULT_OUTSIDE_DMA, 0);
    }

    // phys_addr = pfn_addr(pfn) + offset as the code computes it, with
    // wrap detection on every shift, subtraction, and addition of the
    // taken branch.
    let offset = ctx.bv_bin(BvBinOp::And, va, mask_c);
    let kc = ctx.bv_const(64, k);
    let hishift = ctx.bv_const(64, 64 - k);
    let in_ram = ctx.ult(table_pn, nr_pages);
    let pages_base = ctx.bv_const(64, map.pages_base());
    let dma_base = ctx.bv_const(64, map.dma_base());
    let ram_off = ctx.bv_bin(BvBinOp::Shl, table_pn, kc);
    let ram_lost = ctx.bv_bin(BvBinOp::Lshr, table_pn, hishift);
    let ram_shl_ovf = ctx.ne(ram_lost, zero64);
    let ram_addr = ctx.bv_add(pages_base, ram_off);
    let ram_carry = ctx.ult(ram_addr, pages_base);
    let ram_wrap = ctx.or2(ram_shl_ovf, ram_carry);
    let dpfn = ctx.bv_sub(table_pn, nr_pages);
    let sub_uf = ctx.ult(table_pn, nr_pages);
    let dma_off = ctx.bv_bin(BvBinOp::Shl, dpfn, kc);
    let dma_lost = ctx.bv_bin(BvBinOp::Lshr, dpfn, hishift);
    let dma_shl_ovf = ctx.ne(dma_lost, zero64);
    let dma_addr = ctx.bv_add(dma_base, dma_off);
    let dma_carry = ctx.ult(dma_addr, dma_base);
    let dma_wrap = ctx.or(&[sub_uf, dma_shl_ovf, dma_carry]);
    let page_addr = ctx.ite(in_ram, ram_addr, dma_addr);
    let branch_wrap = ctx.ite(in_ram, ram_wrap, dma_wrap);
    let phys_addr = ctx.bv_add(page_addr, offset);
    let final_carry = ctx.ult(phys_addr, page_addr);
    let phys_addr_ovf = ctx.or2(branch_wrap, final_carry);

    WalkModel {
        ok: acc.ok,
        pfn: table_pn,
        phys_addr,
        phys_addr_ovf,
        writable,
        fault_code: acc.code,
        fault_level: acc.level,
        levels,
    }
}

/// Renders a concrete page-table memory from a model as a table dump,
/// the shared part of every paging/IOMMU counterexample.
pub fn render_tables(ctx: &Ctx, model: &hk_smt::Model, mem: &SymMem) -> String {
    let mut out = String::new();
    for pn in 0..mem.nr_pages {
        out.push_str(&format!("  page {pn}:"));
        for w in 0..mem.page_words {
            let v = model.eval_bv(ctx, mem.word(pn, w)).unwrap_or(0);
            out.push_str(&format!(" {v:#018x}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hk_smt::eval::eval_bv;

    #[test]
    fn reads_agree_on_concrete_addresses() {
        let params = KernelParams::verification();
        let mut ctx = Ctx::new();
        let mem = SymMem::new(&mut ctx, &params);
        let mut asg = Assignment::default();
        for pn in 0..params.nr_pages {
            for w in 0..params.page_words {
                let val = pn * 1000 + w;
                asg.set_var(var_of(&ctx, mem.word(pn, w)), Value::Bv(val));
            }
        }
        for (pn, w) in [(0, 0), (3, 2), (15, 3), (7, 1)] {
            let pnc = ctx.bv_const(64, pn);
            let wc = ctx.bv_const(64, w);
            let nested = mem.read_nested(&mut ctx, pnc, wc);
            let flat = mem.read_flat(&mut ctx, pnc, wc);
            assert_eq!(eval_bv(&ctx, nested, &asg), pn * 1000 + w);
            assert_eq!(eval_bv(&ctx, flat, &asg), pn * 1000 + w);
        }
    }
}
