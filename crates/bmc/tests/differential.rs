//! Differential fuzz bridge: the symbolic BMC models against the real
//! code, on randomized concrete inputs.
//!
//! Each family draws ≥500 random cases, runs them natively through the
//! real `hk_vm` / `hk_user` implementations, evaluates the same inputs
//! through the symbolic circuits with the ground evaluator, and asserts
//! agreement. This is what licenses reading the bounded proofs in
//! `tests/harnesses.rs` as statements about the code: the circuits the
//! solver reasons about are pinned to the code's concrete behavior.
//!
//! The circuits are encoded once per test; only the variable assignment
//! changes per case, so a case costs two or three DAG evaluations.

mod common;

use common::XorShift64;
use hk_abi::{KernelParams, PTE_P, PTE_U, PTE_W, PT_LEVELS};
use hk_bmc::fslog::{encode_fslog, CrashDisk};
use hk_bmc::iommu::{dma_fault_code, encode_iommu};
use hk_bmc::model::{
    encode_walk, var_of, SymMem, WalkFlavor, FAULT_BAD_FRAME, FAULT_NON_CANONICAL,
    FAULT_NOT_PRESENT, FAULT_NOT_USER, FAULT_NOT_WRITABLE,
};
use hk_bmc::paging::{encode_spec_walk, spec_walk, KERNEL_WORDS};
use hk_bmc::tlb::{encode_tlb_trace, RefTlb};
use hk_bmc::BmcConfig;
use hk_smt::eval::{eval_bool, eval_bv, Assignment, Value};
use hk_smt::{BvBinOp, Ctx, Sort, TermId};
use hk_user::fs::disk::{DiskIo, RamDisk};
use hk_user::fs::log::Log;
use hk_vm::iommu::{DmaFault, Iommu};
use hk_vm::paging::{walk, AccessKind, FaultReason};
use hk_vm::tlb::Tlb;
use hk_vm::{MemoryMap, PhysMem};

const CASES: usize = 500;

/// Model fault code of a concrete CPU fault reason.
fn reason_code(r: FaultReason) -> u64 {
    match r {
        FaultReason::NotPresent => FAULT_NOT_PRESENT,
        FaultReason::NotUser => FAULT_NOT_USER,
        FaultReason::NotWritable => FAULT_NOT_WRITABLE,
        FaultReason::BadFrame => FAULT_BAD_FRAME,
        FaultReason::NonCanonical => FAULT_NON_CANONICAL,
    }
}

/// How to draw page-table entries.
#[derive(Clone, Copy)]
enum PteMode {
    /// Anything goes: missing flags, out-of-range frames, occasionally
    /// 64 fully random bits (negative frames included). Exercises every
    /// fault path but almost never completes a 4-level walk.
    Adversarial,
    /// Well-formed entries (always present+user, frames naming valid
    /// tables) so complete walks are common; `dma` biases some leaves
    /// into the DMA region for the IOMMU's success path.
    Friendly { dma: bool },
}

/// A random page-table entry in the given mode.
fn random_pte(rng: &mut XorShift64, params: &KernelParams, mode: PteMode) -> i64 {
    match mode {
        PteMode::Adversarial => {
            if rng.chance(1, 8) {
                return rng.next_u64() as i64;
            }
            let pfn = if rng.chance(1, 8) {
                params.nr_pfns() + rng.below(4)
            } else {
                rng.below(params.nr_pfns())
            };
            let mut flags = 0u64;
            if rng.chance(7, 8) {
                flags |= PTE_P as u64;
            }
            if rng.chance(3, 4) {
                flags |= PTE_U as u64;
            }
            if rng.chance(1, 2) {
                flags |= PTE_W as u64;
            }
            ((pfn << 12) | flags) as i64
        }
        PteMode::Friendly { dma } => {
            let pfn = if dma && rng.chance(1, 4) {
                params.nr_pages + rng.below(params.nr_dmapages)
            } else {
                rng.below(params.nr_pages)
            };
            let mut flags = (PTE_P | PTE_U) as u64;
            if rng.chance(3, 4) {
                flags |= PTE_W as u64;
            }
            ((pfn << 12) | flags) as i64
        }
    }
}

/// Fills the RAM-page region of a fresh physical memory with random
/// entries.
fn random_tables(
    rng: &mut XorShift64,
    params: &KernelParams,
    map: &MemoryMap,
    mode: PteMode,
) -> PhysMem {
    let mut phys = PhysMem::new(map.total_words());
    for pn in 0..params.nr_pages {
        for w in 0..params.page_words {
            phys.write(map.ram_page_addr(pn) + w, random_pte(rng, params, mode));
        }
    }
    phys
}

/// Packs a walk outcome into one Bv(64) so each circuit costs a single
/// evaluation per case. Fields not meaningful for the verdict are
/// masked to zero on both sides. Layout (all bounds-checked at the fast
/// tier): ok<<41 | writable<<40 | pfn<<32 | addr<<16 | code<<8 | level.
#[allow(clippy::too_many_arguments)]
fn pack_walk(
    ctx: &mut Ctx,
    ok: TermId,
    pfn: TermId,
    addr: TermId,
    writable: TermId,
    code: TermId,
    level: TermId,
) -> TermId {
    let zero = ctx.bv_const(64, 0);
    let one = ctx.bv_const(64, 1);
    let okb = ctx.ite(ok, one, zero);
    let wbit = ctx.ite(writable, one, zero);
    let wb_m = ctx.ite(ok, wbit, zero);
    let pfn_m = ctx.ite(ok, pfn, zero);
    let addr_m = ctx.ite(ok, addr, zero);
    let code64 = ctx.zext(code, 64);
    let level64 = ctx.zext(level, 64);
    let code_m = ctx.ite(ok, zero, code64);
    let level_m = ctx.ite(ok, zero, level64);
    let mut acc = level_m;
    for (t, sh) in [
        (code_m, 8),
        (addr_m, 16),
        (pfn_m, 32),
        (wb_m, 40),
        (okb, 41),
    ] {
        let shc = ctx.bv_const(64, sh);
        let s = ctx.bv_bin(BvBinOp::Shl, t, shc);
        acc = ctx.bv_bin(BvBinOp::Or, acc, s);
    }
    acc
}

/// The concrete counterpart of [`pack_walk`].
fn pack_expected(res: &Result<(u64, u64, bool), (u64, u64)>) -> u64 {
    match *res {
        Ok((pfn, addr, w)) => (1 << 41) | ((w as u64) << 40) | (pfn << 32) | (addr << 16),
        Err((code, level)) => (code << 8) | level,
    }
}

#[test]
fn paging_walker_model_spec_and_code_agree() {
    let cfg = BmcConfig::default();
    let params = cfg.params();
    let map = MemoryMap::new(params, KERNEL_WORDS);
    let mut ctx = Ctx::new();
    let mem = SymMem::new(&mut ctx, &params);
    let root = ctx.var("root_pn", Sort::Bv(64));
    let va = ctx.var("va", Sort::Bv(64));
    let is_write = ctx.var("is_write", Sort::Bool);
    let model = encode_walk(
        &mut ctx,
        &mem,
        &map,
        root,
        va,
        is_write,
        WalkFlavor::Cpu,
        None,
        None,
    );
    let spec = encode_spec_walk(&mut ctx, &mem, &map, root, va, is_write);
    let model_packed = pack_walk(
        &mut ctx,
        model.ok,
        model.pfn,
        model.phys_addr,
        model.writable,
        model.fault_code,
        model.fault_level,
    );
    let spec_packed = pack_walk(
        &mut ctx,
        spec.ok,
        spec.pfn,
        spec.phys_addr,
        spec.writable,
        spec.fault_code,
        spec.fault_level,
    );
    let root_v = var_of(&ctx, root);
    let va_v = var_of(&ctx, va);
    let w_v = var_of(&ctx, is_write);

    let pw = params.page_words;
    let va_limit = pw.pow(PT_LEVELS as u32 + 1);
    let mut rng = XorShift64::new(0x9a0e_11d1);
    let mut ok_cases = 0;
    for case in 0..CASES {
        let mode = if rng.chance(1, 2) {
            PteMode::Friendly { dma: false }
        } else {
            PteMode::Adversarial
        };
        let phys = random_tables(&mut rng, &params, &map, mode);
        let root_c = rng.below(params.nr_pages + 2);
        let va_c = if rng.chance(1, 8) {
            rng.next_u64()
        } else {
            rng.below(va_limit)
        };
        let write_c = rng.chance(1, 2);
        let access = if write_c {
            AccessKind::Write
        } else {
            AccessKind::Read
        };

        let real = match walk(&phys, &map, root_c, va_c, access) {
            Ok(t) => Ok((t.pfn, t.phys_addr, t.writable)),
            Err(f) => Err((reason_code(f.reason), f.level as u64)),
        };
        ok_cases += real.is_ok() as usize;
        let expected = pack_expected(&real);

        let ram = phys.read_range(map.pages_base(), params.nr_pages * pw);
        let from_spec = spec_walk(&params, KERNEL_WORDS, ram, root_c, va_c, write_c);
        assert_eq!(
            pack_expected(&from_spec),
            expected,
            "case {case}: concrete spec_walk disagrees with hk_vm::paging::walk \
             (root={root_c} va={va_c:#x} write={write_c})"
        );

        let mut asg = Assignment::new();
        mem.bind(&ctx, &mut asg, &phys, &map);
        asg.set_var(root_v, Value::Bv(root_c));
        asg.set_var(va_v, Value::Bv(va_c));
        asg.set_var(w_v, Value::Bool(write_c));
        assert_eq!(
            eval_bv(&ctx, model_packed, &asg),
            expected,
            "case {case}: walker circuit disagrees with hk_vm::paging::walk \
             (root={root_c} va={va_c:#x} write={write_c})"
        );
        assert_eq!(
            eval_bv(&ctx, spec_packed, &asg),
            expected,
            "case {case}: spec circuit disagrees with hk_vm::paging::walk \
             (root={root_c} va={va_c:#x} write={write_c})"
        );
    }
    // The generator must exercise both verdicts, or agreement is vacuous.
    assert!(ok_cases > 20, "only {ok_cases} successful walks in {CASES}");
    assert!(ok_cases < CASES - 20, "only faulting walks missing");
}

#[test]
fn tlb_trace_circuit_agrees_with_reference_machine() {
    let cfg = BmcConfig::default();
    let (capacity, n_pre, n_post) = cfg.tlb_bounds();
    let mut ctx = Ctx::new();
    let t = encode_tlb_trace(&mut ctx, capacity, n_pre, n_post, true, false);
    let op_vars: Vec<_> = t
        .ops
        .iter()
        .map(|op| {
            (
                var_of(&ctx, op.op),
                var_of(&ctx, op.arg),
                var_of(&ctx, op.victim),
            )
        })
        .collect();
    let remap_v = var_of(&ctx, t.remap_va);
    let probe_v = var_of(&ctx, t.probe);
    let pwrite_v = var_of(&ctx, t.probe_write);

    const VPS: u64 = 6;
    let mut rng = XorShift64::new(0x71b_c0de);
    let mut hits = 0;
    for case in 0..CASES {
        let walk0: Vec<(u64, bool)> = (0..VPS)
            .map(|_| (rng.below(16), rng.chance(1, 2)))
            .collect();
        let remap = rng.below(VPS);
        let mut walk1 = walk0.clone();
        walk1[remap as usize] = (rng.below(16), rng.chance(1, 2));

        let mut asg = Assignment::new();
        // Bind the walk functions; equal defaults keep the off-domain
        // agreement assumption satisfied for free.
        for (f, table, pick) in [
            (t.funcs.walk0_pfn, &walk0, 0),
            (t.funcs.walk0_w, &walk0, 1),
            (t.funcs.walk1_pfn, &walk1, 0),
            (t.funcs.walk1_w, &walk1, 1),
        ] {
            let fi = asg.func_mut(f);
            for (vp, &(pfn, w)) in table.iter().enumerate() {
                let val = if pick == 0 { pfn } else { w as u64 };
                fi.set(vec![vp as u64], val);
            }
        }
        asg.set_var(remap_v, Value::Bv(remap));
        let probe = rng.below(VPS);
        let probe_write = rng.chance(1, 2);
        asg.set_var(probe_v, Value::Bv(probe));
        asg.set_var(pwrite_v, Value::Bool(probe_write));

        let mut reft = RefTlb::new(capacity);
        for (i, &(ov, av, vv)) in op_vars.iter().enumerate() {
            let code = rng.below(4);
            let arg = rng.below(VPS);
            let victim = rng.below(capacity as u64);
            asg.set_var(ov, Value::Bv(code));
            asg.set_var(av, Value::Bv(arg));
            asg.set_var(vv, Value::Bv(victim));
            let table = if i < t.n_pre { &walk0 } else { &walk1 };
            match code {
                0 => {
                    let (pfn, w) = table[arg as usize];
                    reft.insert(arg, pfn, w, victim as usize);
                }
                1 => reft.flush_page(arg),
                2 => reft.flush_all(),
                _ => {}
            }
            if i + 1 == t.n_pre {
                // The remap's shootdown, as the trace encodes it.
                reft.flush_page(remap);
            }
        }

        for &a in &t.assumptions {
            assert!(
                eval_bool(&ctx, a, &asg),
                "case {case}: binding violates a trace assumption"
            );
        }
        let expect = reft.lookup(probe, probe_write);
        hits += expect.is_some() as usize;
        assert_eq!(
            eval_bool(&ctx, t.hit, &asg),
            expect.is_some(),
            "case {case}: hit verdict diverges (probe={probe} write={probe_write})"
        );
        if let Some((pfn, w)) = expect {
            assert_eq!(
                eval_bv(&ctx, t.hit_pfn, &asg),
                pfn,
                "case {case}: hit frame diverges"
            );
            assert_eq!(
                eval_bv(&ctx, t.hit_w, &asg),
                w as u64,
                "case {case}: hit writability diverges"
            );
        }
    }
    assert!(hits > 20, "only {hits} TLB hits in {CASES} traces");
    assert!(hits < CASES - 20, "no TLB misses exercised");
}

#[test]
fn real_tlb_stays_coherent_under_random_traces() {
    // Property fuzz of the real `hk_vm::tlb::Tlb` (not the model): as
    // long as every remap is followed by its shootdown, a hit always
    // returns the current walk — the exact statement the tlb_coherence
    // harness proves over the model, checked here against the code with
    // the HashMap's real eviction choices.
    const VPS: u64 = 8;
    let mut rng = XorShift64::new(0xfeed_5eed);
    for _case in 0..CASES {
        let capacity = 1 + rng.below(4) as usize;
        let mut tlb = Tlb::new(capacity);
        let mut walkt: Vec<(u64, bool)> = (0..VPS)
            .map(|_| (rng.below(32), rng.chance(1, 2)))
            .collect();
        for _step in 0..24 {
            match rng.below(5) {
                0 | 1 => {
                    let vp = rng.below(VPS);
                    let (pfn, w) = walkt[vp as usize];
                    tlb.insert(vp, pfn, w);
                }
                2 => tlb.flush_page(rng.below(VPS)),
                3 => tlb.flush_all(),
                _ => {
                    // Remap a page, then its shootdown.
                    let vp = rng.below(VPS);
                    walkt[vp as usize] = (rng.below(32), rng.chance(1, 2));
                    tlb.flush_page(vp);
                }
            }
            assert!(tlb.len() <= capacity, "TLB exceeded its capacity");
            let probe = rng.below(VPS);
            let write = rng.chance(1, 2);
            if let Some((pfn, w)) = tlb.lookup(probe, write) {
                let (cur_pfn, cur_w) = walkt[probe as usize];
                assert_eq!(
                    (pfn, w),
                    (cur_pfn, cur_w),
                    "TLB hit disagrees with the current walk at vp {probe}"
                );
                if write {
                    assert!(w, "write hit through a read-only entry");
                }
            }
        }
    }
}

#[test]
fn iommu_circuit_agrees_with_code() {
    let cfg = BmcConfig::default();
    let params = cfg.params();
    let mut ctx = Ctx::new();
    let m = encode_iommu(&mut ctx, &cfg);
    // Same packing idea as the CPU walk, minus pfn/writable (the real
    // IOMMU walk returns only the address): ok<<40 | addr<<16 |
    // code<<8 | level.
    let zero = ctx.bv_const(64, 0);
    let one = ctx.bv_const(64, 1);
    let okb = ctx.ite(m.walk.ok, one, zero);
    let addr_m = ctx.ite(m.walk.ok, m.walk.phys_addr, zero);
    let code64 = ctx.zext(m.walk.fault_code, 64);
    let level64 = ctx.zext(m.walk.fault_level, 64);
    let code_m = ctx.ite(m.walk.ok, zero, code64);
    let level_m = ctx.ite(m.walk.ok, zero, level64);
    let mut packed = level_m;
    for (t, sh) in [(code_m, 8), (addr_m, 16), (okb, 40)] {
        let shc = ctx.bv_const(64, sh);
        let s = ctx.bv_bin(BvBinOp::Shl, t, shc);
        packed = ctx.bv_bin(BvBinOp::Or, packed, s);
    }
    let dev_v = var_of(&ctx, m.dev);
    let dva_v = var_of(&ctx, m.dva);
    let w_v = var_of(&ctx, m.is_write);
    let root_vars: Vec<_> = (0..params.nr_devs as usize)
        .map(|d| (var_of(&ctx, m.root_set[d]), var_of(&ctx, m.root_pn[d])))
        .collect();

    let pw = params.page_words;
    let va_limit = pw.pow(PT_LEVELS as u32 + 1);
    let mut rng = XorShift64::new(0xd0a_0a17);
    let mut ok_cases = 0;
    for case in 0..CASES {
        let mode = if rng.chance(1, 2) {
            PteMode::Friendly { dma: true }
        } else {
            PteMode::Adversarial
        };
        let phys = random_tables(&mut rng, &params, &m.map, mode);
        let mut iommu = Iommu::new(params.nr_devs);
        let mut asg = Assignment::new();
        m.mem.bind(&ctx, &mut asg, &phys, &m.map);
        for (d, &(set_v, pn_v)) in root_vars.iter().enumerate() {
            let root = rng.chance(3, 4).then(|| rng.below(params.nr_pages + 2));
            iommu.set_root(d as u64, root);
            asg.set_var(set_v, Value::Bool(root.is_some()));
            asg.set_var(pn_v, Value::Bv(root.unwrap_or(0)));
        }
        let dev = rng.below(params.nr_devs);
        let dva = if rng.chance(1, 8) {
            rng.next_u64()
        } else {
            rng.below(va_limit)
        };
        let write = rng.chance(1, 2);
        asg.set_var(dev_v, Value::Bv(dev));
        asg.set_var(dva_v, Value::Bv(dva));
        asg.set_var(w_v, Value::Bool(write));
        for &a in &m.assumptions {
            assert!(eval_bool(&ctx, a, &asg), "case {case}: assumption violated");
        }

        let expected = match iommu.walk(&phys, &m.map, dev, dva, write) {
            Ok(addr) => {
                ok_cases += 1;
                (1u64 << 40) | (addr << 16)
            }
            Err(f) => {
                let (code, lvl) = dma_fault_code(&f);
                // Variants without a carried level fault at a fixed
                // point of the walk: NoRoot/NonCanonical before level 3,
                // NotWritable/OutsideDmaRegion at the leaf.
                let level = lvl.unwrap_or(match f {
                    DmaFault::NotWritable | DmaFault::OutsideDmaRegion => 0,
                    _ => PT_LEVELS - 1,
                });
                (code << 8) | level
            }
        };
        assert_eq!(
            eval_bv(&ctx, packed, &asg),
            expected,
            "case {case}: IOMMU circuit disagrees with Iommu::walk \
             (dev={dev} dva={dva:#x} write={write})"
        );
    }
    assert!(
        ok_cases > 5,
        "only {ok_cases} successful DMA walks in {CASES}"
    );
}

/// Reads every sector of a RAM disk.
fn sectors(disk: &mut RamDisk, sw: u64, nsectors: u64) -> Vec<Vec<i64>> {
    (0..nsectors)
        .map(|s| {
            let mut b = vec![0i64; sw as usize];
            disk.read_sector(s, &mut b);
            b
        })
        .collect()
}

#[test]
fn fslog_circuit_agrees_with_crashed_commit_and_recovery() {
    let cfg = BmcConfig::default();
    let (sw, nsectors, capacity) = cfg.fs_bounds();
    let data_lo = (capacity + 1) as usize;
    let mut ctx = Ctx::new();
    let instances: Vec<_> = (1..=capacity as usize)
        .map(|n| encode_fslog(&mut ctx, &cfg, n))
        .collect();

    let mut rng = XorShift64::new(0x10c_afe1);
    let mut mid_crashes = 0;
    for case in 0..CASES {
        let n = 1 + rng.below(capacity) as usize;
        let inst = &instances[n - 1];

        // Random initial disk: clean header, random log slots and data.
        let mut d0 = RamDisk::new(sw, nsectors);
        for s in 1..nsectors {
            let buf: Vec<i64> = (0..sw).map(|_| rng.below(1 << 20) as i64).collect();
            d0.write_sector(s, &buf);
        }
        let mut homes: Vec<u64> = (data_lo as u64..nsectors).collect();
        for i in (1..homes.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            homes.swap(i, j);
        }
        homes.truncate(n);
        let payloads: Vec<Vec<i64>> = (0..n)
            .map(|_| (0..sw).map(|_| rng.below(1 << 20) as i64).collect())
            .collect();
        let sched_len = 2 * n as u64 + 2;
        let crash = rng.below(sched_len + 1);
        if crash > 0 && crash < sched_len {
            mid_crashes += 1;
        }

        // Native: the real commit against a disk that dies after
        // `crash` sector writes, then the real recovery on what
        // survived.
        let mut log = Log::new(CrashDisk::new(d0.snapshot(), crash), 0, capacity);
        log.begin();
        for (i, p) in payloads.iter().enumerate() {
            log.write(homes[i], p);
        }
        log.commit();
        let mut crashed = log.into_disk().inner;
        let mut rec_log = Log::new(crashed.snapshot(), 0, capacity);
        rec_log.recover();
        let mut recovered = rec_log.into_disk();

        // The atomicity property, natively: the recovered data region
        // is uniformly pre- or post-commit.
        let pre = sectors(&mut d0, sw, nsectors);
        let mut post = pre.clone();
        for (i, p) in payloads.iter().enumerate() {
            post[homes[i] as usize] = p.clone();
        }
        let rec = sectors(&mut recovered, sw, nsectors);
        assert!(
            rec[data_lo..] == pre[data_lo..] || rec[data_lo..] == post[data_lo..],
            "case {case}: torn data region after crash at {crash}/{sched_len} (n={n})"
        );

        // Symbolic: the circuit replays the same crash to the same
        // disk, word for word.
        let mut asg = Assignment::new();
        for (s, sector) in pre.iter().enumerate() {
            for (w, &val) in sector.iter().enumerate() {
                asg.set_var(var_of(&ctx, inst.d0[s][w]), Value::Bv(val as u64));
            }
        }
        for (i, &h) in inst.homes.iter().enumerate() {
            asg.set_var(var_of(&ctx, h), Value::Bv(homes[i]));
        }
        for (i, p) in inst.payloads.iter().enumerate() {
            for (w, &t) in p.iter().enumerate() {
                asg.set_var(var_of(&ctx, t), Value::Bv(payloads[i][w] as u64));
            }
        }
        asg.set_var(var_of(&ctx, inst.crash), Value::Bv(crash));
        for &a in &inst.assumptions {
            assert!(eval_bool(&ctx, a, &asg), "case {case}: assumption violated");
        }

        let crash_native = sectors(&mut crashed, sw, nsectors);
        for s in 0..nsectors as usize {
            for w in 0..sw as usize {
                assert_eq!(
                    eval_bv(&ctx, inst.crash_state[s][w], &asg),
                    crash_native[s][w] as u64,
                    "case {case}: crash state diverges at lba {s} word {w} \
                     (n={n} crash={crash})"
                );
                assert_eq!(
                    eval_bv(&ctx, inst.recovered[s][w], &asg),
                    rec[s][w] as u64,
                    "case {case}: recovered state diverges at lba {s} word {w} \
                     (n={n} crash={crash})"
                );
            }
        }
    }
    assert!(mid_crashes > 50, "only {mid_crashes} mid-schedule crashes");
}
