//! Shared test plumbing: a tiny vendored xorshift64* PRNG so the
//! randomized tests run fully offline with no external crates.

/// Deterministic xorshift64* PRNG.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

#[allow(dead_code)] // shared test helper; not every test uses every method
impl XorShift64 {
    /// Creates a PRNG from a nonzero seed (zero is mapped away).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A coin flip with probability `num/den` of true.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}
