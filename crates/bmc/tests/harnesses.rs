//! Positive harness runs: every family proves at the fast-tier bounds
//! with certification on, and the deep-tier paging bounds stay sound.

use hk_bmc::{harnesses, run_all, BmcConfig, BmcOutcome, Tier};

#[test]
fn all_harnesses_prove_at_fast_bounds_certified() {
    let cfg = BmcConfig::default();
    let reports = run_all(&cfg);
    assert_eq!(reports.len(), harnesses().len());
    for r in &reports {
        eprintln!(
            "[bmc] {:28} {:8} queries={} clauses={} {:?}",
            r.name,
            r.outcome.verdict(),
            r.queries,
            r.cnf_clauses,
            r.time
        );
        assert!(
            matches!(r.outcome, BmcOutcome::Proved),
            "{} did not prove: {:?}",
            r.name,
            r.outcome
        );
        assert!(r.unsat_queries >= 1, "{} issued no unsat query", r.name);
        assert_eq!(
            r.certified_unsat, r.unsat_queries,
            "{} has uncertified unsat answers",
            r.name
        );
        // A property the term simplifier folds to `true` reaches the
        // solver as an empty CNF; only real searches log DRAT steps.
        assert!(
            r.proof_steps > 0 || r.cnf_clauses == 0,
            "{} logged no proof",
            r.name
        );
    }
}

#[test]
fn tlb_proves_at_deep_bounds() {
    // The TLB family is walk-table-free, so its deep tier is cheap
    // enough for tier-1; the other families' deep bounds run nightly
    // via `bench_incremental --bmc --deep`.
    let cfg = BmcConfig {
        tier: Tier::Deep,
        only: Some(vec![
            "tlb_coherence".into(),
            "tlb_flush_from_scratch".into(),
        ]),
        ..BmcConfig::default()
    };
    for r in run_all(&cfg) {
        assert!(
            matches!(r.outcome, BmcOutcome::Proved),
            "{} did not prove at deep bounds: {:?}",
            r.name,
            r.outcome
        );
    }
}
