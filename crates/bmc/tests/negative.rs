//! Negative fixtures: each seeded bug must be caught by its target
//! harness with a concrete, human-readable counterexample.
//!
//! These tests are the harnesses' smoke detectors — they demonstrate
//! that the properties have teeth by planting one realistic defect per
//! family and checking the solver finds a witness for it.

use hk_bmc::{run_all, BmcConfig, BmcOutcome, SeededBug};

/// Runs one harness with `bug` planted and returns the counterexample
/// text, failing the test on any other outcome.
fn catch(bug: SeededBug, harness: &str, expect: &[&str]) -> String {
    let cfg = BmcConfig {
        seeded_bug: Some(bug),
        only: Some(vec![harness.to_string()]),
        ..BmcConfig::default()
    };
    let reports = run_all(&cfg);
    assert_eq!(
        reports.len(),
        1,
        "only-filter selected {} harnesses",
        reports.len()
    );
    let r = &reports[0];
    match &r.outcome {
        BmcOutcome::Counterexample(text) => {
            assert!(
                !text.is_empty(),
                "{harness} produced an empty counterexample"
            );
            for e in expect {
                assert!(
                    text.contains(e),
                    "{harness} counterexample does not mention {e:?}:\n{text}"
                );
            }
            eprintln!("[bmc:negative] {harness} caught {bug:?}:\n{text}");
            text.clone()
        }
        other => panic!("{harness} with {bug:?} should find a counterexample, got {other:?}"),
    }
}

#[test]
fn off_by_one_level_index_is_caught() {
    // The bugged walker reads each level's index one level too low; the
    // spec-agreement harness must exhibit concrete tables and a VA
    // where the two walks diverge.
    catch(
        SeededBug::PagingLevelOffByOne,
        "paging_walk_agrees_spec",
        &["paging counterexample", "concrete page tables", "root_pn="],
    );
}

#[test]
fn skipped_shootdown_is_caught() {
    // Without the remap's flush_page, a stale pre-remap entry can
    // survive and the probe hit disagrees with the current walk.
    catch(
        SeededBug::TlbFlushSkip,
        "tlb_coherence",
        &["tlb counterexample trace", "remap_va=", "probe vp="],
    );
}

#[test]
fn widened_grant_is_caught() {
    // Dropping the protected-memory-region check lets a device frame
    // resolve into kernel RAM.
    catch(
        SeededBug::IommuGrantWiden,
        "iommu_dma_confinement",
        &[
            "iommu counterexample",
            "device table",
            "concrete page tables",
        ],
    );
}

#[test]
fn header_before_data_is_caught() {
    // Publishing the commit header before the log payload is durable
    // lets a crash replay garbage into the data region — a torn state
    // neither pre- nor post-commit.
    let text = catch(
        SeededBug::JournalHeaderFirst,
        "fslog_crash_atomicity",
        &["fs-log counterexample", "Header", "recovered data region"],
    );
    // The witness must actually crash mid-schedule (a crash at 0 or
    // past the end could not distinguish the orders).
    assert!(
        text.contains("crash after write"),
        "no crash point in:\n{text}"
    );
}

#[test]
fn bugs_do_not_leak_into_other_families() {
    // A planted paging bug must not perturb the fs-log family (and vice
    // versa): the seeding is routed per family, so unrelated harnesses
    // still prove.
    let cfg = BmcConfig {
        seeded_bug: Some(SeededBug::PagingLevelOffByOne),
        only: Some(vec![
            "tlb_coherence".to_string(),
            "iommu_dma_confinement".to_string(),
        ]),
        ..BmcConfig::default()
    };
    for r in run_all(&cfg) {
        assert!(
            matches!(r.outcome, BmcOutcome::Proved),
            "{} was perturbed by an unrelated seeded bug: {:?}",
            r.name,
            r.outcome
        );
    }
}
