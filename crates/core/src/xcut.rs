//! Theorem 2: the state-machine specification satisfies the declarative
//! specification (paper §3.1, Definition 2).
//!
//! For every trap handler's specified transition `f_spec` and the
//! conjunction `P` of all declarative properties, check that
//! `P(s) => P(f_spec(s, x))` by refuting `P(s) && !P(f_spec(s, x))`.
//! The properties are checked as one mutually-supporting conjunction and
//! reported individually through probe terms.
//!
//! The memory-isolation statement (paper Property 5) is a *consequence*
//! of the conjunction, checked once per state rather than per
//! transition: `P(s) && walk-assumptions && !walk-conclusion` must be
//! unsatisfiable.

use std::time::{Duration, Instant};

use hk_abi::{KernelParams, Sysno};
use hk_smt::{Ctx, SatResult, Solver, SolverConfig, Sort, TermId};
use hk_spec::decl::{all_properties, isolation_lemma, DeclProperty};
use hk_spec::{spec_transition, GlobalShape, SpecState};

/// Outcome of checking one property against one transition.
#[derive(Debug)]
pub enum PropertyOutcome {
    /// Preserved.
    Holds,
    /// Violated; carries the minimized counterexample rendering.
    Violated(String),
    /// Solver gave up.
    Unknown,
}

impl PropertyOutcome {
    /// True if the property holds.
    pub fn holds(&self) -> bool {
        matches!(self, PropertyOutcome::Holds)
    }
}

/// Report for one (handler, property-set) check.
#[derive(Debug)]
pub struct PropertyReport {
    /// The transition checked.
    pub sysno: Sysno,
    /// Names of violated properties (empty = all preserved).
    pub violated: Vec<String>,
    /// Overall verdict.
    pub outcome: PropertyOutcome,
    /// Wall-clock time.
    pub time: Duration,
    /// SAT conflicts.
    pub conflicts: u64,
}

/// Checks that every declarative property is preserved by `sysno`'s
/// specified transition.
pub fn check_transition(
    shapes: &[GlobalShape],
    params: KernelParams,
    sysno: Sysno,
    solver_config: &SolverConfig,
) -> PropertyReport {
    check_transition_with(shapes, params, sysno, &all_properties(), solver_config)
}

/// Like [`check_transition`] with an explicit property set (used by the
/// bug-injection experiments to isolate single properties).
pub fn check_transition_with(
    shapes: &[GlobalShape],
    params: KernelParams,
    sysno: Sysno,
    props: &[DeclProperty],
    solver_config: &SolverConfig,
) -> PropertyReport {
    let start = Instant::now();
    let mut ctx = Ctx::new();
    let mut st0 = SpecState::fresh(&mut ctx, shapes, params);
    let p_pre = hk_spec::decl::conjunction(&mut ctx, &mut st0, props);
    let args: Vec<TermId> = (0..sysno.arg_count())
        .map(|i| ctx.var(format!("arg{i}"), Sort::Bv(64)))
        .collect();
    let mut post = st0.clone();
    let _ret = spec_transition(&mut ctx, &mut post, sysno, &args);
    let probes: Vec<(String, TermId)> = props
        .iter()
        .map(|p| (p.name.to_string(), (p.build)(&mut ctx, &mut post)))
        .collect();
    let post_terms: Vec<TermId> = probes.iter().map(|(_, t)| *t).collect();
    let p_post = ctx.and(&post_terms);
    let violated_cond = ctx.not(p_post);
    let mut solver = Solver::with_config(solver_config.clone());
    solver.assert(&mut ctx, p_pre);
    solver.assert(&mut ctx, violated_cond);
    let (outcome, violated) = match solver.check(&mut ctx) {
        SatResult::Unsat | SatResult::StaticallyDischarged => (PropertyOutcome::Holds, Vec::new()),
        SatResult::Unknown => (PropertyOutcome::Unknown, Vec::new()),
        SatResult::Sat(model) => {
            let violated: Vec<String> = probes
                .iter()
                .filter(|(_, t)| model.eval_bool(&ctx, *t) == Some(false))
                .map(|(n, _)| n.clone())
                .collect();
            let tc = crate::testgen::TestCase::from_model(&ctx, &model, &st0, sysno, &args);
            (PropertyOutcome::Violated(tc.display_minimized()), violated)
        }
    };
    PropertyReport {
        sysno,
        violated,
        outcome,
        time: start.elapsed(),
        conflicts: solver.stats.conflicts,
    }
}

/// Proves the memory-isolation lemma (paper Property 5): any state
/// satisfying the declarative conjunction admits no 4-level walk that
/// resolves outside the walking process's own frames.
pub fn check_isolation(
    shapes: &[GlobalShape],
    params: KernelParams,
    solver_config: &SolverConfig,
) -> (PropertyOutcome, Duration) {
    let start = Instant::now();
    let mut ctx = Ctx::new();
    let mut st = SpecState::fresh(&mut ctx, shapes, params);
    let props = all_properties();
    let p = hk_spec::decl::conjunction(&mut ctx, &mut st, &props);
    let (assumption, conclusion) = isolation_lemma(&mut ctx, &mut st);
    let bad = ctx.not(conclusion);
    let mut solver = Solver::with_config(solver_config.clone());
    solver.assert(&mut ctx, p);
    solver.assert(&mut ctx, assumption);
    solver.assert(&mut ctx, bad);
    let outcome = match solver.check(&mut ctx) {
        SatResult::Unsat | SatResult::StaticallyDischarged => PropertyOutcome::Holds,
        SatResult::Unknown => PropertyOutcome::Unknown,
        SatResult::Sat(model) => {
            let mut ctx2 = Ctx::new();
            let _ = &mut ctx2;
            PropertyOutcome::Violated(model.display_relevant(&ctx, solver.assertions()))
        }
    };
    (outcome, start.elapsed())
}

/// Deprecated single-entry shim kept for API stability.
pub fn check_property() {}
