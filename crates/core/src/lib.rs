//! The push-button verifier — the paper's headline artifact.
//!
//! Two theorems (paper §2.4):
//!
//! * **Theorem 1 (refinement)**, [`refine`]: for every trap handler, the
//!   HIR implementation refines the state-machine specification — it is
//!   free of undefined behaviour, returns the specified value, produces
//!   the specified state, and preserves the representation invariant,
//!   starting from any state satisfying that invariant.
//! * **Theorem 2 (crosscutting)**, [`xcut`]: every declarative property
//!   is preserved by every specified transition.
//!
//! When a proof fails, the solver's model becomes a **concrete,
//! replayable test case** ([`testgen`]): the kernel state and arguments
//! that trigger the bug, which the harness can run through the actual
//! interpreter to confirm — the paper's §2.4 debugging workflow.
//!
//! [`driver`] orchestrates all 50 handlers, optionally in parallel (the
//! paper reports 15 minutes on 8 cores vs 45 single-core).
//!
//! [`bmc`] is the residue phase: bounded model checking of the trusted
//! substrate *below* the state machine — the page walker, TLB, IOMMU,
//! and crash-safe fs log — through the `hk-bmc` harnesses, reported on
//! the same event stream.

pub mod bmc;
pub mod driver;
pub mod event;
pub mod refine;
pub mod testgen;
pub mod xcut;

pub use bmc::{run_bmc, BmcReport};
pub use driver::{verify_all, verify_image, VerifyConfig, VerifyReport};
pub use event::{EventSink, PhaseStats, VerifyEvent};
pub use refine::{verify_handler, HandlerOutcome, HandlerReport};
pub use testgen::TestCase;
pub use xcut::{check_property, PropertyOutcome, PropertyReport};
