//! Verification progress events.
//!
//! Both driver paths (sequential and parallel) report progress through a
//! single [`EventSink`] rather than ad-hoc `eprintln!` calls, so front
//! ends — the CLI example, tests, future TUIs — observe the exact same
//! stream regardless of thread count. The parallel path buffers finished
//! handlers and emits their events in submission order, so a run with
//! `threads = 8` produces an event stream identical to `threads = 1`.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use hk_abi::Sysno;
use hk_smt::CacheStats;

/// Per-handler phase timing and solver-cache counters, accumulated over
/// every solver query the handler issues (UB query + refinement
/// batches).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseStats {
    /// Symbolic execution (handler body + both invariant evaluations).
    pub symx_time: Duration,
    /// Term-to-CNF encoding (Ackermann reduction + Tseitin bit-blast).
    pub encode_time: Duration,
    /// Ackermann reduction share of `encode_time`.
    pub ack_time: Duration,
    /// Bit-blasting share of `encode_time`.
    pub bitblast_time: Duration,
    /// CDCL search.
    pub solve_time: Duration,
    /// Solver queries issued.
    pub queries: u64,
    /// Queries answered from the verification-condition cache.
    pub cache_hits: u64,
    /// Queries that had to be solved.
    pub cache_misses: u64,
    /// Queries answered Unsat (the verdicts certification re-checks).
    pub unsat_queries: u64,
    /// Unsat answers confirmed by the independent proof checker (or
    /// vacuously, for trivially-false assertion sets).
    pub certified_unsat: u64,
    /// DRAT proofs actually replayed by the checker.
    pub proofs_checked: u64,
    /// DRAT steps (inputs + lemmas + deletions) produced by the SAT core.
    pub proof_steps: u64,
    /// Bytes of binary-DRAT proof produced.
    pub proof_bytes: u64,
    /// Lemmas the backward checker had to RUP-verify (the trimmed core;
    /// the rest of the proof never feeds the final conflict).
    pub proof_core_steps: u64,
    /// Wall-clock time spent inside the independent checker.
    pub proof_check_time: Duration,
    /// CDCL restarts (Luby schedule).
    pub restarts: u64,
    /// Learnt-clause database reductions (LBD/activity policy).
    pub db_reductions: u64,
    /// Learnt clauses discarded by DB reduction.
    pub learnts_removed: u64,
    /// Clauses reclaimed by root-level GC after a scope `pop`.
    pub scope_gc_clauses: u64,
    /// Unit facts learnt by failed-literal probing.
    pub probe_units: u64,
    /// Clauses deleted by the subsumption inprocessing pass.
    pub subsumed: u64,
    /// Clauses strengthened by self-subsuming resolution.
    pub strengthened: u64,
    /// UNKNOWN verdicts retried with an escalated conflict budget.
    pub escalations: u64,
}

impl PhaseStats {
    /// Folds one `check` call's statistics into the accumulator.
    /// [`hk_smt::SolverStats`] is a per-call delta (reset at the start
    /// of every `check`), so absorbing after each call on a long-lived
    /// incremental solver counts every query exactly once.
    pub fn absorb(&mut self, stats: &hk_smt::SolverStats) {
        self.encode_time += stats.encode_time;
        self.ack_time += stats.ack_time;
        self.bitblast_time += stats.bitblast_time;
        self.solve_time += stats.solve_time;
        self.queries += 1;
        self.cache_hits += stats.cache_hits;
        self.cache_misses += stats.cache_misses;
        self.unsat_queries += stats.unsat_queries;
        self.certified_unsat += stats.certified_unsat;
        self.proofs_checked += stats.proofs_checked;
        self.proof_steps += stats.proof_steps;
        self.proof_bytes += stats.proof_bytes;
        self.proof_core_steps += stats.proof_core_steps;
        self.proof_check_time += stats.proof_check_time;
        self.restarts += stats.restarts;
        self.db_reductions += stats.db_reductions;
        self.learnts_removed += stats.learnts_removed;
        self.scope_gc_clauses += stats.scope_gc_clauses;
        self.probe_units += stats.probe_units;
        self.subsumed += stats.subsumed;
        self.strengthened += stats.strengthened;
        self.escalations += stats.escalations;
    }
}

/// One progress event from a verification run.
///
/// Events carry owned, cheap-to-clone data so sinks can forward them
/// across threads or serialize them without borrowing the run state.
#[derive(Debug, Clone)]
pub enum VerifyEvent {
    /// The static-analysis phase (finiteness + UB lints) has started.
    AnalysisStarted {
        /// Entry points analysed (handlers + the representation
        /// invariant).
        roots: usize,
    },
    /// One static-analysis finding. Emitted for allowlisted findings
    /// too, so suppressions stay visible in verification logs.
    AnalysisFinding {
        /// The finding, rendered as `file:line:col: code: message`.
        rendered: String,
        /// Whether an allowlist rule suppressed it.
        allowlisted: bool,
    },
    /// The static-analysis phase has finished.
    AnalysisFinished {
        /// Unsuppressed findings (nonzero fails the run).
        findings: usize,
        /// Allowlisted findings.
        allowlisted: usize,
        /// Loops with a proven constant bound, handed to the symbolic
        /// executor.
        loop_bounds: usize,
        /// Wall-clock time of the phase.
        time: Duration,
    },
    /// The run has started.
    RunStarted {
        /// Handlers selected for verification.
        total: usize,
        /// Worker threads.
        threads: usize,
    },
    /// A handler's verification has started (in the parallel path this
    /// is emitted in submission order, paired with its `HandlerFinished`).
    HandlerStarted {
        /// The handler.
        sysno: Sysno,
        /// Position in the run, `0..total`.
        index: usize,
        /// Handlers selected for verification.
        total: usize,
    },
    /// A handler's verification has finished.
    HandlerFinished {
        /// The handler.
        sysno: Sysno,
        /// Position in the run, `0..total`.
        index: usize,
        /// Handlers selected for verification.
        total: usize,
        /// Short verdict mnemonic (`ok`, `UB-BUG`, `REFINE-BUG`,
        /// `SYMX-FAIL`, `UNKNOWN`).
        verdict: &'static str,
        /// Wall-clock time for the handler.
        time: Duration,
        /// Execution paths explored.
        paths: usize,
        /// UB side checks discharged.
        side_checks: usize,
        /// Phase timings and cache counters (boxed: the stats block has
        /// grown far past every other variant's payload).
        phases: Box<PhaseStats>,
    },
    /// A handler's Unsat verdicts have been re-checked by the
    /// independent proof checker. Emitted directly after
    /// `HandlerFinished` when the run has `solver.certify` set; the
    /// driver has already enforced `certified == unsat_queries`, so
    /// this event reports a *confirmed* certification, never a partial
    /// one.
    HandlerCertified {
        /// The handler.
        sysno: Sysno,
        /// Position in the run, `0..total`.
        index: usize,
        /// Handlers selected for verification.
        total: usize,
        /// Unsat answers the handler's queries produced.
        unsat_queries: u64,
        /// How many were certified (equals `unsat_queries`).
        certified: u64,
        /// DRAT steps logged by the SAT core across the handler.
        proof_steps: u64,
        /// Steps the backward checker actually had to verify.
        core_steps: u64,
        /// Bytes of binary-DRAT proof produced.
        proof_bytes: u64,
        /// Time spent inside the independent checker.
        check_time: Duration,
    },
    /// The run has finished.
    RunFinished {
        /// Handlers that verified.
        verified: usize,
        /// Handlers selected for verification.
        total: usize,
        /// Total wall-clock time.
        total_time: Duration,
        /// Query-cache statistics at the end of the run.
        cache: CacheStats,
    },
}

type SinkFn = dyn Fn(&VerifyEvent) + Send + Sync;

/// Where verification progress goes.
///
/// Cloning is cheap (an `Arc`). The default sink discards events; use
/// [`EventSink::stderr`] for the classic one-line-per-handler progress
/// log, or [`EventSink::new`] to capture events programmatically.
#[derive(Clone, Default)]
pub struct EventSink(Option<Arc<SinkFn>>);

impl EventSink {
    /// A sink that invokes `f` for every event. `f` may be called from
    /// worker threads, but never concurrently for events of one run.
    pub fn new(f: impl Fn(&VerifyEvent) + Send + Sync + 'static) -> Self {
        EventSink(Some(Arc::new(f)))
    }

    /// A sink that discards all events.
    pub fn null() -> Self {
        EventSink(None)
    }

    /// A sink that logs one line per handler to stderr.
    pub fn stderr() -> Self {
        EventSink::new(|ev| match ev {
            VerifyEvent::AnalysisStarted { roots } => {
                eprintln!("[verify] static analysis over {roots} entry points");
            }
            VerifyEvent::AnalysisFinding {
                rendered,
                allowlisted,
            } => {
                let tag = if *allowlisted { " (allowlisted)" } else { "" };
                eprintln!("[verify] finding: {rendered}{tag}");
            }
            VerifyEvent::AnalysisFinished {
                findings,
                allowlisted,
                loop_bounds,
                time,
            } => {
                eprintln!(
                    "[verify] analysis done in {:.2}s: {findings} findings ({allowlisted} allowlisted), {loop_bounds} loop bounds",
                    time.as_secs_f64()
                );
            }
            VerifyEvent::RunStarted { total, threads } => {
                eprintln!("[verify] {total} handlers on {threads} thread(s)");
            }
            VerifyEvent::HandlerStarted { .. } => {}
            VerifyEvent::HandlerFinished {
                sysno,
                verdict,
                time,
                paths,
                side_checks,
                phases,
                ..
            } => {
                eprintln!(
                    "[verify] {:<24} {:<10} {:>6.1}s ({} paths, {} checks, {}/{} cached)",
                    sysno.func_name(),
                    verdict,
                    time.as_secs_f64(),
                    paths,
                    side_checks,
                    phases.cache_hits,
                    phases.queries
                );
            }
            VerifyEvent::HandlerCertified {
                sysno,
                unsat_queries,
                certified,
                proof_steps,
                core_steps,
                check_time,
                ..
            } => {
                eprintln!(
                    "[verify] {:<24} certified  {certified}/{unsat_queries} unsat ({proof_steps} proof steps, {core_steps} core, {:.2}s check)",
                    sysno.func_name(),
                    check_time.as_secs_f64()
                );
            }
            VerifyEvent::RunFinished {
                verified,
                total,
                total_time,
                cache,
            } => {
                eprintln!(
                    "[verify] done in {:.1}s: {verified}/{total} verified, cache {} hits / {} misses",
                    total_time.as_secs_f64(),
                    cache.hits,
                    cache.misses
                );
            }
        })
    }

    /// Emits one event (no-op for the null sink).
    pub fn emit(&self, ev: &VerifyEvent) {
        if let Some(f) = &self.0 {
            f(ev);
        }
    }
}

impl fmt::Debug for EventSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "EventSink(..)"
        } else {
            "EventSink(null)"
        })
    }
}
