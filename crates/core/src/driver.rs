//! Orchestration: verify all 50 handlers, optionally in parallel.
//!
//! Matches the paper's workflow (§6.3): one solver instance per handler,
//! embarrassingly parallel across cores.

use std::time::{Duration, Instant};

use hk_abi::{KernelParams, Sysno};
use hk_kernel::KernelImage;
use hk_smt::SolverConfig;
use hk_spec::shapes_of;
use hk_symx::SymxConfig;

use crate::refine::{verify_handler, HandlerReport, VerifyCtx};

/// Verification configuration.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Kernel size parameters (use [`KernelParams::verification`]).
    pub params: KernelParams,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Solver configuration.
    pub solver: SolverConfig,
    /// Symbolic execution configuration.
    pub symx: SymxConfig,
    /// Restrict to these handlers (empty = all 50).
    pub only: Vec<Sysno>,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            params: KernelParams::verification(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            solver: SolverConfig::default(),
            symx: SymxConfig::default(),
            only: Vec::new(),
        }
    }
}

/// Aggregate report.
#[derive(Debug)]
pub struct VerifyReport {
    /// Per-handler reports, in trap-number order.
    pub handlers: Vec<HandlerReport>,
    /// Total wall-clock time.
    pub total_time: Duration,
}

impl VerifyReport {
    /// True if every handler verified.
    pub fn all_verified(&self) -> bool {
        self.handlers.iter().all(|h| h.outcome.is_verified())
    }

    /// A rendered summary table.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>7} {:>9} {:>10} {:>9}",
            "handler", "verdict", "paths", "checks", "clauses", "time"
        );
        for h in &self.handlers {
            let verdict = match &h.outcome {
                crate::refine::HandlerOutcome::Verified => "ok",
                crate::refine::HandlerOutcome::UbBug { .. } => "UB!",
                crate::refine::HandlerOutcome::RefinementBug { .. } => "BUG!",
                crate::refine::HandlerOutcome::SymxFailed(_) => "symx!",
                crate::refine::HandlerOutcome::Unknown => "?",
            };
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>7} {:>9} {:>10} {:>8.2}s",
                h.sysno.func_name(),
                verdict,
                h.paths,
                h.side_checks,
                h.cnf_clauses,
                h.time.as_secs_f64()
            );
        }
        let _ = writeln!(
            out,
            "total: {:.1}s, {} / {} verified",
            self.total_time.as_secs_f64(),
            self.handlers
                .iter()
                .filter(|h| h.outcome.is_verified())
                .count(),
            self.handlers.len()
        );
        out
    }
}

/// Verifies the kernel (Theorem 1 for every selected handler).
///
/// # Panics
///
/// Panics if the kernel image fails to build (a build error, not a
/// verification result).
pub fn verify_all(config: &VerifyConfig) -> VerifyReport {
    let image = KernelImage::build(config.params).expect("kernel build");
    verify_image(&image, config)
}

/// Verifies an explicit (possibly deliberately broken) kernel image —
/// the entry point the bug-injection experiments use.
pub fn verify_image(image: &KernelImage, config: &VerifyConfig) -> VerifyReport {
    let start = Instant::now();
    let shapes = shapes_of(&image.module);
    let targets: Vec<Sysno> = if config.only.is_empty() {
        Sysno::ALL.to_vec()
    } else {
        config.only.clone()
    };
    let handler_fn = |s: Sysno| image.handler(s);
    let vctx = VerifyCtx {
        module: &image.module,
        shapes: &shapes,
        params: config.params,
        handler: &handler_fn,
        rep_invariant: image.rep_invariant,
        solver: config.solver.clone(),
        symx: config.symx,
    };
    let mut handlers: Vec<HandlerReport> = if config.threads <= 1 {
        targets
            .iter()
            .map(|&s| {
                let r = verify_handler(&vctx, s);
                eprintln!(
                    "[verify] {:<24} {:<10} {:>6.1}s ({} paths, {} checks)",
                    s.func_name(),
                    match &r.outcome {
                        crate::refine::HandlerOutcome::Verified => "ok",
                        crate::refine::HandlerOutcome::UbBug { .. } => "UB-BUG",
                        crate::refine::HandlerOutcome::RefinementBug { .. } => "REFINE-BUG",
                        crate::refine::HandlerOutcome::SymxFailed(_) => "SYMX-FAIL",
                        crate::refine::HandlerOutcome::Unknown => "UNKNOWN",
                    },
                    r.time.as_secs_f64(),
                    r.paths,
                    r.side_checks
                );
                r
            })
            .collect()
    } else {
        // Work-stealing via an atomic index over the target list.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..config.threads.min(targets.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    if i >= targets.len() {
                        break;
                    }
                    let report = verify_handler(&vctx, targets[i]);
                    results.lock().unwrap().push(report);
                });
            }
        });
        results.into_inner().unwrap()
    };
    handlers.sort_by_key(|h| h.sysno.number());
    VerifyReport {
        handlers,
        total_time: start.elapsed(),
    }
}
