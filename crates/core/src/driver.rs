//! Orchestration: verify all 50 handlers, optionally in parallel.
//!
//! Matches the paper's workflow (§6.3): one solver instance per handler,
//! embarrassingly parallel across cores. Both paths report through the
//! configured [`EventSink`] — the parallel path buffers finished
//! handlers and emits in submission order, so the event stream is
//! byte-identical regardless of thread count.
//!
//! Every run shares one content-addressed verification-condition cache
//! (a per-run cache is created when the configuration does not supply
//! one), so re-verifying an unchanged kernel image answers most queries
//! without touching the SAT solver.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hk_abi::{KernelParams, Sysno};
use hk_kernel::KernelImage;
use hk_smt::{CacheStats, CoreBudget, QueryCache, SolverConfig};
use hk_spec::shapes_of;
use hk_symx::SymxConfig;

use crate::event::{EventSink, VerifyEvent};
use crate::refine::{verify_handler, HandlerOutcome, HandlerReport, VerifyCtx};

/// Default capacity of the per-run verification-condition cache.
const DEFAULT_CACHE_CAPACITY: usize = 1 << 14;

/// Verification configuration.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Kernel size parameters (use [`KernelParams::verification`]).
    pub params: KernelParams,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Solver configuration. If `solver.cache` is `None`, `verify_image`
    /// installs a fresh per-run cache so refinement batches within one
    /// run can still share verdicts. `solver.incremental` (on by
    /// default) makes each handler reuse one solver across its UB query
    /// and every refinement batch — the invariant is encoded once and
    /// learnt clauses carry over; disable it to get the
    /// fresh-solver-per-query baseline.
    pub solver: SolverConfig,
    /// Symbolic execution configuration.
    pub symx: SymxConfig,
    /// Restrict to these handlers (empty = all 50).
    pub only: Vec<Sysno>,
    /// Progress events (defaults to one line per handler on stderr).
    pub events: EventSink,
    /// If set, the query cache is loaded from this file before the run
    /// and saved back afterwards, making verdicts persist across
    /// processes. Missing or corrupt snapshots are ignored.
    pub cache_snapshot: Option<PathBuf>,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            params: KernelParams::verification(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            solver: SolverConfig::default(),
            symx: SymxConfig::default(),
            only: Vec::new(),
            events: EventSink::stderr(),
            cache_snapshot: None,
        }
    }
}

/// Aggregate report.
#[derive(Debug)]
pub struct VerifyReport {
    /// Unsuppressed static-analysis findings (rendered with their
    /// HyperC source locations). Nonzero fails the run: a kernel that
    /// trips the finiteness or UB lints is not push-button verifiable.
    pub analysis_findings: Vec<String>,
    /// Loops the static analysis proved a constant bound for (the
    /// bounds themselves are consumed by the symbolic executor).
    pub loop_bounds: usize,
    /// Per-handler reports, in trap-number order.
    pub handlers: Vec<HandlerReport>,
    /// Total wall-clock time.
    pub total_time: Duration,
    /// Query-cache counters at the end of the run (lifetime totals of
    /// the cache object, which may span several runs).
    pub cache: CacheStats,
    /// Entries resident in the cache at the end of the run.
    pub cache_entries: usize,
}

impl VerifyReport {
    /// True if static analysis came back clean and every handler
    /// verified.
    pub fn all_verified(&self) -> bool {
        self.analysis_findings.is_empty() && self.handlers.iter().all(|h| h.outcome.is_verified())
    }

    /// Solver queries answered from the cache *during this run*.
    pub fn cache_hits(&self) -> u64 {
        self.handlers.iter().map(|h| h.phases.cache_hits).sum()
    }

    /// Solver queries that missed the cache *during this run*.
    pub fn cache_misses(&self) -> u64 {
        self.handlers.iter().map(|h| h.phases.cache_misses).sum()
    }

    /// Unsat answers across all handlers *during this run*.
    pub fn unsat_queries(&self) -> u64 {
        self.handlers.iter().map(|h| h.phases.unsat_queries).sum()
    }

    /// Unsat answers confirmed by the independent proof checker (or
    /// vacuously, for trivially-false queries) *during this run*.
    pub fn certified_unsat(&self) -> u64 {
        self.handlers.iter().map(|h| h.phases.certified_unsat).sum()
    }

    /// True when the run was certified: every Unsat answer re-checked.
    /// (Trivially false on uncertified runs, which certify nothing.)
    pub fn fully_certified(&self) -> bool {
        self.unsat_queries() > 0 && self.certified_unsat() == self.unsat_queries()
    }

    /// Cache hit rate over this run's queries (0.0 when no queries ran).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_hits();
        let total = hits + self.cache_misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// A rendered summary table.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for f in &self.analysis_findings {
            let _ = writeln!(out, "analysis: {f}");
        }
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>7} {:>9} {:>10} {:>9} {:>9}",
            "handler", "verdict", "paths", "checks", "clauses", "cached", "time"
        );
        for h in &self.handlers {
            let verdict = match &h.outcome {
                HandlerOutcome::Verified => "ok",
                HandlerOutcome::UbBug { .. } => "UB!",
                HandlerOutcome::RefinementBug { .. } => "BUG!",
                HandlerOutcome::SymxFailed(_) => "symx!",
                HandlerOutcome::Unknown => "?",
            };
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>7} {:>9} {:>10} {:>4}/{:<4} {:>8.2}s",
                h.sysno.func_name(),
                verdict,
                h.paths,
                h.side_checks,
                h.cnf_clauses,
                h.phases.cache_hits,
                h.phases.queries,
                h.time.as_secs_f64()
            );
        }
        let _ = writeln!(
            out,
            "total: {:.1}s, {} / {} verified",
            self.total_time.as_secs_f64(),
            self.handlers
                .iter()
                .filter(|h| h.outcome.is_verified())
                .count(),
            self.handlers.len()
        );
        let _ = writeln!(
            out,
            "cache: {} hits / {} misses this run ({:.0}% hit rate), {} entries resident",
            self.cache_hits(),
            self.cache_misses(),
            self.cache_hit_rate() * 100.0,
            self.cache_entries
        );
        if self.certified_unsat() > 0 {
            let (steps, core, bytes, check) =
                self.handlers
                    .iter()
                    .fold((0u64, 0u64, 0u64, Duration::ZERO), |(s, c, b, t), h| {
                        (
                            s + h.phases.proof_steps,
                            c + h.phases.proof_core_steps,
                            b + h.phases.proof_bytes,
                            t + h.phases.proof_check_time,
                        )
                    });
            let _ = writeln!(
                out,
                "proof: {}/{} unsat answers certified ({} DRAT steps, {} core, {} bytes, {:.2}s checking)",
                self.certified_unsat(),
                self.unsat_queries(),
                steps,
                core,
                bytes,
                check.as_secs_f64()
            );
        }
        let races: u64 = self.handlers.iter().map(|h| h.phases.races).sum();
        if races > 0 {
            let workers: u64 = self.handlers.iter().map(|h| h.phases.race_workers).sum();
            let shared: u64 = self
                .handlers
                .iter()
                .map(|h| h.phases.clauses_imported)
                .sum();
            let cubes: u64 = self.handlers.iter().map(|h| h.phases.cubes_solved).sum();
            let _ = writeln!(
                out,
                "portfolio: {races} races across {workers} workers, {shared} clauses imported, {cubes} cubes solved"
            );
        }
        let rewrites: u64 = self
            .handlers
            .iter()
            .map(|h| h.phases.simplify_rewrites)
            .sum();
        let discharged: u64 = self
            .handlers
            .iter()
            .map(|h| h.phases.statically_discharged)
            .sum();
        if rewrites > 0 || discharged > 0 {
            let dropped: u64 = self
                .handlers
                .iter()
                .map(|h| h.phases.simplify_coi_dropped)
                .sum();
            let time: Duration = self.handlers.iter().map(|h| h.phases.simplify_time).sum();
            let _ = writeln!(
                out,
                "simplify: {rewrites} rewrites, {dropped} conjuncts COI-dropped, {discharged} queries statically discharged ({:.2}s)",
                time.as_secs_f64()
            );
        }
        out
    }

    /// The report as a JSON document (machine-readable counterpart of
    /// [`VerifyReport::summary`]).
    ///
    /// Layout:
    ///
    /// ```json
    /// {
    ///   "total_time_s": 1.5,
    ///   "verified": 50, "total": 50,
    ///   "cache": { "hits": 120, "misses": 8, "hit_rate": 0.9375, "entries": 128 },
    ///   "proof": { "unsat_queries": 96, "certified_unsat": 96, "proofs_checked": 94,
    ///              "steps": 48211, "core_steps": 1204, "bytes": 190331,
    ///              "check_time_s": 0.4 },
    ///   "sat": { "restarts": 40, "db_reductions": 3, "learnts_removed": 1200,
    ///            "scope_gc_clauses": 800, "probe_units": 12, "subsumed": 30,
    ///            "strengthened": 9, "escalations": 0 },
    ///   "parallel": { "races": 2, "race_workers": 7,
    ///                 "wins": { "base": 1, "flip-reduce": 0, "invert-phase": 1,
    ///                           "no-restarts": 0, "cube": 0 },
    ///                 "clauses_exported": 310, "clauses_imported": 280,
    ///                 "cubes_total": 8, "cubes_solved": 8 },
    ///   "simplify": { "terms": 5200, "rewrites": 140, "bits_pinned": 96,
    ///                 "conjuncts_before": 210, "conjuncts_after": 180,
    ///                 "coi_dropped": 12, "statically_discharged": 2,
    ///                 "time_s": 0.05 },
    ///   "handlers": [
    ///     { "name": "sys_dup", "trap": 23, "verdict": "verified", "detail": null,
    ///       "paths": 4, "side_checks": 9, "cnf_clauses": 1042, "conflicts": 3,
    ///       "time_s": 0.2,
    ///       "phases": { "symx_s": 0.1, "encode_s": 0.05, "ack_s": 0.01,
    ///                   "bitblast_s": 0.04, "solve_s": 0.05, "queries": 6,
    ///                   "cache_hits": 5, "cache_misses": 1 },
    ///       "proof": { "unsat_queries": 6, "certified_unsat": 6, "proofs_checked": 6,
    ///                  "steps": 3120, "core_steps": 88, "bytes": 12044,
    ///                  "check_time_s": 0.02 } }
    ///   ]
    /// }
    /// ```
    ///
    /// The `proof` sections are always present; on uncertified runs
    /// every counter except `unsat_queries` is zero.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"total_time_s\": {:.6},",
            self.total_time.as_secs_f64()
        );
        let _ = writeln!(
            out,
            "  \"verified\": {},",
            self.handlers
                .iter()
                .filter(|h| h.outcome.is_verified())
                .count()
        );
        let _ = writeln!(out, "  \"total\": {},", self.handlers.len());
        let findings: Vec<String> = self
            .analysis_findings
            .iter()
            .map(|f| format!("\"{}\"", json_escape(f)))
            .collect();
        let _ = writeln!(
            out,
            "  \"analysis\": {{ \"findings\": [{}], \"loop_bounds\": {} }},",
            findings.join(", "),
            self.loop_bounds
        );
        let _ = writeln!(
            out,
            "  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.6}, \"entries\": {} }},",
            self.cache_hits(),
            self.cache_misses(),
            self.cache_hit_rate(),
            self.cache_entries
        );
        let (steps, core, bytes, checked, check_time) = self.handlers.iter().fold(
            (0u64, 0u64, 0u64, 0u64, Duration::ZERO),
            |(s, c, b, n, t), h| {
                (
                    s + h.phases.proof_steps,
                    c + h.phases.proof_core_steps,
                    b + h.phases.proof_bytes,
                    n + h.phases.proofs_checked,
                    t + h.phases.proof_check_time,
                )
            },
        );
        let _ = writeln!(
            out,
            "  \"proof\": {{ \"unsat_queries\": {}, \"certified_unsat\": {}, \
             \"proofs_checked\": {checked}, \"steps\": {steps}, \"core_steps\": {core}, \
             \"bytes\": {bytes}, \"check_time_s\": {:.6} }},",
            self.unsat_queries(),
            self.certified_unsat(),
            check_time.as_secs_f64()
        );
        let sat = self.handlers.iter().fold([0u64; 8], |acc, h| {
            let p = &h.phases;
            [
                acc[0] + p.restarts,
                acc[1] + p.db_reductions,
                acc[2] + p.learnts_removed,
                acc[3] + p.scope_gc_clauses,
                acc[4] + p.probe_units,
                acc[5] + p.subsumed,
                acc[6] + p.strengthened,
                acc[7] + p.escalations,
            ]
        });
        let _ = writeln!(
            out,
            "  \"sat\": {{ \"restarts\": {}, \"db_reductions\": {}, \"learnts_removed\": {}, \
             \"scope_gc_clauses\": {}, \"probe_units\": {}, \"subsumed\": {}, \
             \"strengthened\": {}, \"escalations\": {} }},",
            sat[0], sat[1], sat[2], sat[3], sat[4], sat[5], sat[6], sat[7]
        );
        let par = self.handlers.iter().fold(
            (
                0u64,
                0u64,
                [0u64; hk_smt::STRATEGY_NAMES.len()],
                0u64,
                0u64,
                0u64,
                0u64,
            ),
            |(r, w, mut wins, ex, im, ct, cs), h| {
                let p = &h.phases;
                for (t, v) in wins.iter_mut().zip(p.race_wins.iter()) {
                    *t += v;
                }
                (
                    r + p.races,
                    w + p.race_workers,
                    wins,
                    ex + p.clauses_exported,
                    im + p.clauses_imported,
                    ct + p.cubes_total,
                    cs + p.cubes_solved,
                )
            },
        );
        let wins_json: Vec<String> = hk_smt::STRATEGY_NAMES
            .iter()
            .zip(par.2.iter())
            .map(|(n, w)| format!("\"{n}\": {w}"))
            .collect();
        let _ = writeln!(
            out,
            "  \"parallel\": {{ \"races\": {}, \"race_workers\": {}, \"wins\": {{ {} }}, \
             \"clauses_exported\": {}, \"clauses_imported\": {}, \"cubes_total\": {}, \
             \"cubes_solved\": {} }},",
            par.0,
            par.1,
            wins_json.join(", "),
            par.3,
            par.4,
            par.5,
            par.6
        );
        let simp = self
            .handlers
            .iter()
            .fold(([0u64; 7], Duration::ZERO), |(acc, t), h| {
                let p = &h.phases;
                (
                    [
                        acc[0] + p.simplify_terms,
                        acc[1] + p.simplify_rewrites,
                        acc[2] + p.simplify_bits_pinned,
                        acc[3] + p.simplify_conjuncts_before,
                        acc[4] + p.simplify_conjuncts_after,
                        acc[5] + p.simplify_coi_dropped,
                        acc[6] + p.statically_discharged,
                    ],
                    t + p.simplify_time,
                )
            });
        let _ = writeln!(
            out,
            "  \"simplify\": {{ \"terms\": {}, \"rewrites\": {}, \"bits_pinned\": {}, \
             \"conjuncts_before\": {}, \"conjuncts_after\": {}, \"coi_dropped\": {}, \
             \"statically_discharged\": {}, \"time_s\": {:.6} }},",
            simp.0[0],
            simp.0[1],
            simp.0[2],
            simp.0[3],
            simp.0[4],
            simp.0[5],
            simp.0[6],
            simp.1.as_secs_f64()
        );
        out.push_str("  \"handlers\": [\n");
        for (i, h) in self.handlers.iter().enumerate() {
            let (verdict, detail) = match &h.outcome {
                HandlerOutcome::Verified => ("verified", None),
                HandlerOutcome::UbBug { kind, .. } => ("ub_bug", Some(kind.as_str())),
                HandlerOutcome::RefinementBug { detail, .. } => {
                    ("refinement_bug", Some(detail.as_str()))
                }
                HandlerOutcome::SymxFailed(e) => ("symx_failed", Some(e.as_str())),
                HandlerOutcome::Unknown => ("unknown", None),
            };
            let detail_json = match detail {
                Some(d) => format!("\"{}\"", json_escape(d)),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "    {{ \"name\": \"{}\", \"trap\": {}, \"verdict\": \"{}\", \"detail\": {}, \
                 \"paths\": {}, \"side_checks\": {}, \"cnf_clauses\": {}, \"conflicts\": {}, \
                 \"time_s\": {:.6}, \"phases\": {{ \"symx_s\": {:.6}, \"encode_s\": {:.6}, \
                 \"ack_s\": {:.6}, \"bitblast_s\": {:.6}, \"solve_s\": {:.6}, \"queries\": {}, \
                 \"cache_hits\": {}, \"cache_misses\": {} }}, \
                 \"proof\": {{ \"unsat_queries\": {}, \"certified_unsat\": {}, \
                 \"proofs_checked\": {}, \"steps\": {}, \"core_steps\": {}, \"bytes\": {}, \
                 \"check_time_s\": {:.6} }}, \
                 \"sat\": {{ \"restarts\": {}, \"db_reductions\": {}, \"learnts_removed\": {}, \
                 \"scope_gc_clauses\": {}, \"probe_units\": {}, \"subsumed\": {}, \
                 \"strengthened\": {}, \"escalations\": {} }}, \
                 \"parallel\": {{ \"races\": {}, \"race_workers\": {}, \"clauses_exported\": {}, \
                 \"clauses_imported\": {}, \"cubes_total\": {}, \"cubes_solved\": {} }}, \
                 \"simplify\": {{ \"terms\": {}, \"rewrites\": {}, \"bits_pinned\": {}, \
                 \"conjuncts_before\": {}, \"conjuncts_after\": {}, \"coi_dropped\": {}, \
                 \"statically_discharged\": {}, \"time_s\": {:.6} }} }}",
                json_escape(h.sysno.func_name()),
                h.sysno.number(),
                verdict,
                detail_json,
                h.paths,
                h.side_checks,
                h.cnf_clauses,
                h.conflicts,
                h.time.as_secs_f64(),
                h.phases.symx_time.as_secs_f64(),
                h.phases.encode_time.as_secs_f64(),
                h.phases.ack_time.as_secs_f64(),
                h.phases.bitblast_time.as_secs_f64(),
                h.phases.solve_time.as_secs_f64(),
                h.phases.queries,
                h.phases.cache_hits,
                h.phases.cache_misses,
                h.phases.unsat_queries,
                h.phases.certified_unsat,
                h.phases.proofs_checked,
                h.phases.proof_steps,
                h.phases.proof_core_steps,
                h.phases.proof_bytes,
                h.phases.proof_check_time.as_secs_f64(),
                h.phases.restarts,
                h.phases.db_reductions,
                h.phases.learnts_removed,
                h.phases.scope_gc_clauses,
                h.phases.probe_units,
                h.phases.subsumed,
                h.phases.strengthened,
                h.phases.escalations,
                h.phases.races,
                h.phases.race_workers,
                h.phases.clauses_exported,
                h.phases.clauses_imported,
                h.phases.cubes_total,
                h.phases.cubes_solved,
                h.phases.simplify_terms,
                h.phases.simplify_rewrites,
                h.phases.simplify_bits_pinned,
                h.phases.simplify_conjuncts_before,
                h.phases.simplify_conjuncts_after,
                h.phases.simplify_coi_dropped,
                h.phases.statically_discharged,
                h.phases.simplify_time.as_secs_f64()
            );
            out.push_str(if i + 1 < self.handlers.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes a string for embedding in a JSON literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Verifies the kernel (Theorem 1 for every selected handler).
///
/// # Panics
///
/// Panics if the kernel image fails to build (a build error, not a
/// verification result).
pub fn verify_all(config: &VerifyConfig) -> VerifyReport {
    let image = KernelImage::build(config.params).expect("kernel build");
    verify_image(&image, config)
}

fn emit_finished(
    events: &EventSink,
    index: usize,
    total: usize,
    report: &HandlerReport,
    certify: bool,
) {
    events.emit(&VerifyEvent::HandlerFinished {
        sysno: report.sysno,
        index,
        total,
        verdict: report.verdict(),
        time: report.time,
        paths: report.paths,
        side_checks: report.side_checks,
        phases: Box::new(report.phases),
    });
    if report.phases.races > 0 {
        // Reported only when the handler actually raced: whether a
        // query races depends on spare budget capacity at the moment it
        // runs, so this event is timing-dependent by design and stays
        // out of determinism comparisons (the verdicts above do not).
        let p = &report.phases;
        events.emit(&VerifyEvent::PortfolioStarted {
            sysno: report.sysno,
            index,
            total,
            races: p.races,
            workers: p.race_workers,
            wins: p.race_wins,
            clauses_exported: p.clauses_exported,
            clauses_imported: p.clauses_imported,
            cubes_total: p.cubes_total,
            cubes_solved: p.cubes_solved,
        });
    }
    if certify {
        // In certified mode every Unsat answer must have been confirmed
        // by the independent checker (or vacuously, for trivially-false
        // queries). The solver already panics when a check *fails*; this
        // guards the accounting — an Unsat that slipped past
        // certification entirely would silently weaken the trust story.
        let p = &report.phases;
        assert_eq!(
            p.certified_unsat,
            p.unsat_queries,
            "{}: {} of {} Unsat answers left uncertified",
            report.sysno.func_name(),
            p.unsat_queries - p.certified_unsat,
            p.unsat_queries
        );
        events.emit(&VerifyEvent::HandlerCertified {
            sysno: report.sysno,
            index,
            total,
            unsat_queries: p.unsat_queries,
            certified: p.certified_unsat,
            proof_steps: p.proof_steps,
            core_steps: p.proof_core_steps,
            proof_bytes: p.proof_bytes,
            check_time: p.proof_check_time,
        });
    }
}

/// Verifies an explicit (possibly deliberately broken) kernel image —
/// the entry point the bug-injection experiments use.
pub fn verify_image(image: &KernelImage, config: &VerifyConfig) -> VerifyReport {
    let start = Instant::now();
    let shapes = shapes_of(&image.module);
    let targets: Vec<Sysno> = if config.only.is_empty() {
        Sysno::ALL.to_vec()
    } else {
        config.only.clone()
    };
    // Every handler in the run shares one cache; if the caller did not
    // provide a long-lived one, a per-run cache still lets refinement
    // batches reuse each other's verdicts.
    let mut solver_config = config.solver.clone();
    let cache = match &solver_config.cache {
        Some(c) => c.clone(),
        None => {
            let c = Arc::new(QueryCache::new(DEFAULT_CACHE_CAPACITY));
            solver_config.cache = Some(c.clone());
            c
        }
    };
    if let Some(path) = &config.cache_snapshot {
        let _ = cache.load_snapshot(path);
    }
    let events = &config.events;
    // ---- Static-analysis phase (paper's finite-interface discipline,
    // checked up front): finiteness, definite initialization, and UB
    // lints over every selected handler plus the representation
    // invariant. Findings fail the run; the proven loop bounds feed the
    // symbolic executor so it asserts unrolling limits instead of
    // probing the solver at every back edge.
    let analysis_start = Instant::now();
    let mut roots: Vec<hk_hir::FuncId> = targets.iter().map(|&s| image.handler(s)).collect();
    roots.push(image.rep_invariant);
    roots.sort_unstable();
    roots.dedup();
    events.emit(&VerifyEvent::AnalysisStarted { roots: roots.len() });
    let analysis_cfg = hk_kernel::analysis_config(&image.params);
    let analysis = hk_hir::analysis::analyze_module(&image.module, &roots, &analysis_cfg);
    let mut analysis_findings = Vec::new();
    let mut allowlisted = 0usize;
    for d in &analysis.diagnostics {
        let rendered = d.render(&image.module);
        events.emit(&VerifyEvent::AnalysisFinding {
            rendered: rendered.clone(),
            allowlisted: d.allowlisted,
        });
        if d.allowlisted {
            allowlisted += 1;
        } else {
            analysis_findings.push(rendered);
        }
    }
    events.emit(&VerifyEvent::AnalysisFinished {
        findings: analysis_findings.len(),
        allowlisted,
        loop_bounds: analysis.bounds.len(),
        time: analysis_start.elapsed(),
    });
    let bounds = analysis.bounds;
    let handler_fn = |s: Sysno| image.handler(s);
    // One core budget for the whole run, shared between the handler
    // pool and intra-query portfolio racing: handler workers hold one
    // core each while they have work and release it when their queue
    // runs dry, so late hard queries race across the freed cores. A
    // single-threaded run gets no budget and stays strictly sequential.
    let budget = if config.threads > 1 {
        Some(Arc::new(CoreBudget::new(config.threads)))
    } else {
        None
    };
    let vctx = VerifyCtx {
        module: &image.module,
        shapes: &shapes,
        params: config.params,
        handler: &handler_fn,
        rep_invariant: image.rep_invariant,
        solver: solver_config,
        symx: config.symx,
        bounds: Some(&bounds),
        budget: budget.clone(),
    };
    let total = targets.len();
    let certify = config.solver.certify;
    events.emit(&VerifyEvent::RunStarted {
        total,
        threads: config.threads.max(1),
    });
    let mut handlers: Vec<HandlerReport> = if config.threads <= 1 {
        targets
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                events.emit(&VerifyEvent::HandlerStarted {
                    sysno: s,
                    index: i,
                    total,
                });
                let r = verify_handler(&vctx, s);
                emit_finished(events, i, total, &r, certify);
                r
            })
            .collect()
    } else {
        // Work-stealing via an atomic index over the target list.
        // Finished reports land in per-index slots; whichever worker
        // completes the next-in-order slot drains it (and any ready
        // successors) while holding the lock, so events appear in
        // exactly the sequential order.
        struct Drain {
            slots: Vec<Option<HandlerReport>>,
            emitted: Vec<HandlerReport>,
            next_emit: usize,
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let drain = std::sync::Mutex::new(Drain {
            slots: (0..total).map(|_| None).collect(),
            emitted: Vec::with_capacity(total),
            next_emit: 0,
        });
        let workers = config.threads.min(total);
        // Handler workers occupy `workers` cores; whatever the budget
        // has left over (threads > targets) is immediately available to
        // query-level racing.
        if let Some(b) = &budget {
            let got = b.try_acquire(workers);
            debug_assert_eq!(got, workers);
        }
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    if i >= total {
                        // This worker is done for good: hand its core to
                        // the portfolio so still-running whales can race
                        // wider.
                        if let Some(b) = budget.as_ref() {
                            b.release(1);
                        }
                        break;
                    }
                    let report = verify_handler(&vctx, targets[i]);
                    let mut d = drain.lock().unwrap();
                    d.slots[i] = Some(report);
                    while d.next_emit < total {
                        let idx = d.next_emit;
                        let Some(r) = d.slots[idx].take() else { break };
                        events.emit(&VerifyEvent::HandlerStarted {
                            sysno: r.sysno,
                            index: idx,
                            total,
                        });
                        emit_finished(events, idx, total, &r, certify);
                        d.emitted.push(r);
                        d.next_emit += 1;
                    }
                });
            }
        });
        drain.into_inner().unwrap().emitted
    };
    handlers.sort_by_key(|h| h.sysno.number());
    if let Some(path) = &config.cache_snapshot {
        let _ = cache.save_snapshot(path);
    }
    let report = VerifyReport {
        analysis_findings,
        loop_bounds: bounds.len(),
        handlers,
        total_time: start.elapsed(),
        cache: cache.stats(),
        cache_entries: cache.len(),
    };
    events.emit(&VerifyEvent::RunFinished {
        verified: report
            .handlers
            .iter()
            .filter(|h| h.outcome.is_verified())
            .count(),
        total,
        total_time: report.total_time,
        cache: report.cache,
    });
    report
}
