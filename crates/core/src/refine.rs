//! Theorem 1: specification–implementation refinement (paper §3.1,
//! Definition 1).
//!
//! For each handler `f`, starting from a fully symbolic state `s`
//! constrained only by the representation invariant `I(s)`:
//!
//! 1. **UB query**: some execution path reaches undefined behaviour —
//!    must be UNSAT.
//! 2. **Refinement query**: some path ends with a return value, state
//!    cell, or invariant differing from the specification — must be
//!    UNSAT.
//!
//! Because the symbolic executor and the specification share the same
//! state representation (one uninterpreted function per kernel field),
//! equivalence is literal cell-by-cell equality and the equivalence
//! function of §2.4 is the identity.

use std::time::{Duration, Instant};

use hk_abi::Sysno;
use hk_smt::{Ctx, SatResult, Solver, SolverConfig, Sort, TermId};
use hk_spec::{spec_transition, SpecState};
use hk_symx::{sym_exec_bounded, SymxConfig};

use crate::event::PhaseStats;
use crate::testgen::TestCase;

/// Outcome of verifying one handler.
#[derive(Debug)]
pub enum HandlerOutcome {
    /// Both queries UNSAT: the handler is verified.
    Verified,
    /// A path reaches undefined behaviour.
    UbBug {
        /// What kind of UB (from the side check).
        kind: String,
        /// The concrete trigger.
        test_case: Box<TestCase>,
    },
    /// The implementation diverges from the specification (wrong return
    /// value, wrong state, or broken invariant).
    RefinementBug {
        /// A description of the first violated aspect.
        detail: String,
        /// The concrete trigger.
        test_case: Box<TestCase>,
    },
    /// Symbolic execution failed (non-finite handler).
    SymxFailed(String),
    /// The solver gave up within its budget.
    Unknown,
}

impl HandlerOutcome {
    /// True if verified.
    pub fn is_verified(&self) -> bool {
        matches!(self, HandlerOutcome::Verified)
    }
}

/// Full report for one handler.
#[derive(Debug)]
pub struct HandlerReport {
    /// The handler.
    pub sysno: Sysno,
    /// The verdict.
    pub outcome: HandlerOutcome,
    /// Execution paths explored.
    pub paths: usize,
    /// UB side checks discharged.
    pub side_checks: usize,
    /// Wall-clock time for the whole handler.
    pub time: Duration,
    /// Largest CNF clause count encoded by a single solver call (rough
    /// problem size; under incremental solving later calls only encode
    /// deltas, so this is dominated by the first query).
    pub cnf_clauses: usize,
    /// SAT conflicts summed over all refinement queries.
    pub conflicts: u64,
    /// Per-phase timings and query-cache counters.
    pub phases: PhaseStats,
}

impl HandlerReport {
    /// Short verdict mnemonic for progress lines and tables.
    pub fn verdict(&self) -> &'static str {
        match &self.outcome {
            HandlerOutcome::Verified => "ok",
            HandlerOutcome::UbBug { .. } => "UB-BUG",
            HandlerOutcome::RefinementBug { .. } => "REFINE-BUG",
            HandlerOutcome::SymxFailed(_) => "SYMX-FAIL",
            HandlerOutcome::Unknown => "UNKNOWN",
        }
    }
}

/// Everything needed to verify handlers, borrowed from the kernel image.
pub struct VerifyCtx<'a> {
    /// The compiled kernel module.
    pub module: &'a hk_hir::Module,
    /// Global shapes (for building abstract states).
    pub shapes: &'a [hk_spec::GlobalShape],
    /// Size parameters.
    pub params: hk_abi::KernelParams,
    /// Handler entry points by trap number.
    pub handler: &'a (dyn Fn(Sysno) -> hk_hir::FuncId + Sync),
    /// `check_rep_invariant` entry point.
    pub rep_invariant: hk_hir::FuncId,
    /// Solver configuration.
    pub solver: SolverConfig,
    /// Symbolic-execution configuration.
    pub symx: SymxConfig,
    /// Loop bounds proven by the static-analysis phase. When present,
    /// the symbolic executor asserts these unrolling limits instead of
    /// probing the solver at every loop back edge.
    pub bounds: Option<&'a hk_hir::LoopBounds>,
    /// Core budget shared between handler-level worker threads and
    /// query-level portfolio racing. `None` keeps every query strictly
    /// sequential (the single-thread driver path).
    pub budget: Option<std::sync::Arc<hk_smt::CoreBudget>>,
}

/// Symbolically evaluates the representation invariant on a state.
/// `check_rep_invariant` is branch-free by construction, so this always
/// yields exactly one path and no side checks.
pub fn invariant_term(
    ctx: &mut Ctx,
    vctx: &VerifyCtx,
    state: &SpecState,
) -> Result<TermId, String> {
    let r = sym_exec_bounded(
        ctx,
        vctx.module,
        vctx.rep_invariant,
        &[],
        state.clone(),
        &vctx.symx,
        vctx.bounds,
    )
    .map_err(|e| e.to_string())?;
    if r.paths.len() != 1 {
        return Err(format!(
            "check_rep_invariant is not branch-free: {} paths",
            r.paths.len()
        ));
    }
    if !r.side_checks.is_empty() {
        return Err("check_rep_invariant has UB side conditions".to_string());
    }
    let one = ctx.i64_const(1);
    Ok(ctx.eq(r.paths[0].ret, one))
}

/// Set HK_VERIFY_TRACE=1 for phase-by-phase timing on stderr.
fn trace() -> bool {
    std::env::var("HK_VERIFY_TRACE").is_ok()
}

/// Verifies one handler (Theorem 1). See module docs for the two
/// queries.
pub fn verify_handler(vctx: &VerifyCtx, sysno: Sysno) -> HandlerReport {
    let start = Instant::now();
    let mut phases = PhaseStats::default();
    let mut ctx = Ctx::new();
    let st0 = SpecState::fresh(&mut ctx, vctx.shapes, vctx.params);
    let args: Vec<TermId> = (0..sysno.arg_count())
        .map(|i| ctx.var(format!("arg{i}"), Sort::Bv(64)))
        .collect();
    // Precondition: the representation invariant holds.
    let symx_start = Instant::now();
    let i_pre = match invariant_term(&mut ctx, vctx, &st0) {
        Ok(t) => t,
        Err(e) => {
            phases.symx_time += symx_start.elapsed();
            return HandlerReport {
                sysno,
                outcome: HandlerOutcome::SymxFailed(e),
                paths: 0,
                side_checks: 0,
                time: start.elapsed(),
                cnf_clauses: 0,
                conflicts: 0,
                phases,
            };
        }
    };
    // Specification transition.
    let mut spec_post = st0.clone();
    let spec_ret = spec_transition(&mut ctx, &mut spec_post, sysno, &args);
    // Implementation paths.
    let impl_res = match sym_exec_bounded(
        &mut ctx,
        vctx.module,
        (vctx.handler)(sysno),
        &args,
        st0.clone(),
        &vctx.symx,
        vctx.bounds,
    ) {
        Ok(r) => r,
        Err(e) => {
            phases.symx_time += symx_start.elapsed();
            return HandlerReport {
                sysno,
                outcome: HandlerOutcome::SymxFailed(e.to_string()),
                paths: 0,
                side_checks: 0,
                time: start.elapsed(),
                cnf_clauses: 0,
                conflicts: 0,
                phases,
            };
        }
    };
    phases.symx_time += symx_start.elapsed();
    let n_paths = impl_res.paths.len();
    let n_checks = impl_res.side_checks.len();
    let mut impl_state = impl_res.state.clone();
    if trace() {
        eprintln!(
            "[{}] symx done at {:.1}s: {} paths, {} side checks, {} instructions",
            sysno.func_name(),
            start.elapsed().as_secs_f64(),
            n_paths,
            n_checks,
            impl_res.executed
        );
    }
    // One solver for the handler's whole lifetime: the representation
    // invariant is asserted (and encoded) exactly once at the base
    // level, and every query below — the UB disjunction and each
    // refinement probe batch — runs in its own push/pop scope guarded by
    // an activation literal. Learnt clauses, variable activities, and
    // the term→literal encoding all carry over from query to query.
    let mut solver_config = vctx.solver.clone();
    // Hand the handler's solver the shared core budget: hard queries
    // race a portfolio on whatever cores the handler pool leaves idle.
    solver_config.parallel.budget = vctx.budget.clone();
    let mut solver = Solver::with_config(solver_config);
    solver.assert(&mut ctx, i_pre);
    // ---- Query 1: undefined behaviour. ----
    if !impl_res.side_checks.is_empty() {
        let disjuncts: Vec<TermId> = impl_res.side_checks.iter().map(|c| c.cond).collect();
        let any_ub = ctx.or(&disjuncts);
        solver.push();
        solver.assert(&mut ctx, any_ub);
        if trace() {
            eprintln!(
                "[{}] UB query start at {:.1}s",
                sysno.func_name(),
                start.elapsed().as_secs_f64()
            );
        }
        let ub_result = solver.check(&mut ctx);
        phases.absorb(&solver.stats);
        if trace() {
            eprintln!(
                "[{}] UB query done at {:.1}s: encode {:.1}s solve {:.1}s, {} clauses, {} conflicts",
                sysno.func_name(),
                start.elapsed().as_secs_f64(),
                solver.stats.encode_time.as_secs_f64(),
                solver.stats.solve_time.as_secs_f64(),
                solver.stats.cnf_clauses,
                solver.stats.conflicts
            );
        }
        match ub_result {
            SatResult::Sat(model) => {
                // Identify which check fired.
                let kind = impl_res
                    .side_checks
                    .iter()
                    .find(|c| model.eval_bool(&ctx, c.cond) == Some(true))
                    .map(|c| format!("{} in {}", c.kind, c.func))
                    .unwrap_or_else(|| "unknown UB".to_string());
                let tc = TestCase::from_model(&ctx, &model, &st0, sysno, &args);
                return HandlerReport {
                    sysno,
                    outcome: HandlerOutcome::UbBug {
                        kind,
                        test_case: Box::new(tc),
                    },
                    paths: n_paths,
                    side_checks: n_checks,
                    time: start.elapsed(),
                    cnf_clauses: solver.stats.cnf_clauses,
                    conflicts: solver.stats.conflicts,
                    phases,
                };
            }
            SatResult::Unknown => {
                return HandlerReport {
                    sysno,
                    outcome: HandlerOutcome::Unknown,
                    paths: n_paths,
                    side_checks: n_checks,
                    time: start.elapsed(),
                    cnf_clauses: solver.stats.cnf_clauses,
                    conflicts: solver.stats.conflicts,
                    phases,
                };
            }
            SatResult::Unsat | SatResult::StaticallyDischarged => {}
        }
        solver.pop();
    }
    // ---- Query 2: refinement. ----
    // The executor's guarded-write encoding gives one merged final state
    // valid under every path condition, so one cell-by-cell comparison
    // and one invariant evaluation cover all paths; only the return
    // value is merged per path.
    let cells = st0.all_cells();
    let impl_ret = impl_res.merged_ret(&mut ctx);
    let ret_eq = ctx.eq(spec_ret, impl_ret);
    let mut probes: Vec<(String, TermId)> = Vec::new();
    let mut cell_eqs: Vec<TermId> = Vec::new();
    for (g, f, idx) in &cells {
        let idx_terms: Vec<TermId> = idx.iter().map(|&v| ctx.i64_const(v as i64)).collect();
        let s = spec_post.read(&mut ctx, g, f, &idx_terms);
        let m = impl_state.read(&mut ctx, g, f, &idx_terms);
        let eq = ctx.eq(s, m);
        if ctx.const_bool(eq) != Some(true) {
            probes.push((format!("{g}.{f}{idx:?}"), eq));
            cell_eqs.push(eq);
        }
    }
    let symx_start = Instant::now();
    let i_post = match invariant_term(&mut ctx, vctx, &impl_state) {
        Ok(t) => t,
        Err(e) => {
            phases.symx_time += symx_start.elapsed();
            return HandlerReport {
                sysno,
                outcome: HandlerOutcome::SymxFailed(e),
                paths: n_paths,
                side_checks: n_checks,
                time: start.elapsed(),
                cnf_clauses: 0,
                conflicts: 0,
                phases,
            };
        }
    };
    phases.symx_time += symx_start.elapsed();
    // Return value and invariant preservation get their own queries
    // (they are the structurally hardest obligations). The invariant is
    // a conjunction of several hundred independent bound checks; they
    // are split so each solver call refutes a digestible slice.
    let mut tail_probes = vec![("return value".to_string(), ret_eq)];
    match ctx.data(i_post).clone() {
        hk_smt::TermData::And(parts) => {
            for (ci, chunk) in parts.chunks(48).enumerate() {
                let t = ctx.and(chunk);
                tail_probes.push((format!("invariant part {ci}"), t));
            }
        }
        _ => tail_probes.push(("invariant".to_string(), i_post)),
    }
    if trace() {
        eprintln!(
            "[{}] refinement obligations built at {:.1}s ({} probes)",
            sysno.func_name(),
            start.elapsed().as_secs_f64(),
            probes.len()
        );
    }
    // The obligations are independent, so the query is sliced into
    // batches: each batch refutes the disjunction of a handful of probe
    // violations against the already-encoded invariant. Monolithic
    // queries reach millions of clauses on page-heavy handlers; slices
    // stay in the hundreds of thousands, and with the shared solver the
    // invariant encoding and anything learnt while refuting batch i
    // carry into batch i+1.
    const BATCH: usize = 24;
    let mut total_clauses = 0usize;
    let mut total_conflicts = 0u64;
    let mut outcome = HandlerOutcome::Verified;
    let mut batches: Vec<&[(String, TermId)]> = probes.chunks(BATCH).collect();
    for i in 0..tail_probes.len() {
        batches.push(&tail_probes[i..i + 1]);
    }
    for (bi, batch) in batches.into_iter().enumerate() {
        let negs: Vec<TermId> = batch.iter().map(|(_, p)| ctx.not(*p)).collect();
        let any_bad = ctx.or(&negs);
        solver.push();
        solver.assert(&mut ctx, any_bad);
        if trace() {
            let names: Vec<&str> = batch.iter().map(|(n, _)| n.as_str()).collect();
            eprintln!("[{}] batch {} probes: {:?}", sysno.func_name(), bi, names);
        }
        let result = solver.check(&mut ctx);
        solver.pop();
        phases.absorb(&solver.stats);
        total_clauses = total_clauses.max(solver.stats.cnf_clauses);
        total_conflicts += solver.stats.conflicts;
        if trace() {
            eprintln!(
                "[{}] refinement batch {} done at {:.1}s: solve {:.1}s, {} clauses, \
                 {} conflicts, {} restarts, {} reduced, {} scope-gc",
                sysno.func_name(),
                bi,
                start.elapsed().as_secs_f64(),
                solver.stats.solve_time.as_secs_f64(),
                solver.stats.cnf_clauses,
                solver.stats.conflicts,
                solver.stats.restarts,
                solver.stats.learnts_removed,
                solver.stats.scope_gc_clauses
            );
        }
        match result {
            SatResult::Unsat | SatResult::StaticallyDischarged => {}
            SatResult::Unknown => {
                outcome = HandlerOutcome::Unknown;
                break;
            }
            SatResult::Sat(model) => {
                let detail = batch
                    .iter()
                    .find(|(_, probe)| model.eval_bool(&ctx, *probe) == Some(false))
                    .map(|(what, _)| what.clone())
                    .unwrap_or_else(|| "unidentified divergence".to_string());
                let tc = TestCase::from_model(&ctx, &model, &st0, sysno, &args);
                outcome = HandlerOutcome::RefinementBug {
                    detail,
                    test_case: Box::new(tc),
                };
                break;
            }
        }
    }
    HandlerReport {
        sysno,
        outcome,
        paths: n_paths,
        side_checks: n_checks,
        time: start.elapsed(),
        cnf_clauses: total_clauses,
        conflicts: total_conflicts,
        phases,
    }
}
