//! Concrete test-case generation from counterexample models (§2.4).
//!
//! A failed proof yields a model over the abstract state's base
//! functions and the handler arguments. [`TestCase`] captures it as
//! plain numbers, renders the *minimized* state (only non-default
//! cells, as the paper found necessary for debuggability), and can be
//! replayed against the real interpreter to confirm the bug concretely.

use hk_abi::Sysno;
use hk_kernel::Kernel;
use hk_smt::{Ctx, Model};
use hk_spec::SpecState;

/// A concrete kernel state + trap invocation extracted from a model.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// The handler under test.
    pub sysno: Sysno,
    /// Concrete arguments.
    pub args: Vec<i64>,
    /// Every state cell `(global, field, indices, value)`.
    pub cells: Vec<(String, String, Vec<u64>, i64)>,
}

impl TestCase {
    /// Extracts a test case from a model of the verification query.
    pub fn from_model(
        ctx: &Ctx,
        model: &Model,
        st: &SpecState,
        sysno: Sysno,
        arg_terms: &[hk_smt::TermId],
    ) -> TestCase {
        let args = arg_terms
            .iter()
            .map(|&a| model.eval_i64(ctx, a).unwrap_or(0))
            .collect();
        let mut cells = Vec::new();
        for (g, f, idx) in st.all_cells() {
            let interp = model.func_interp(st.map(&g, &f).base);
            let val = interp.map(|fi| fi.get(&idx) as i64).unwrap_or(0);
            cells.push((g, f, idx, val));
        }
        TestCase { sysno, args, cells }
    }

    /// Renders the minimized state: arguments plus only the cells whose
    /// value is not the "boring" default for their field.
    pub fn display_minimized(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# trigger: {}({})",
            self.sysno.func_name(),
            self.args
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(out, "# kernel state (non-zero cells):");
        for (g, f, idx, val) in &self.cells {
            if *val != 0 {
                let _ = writeln!(out, "#   {g}.{f}{idx:?} = {val}");
            }
        }
        out
    }

    /// Writes the state into a machine and invokes the handler through
    /// the interpreter, returning what actually happened.
    pub fn replay(&self, kernel: &Kernel) -> ReplayResult {
        let mut machine = kernel.new_machine(hk_vm::CostModel::default_model());
        for (g, f, idx, val) in &self.cells {
            let (i, s) = match idx.len() {
                0 => (0, 0),
                1 => (idx[0], 0),
                _ => (idx[0], idx[1]),
            };
            kernel.write_global(&mut machine, g, i, f, s, *val);
        }
        let pre_invariant = kernel.check_invariant(&mut machine).unwrap_or(false);
        match kernel.trap(&mut machine, self.sysno, &self.args) {
            Ok(ret) => {
                let post_invariant = kernel.check_invariant(&mut machine).unwrap_or(false);
                ReplayResult::Ran {
                    ret,
                    pre_invariant,
                    post_invariant,
                }
            }
            Err(e) => ReplayResult::Ub {
                pre_invariant,
                error: e.to_string(),
            },
        }
    }
}

/// What happened when a test case was replayed on the interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayResult {
    /// The handler ran to completion.
    Ran {
        /// Its return value.
        ret: i64,
        /// Whether the injected state satisfied the invariant.
        pre_invariant: bool,
        /// Whether the invariant held afterwards.
        post_invariant: bool,
    },
    /// The handler hit undefined behaviour — the interpreter confirms
    /// the verifier's finding.
    Ub {
        /// Whether the injected state satisfied the invariant.
        pre_invariant: bool,
        /// The interpreter's error.
        error: String,
    },
}
