//! The bounded-model-checking phase: substrate harnesses under the
//! driver's event stream and report machinery.
//!
//! Theorems 1 and 2 treat the page walker, the TLB, the IOMMU, and the
//! fs journal as trusted substrate (they sit below the state-machine
//! specification). [`run_bmc`] discharges the `hk-bmc` harnesses over
//! those components — bounded proofs about the real code's models,
//! validated against the code by the differential fuzz bridge — and
//! reports them through the same [`EventSink`] and JSON conventions as
//! the handler phases, so one front end observes the whole run.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use hk_bmc::{harnesses, BmcConfig, BmcOutcome, HarnessReport};

use crate::event::{EventSink, VerifyEvent};

/// Outcome of the BMC phase.
#[derive(Debug)]
pub struct BmcReport {
    /// Per-harness results, in registry order.
    pub harnesses: Vec<HarnessReport>,
    /// Bound tier the run used (`fast` / `deep`).
    pub tier: &'static str,
    /// Worker threads per query.
    pub threads: usize,
    /// Whether Unsat answers were DRAT-certified.
    pub certified: bool,
    /// Whole-phase wall clock.
    pub total_time: Duration,
}

impl BmcReport {
    /// Harnesses whose bound proved.
    pub fn proved(&self) -> usize {
        self.harnesses
            .iter()
            .filter(|h| matches!(h.outcome, BmcOutcome::Proved))
            .count()
    }

    /// True when every selected harness proved.
    pub fn all_proved(&self) -> bool {
        self.proved() == self.harnesses.len()
    }

    /// Harnesses that exhausted their budget.
    pub fn unknowns(&self) -> usize {
        self.harnesses
            .iter()
            .filter(|h| matches!(h.outcome, BmcOutcome::Unknown))
            .count()
    }

    /// Unsat answers across the phase.
    pub fn unsat_queries(&self) -> u64 {
        self.harnesses.iter().map(|h| h.unsat_queries).sum()
    }

    /// Certified Unsat answers across the phase.
    pub fn certified_unsat(&self) -> u64 {
        self.harnesses.iter().map(|h| h.certified_unsat).sum()
    }

    /// Human-readable phase summary, one line per harness.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bmc ({} tier, {} thread(s)): {}/{} proved in {:.1}s",
            self.tier,
            self.threads,
            self.proved(),
            self.harnesses.len(),
            self.total_time.as_secs_f64()
        );
        for h in &self.harnesses {
            let _ = writeln!(
                out,
                "  {:<28} {:<8} {:>7.2}s  {} queries, {} clauses, {} conflicts [{}]",
                h.name,
                h.outcome.verdict(),
                h.time.as_secs_f64(),
                h.queries,
                h.cnf_clauses,
                h.conflicts,
                h.bounds
            );
        }
        if self.certified {
            let _ = writeln!(
                out,
                "  proof: {}/{} unsat answers certified ({} DRAT steps)",
                self.certified_unsat(),
                self.unsat_queries(),
                self.harnesses.iter().map(|h| h.proof_steps).sum::<u64>()
            );
        }
        out
    }

    /// The phase as a JSON object, the payload of a report's `"bmc"`
    /// section:
    ///
    /// ```json
    /// "bmc": { "tier": "fast", "threads": 1, "total_time_s": 1.2,
    ///          "proved": 10, "total": 10, "unknown": 0,
    ///          "proof": { "unsat_queries": 14, "certified_unsat": 14 },
    ///          "harnesses": [
    ///            { "name": "tlb_coherence", "family": "tlb",
    ///              "bounds": "capacity=2 pre_ops=2 post_ops=1",
    ///              "verdict": "proved", "detail": null,
    ///              "queries": 1, "cnf_clauses": 21203, "conflicts": 812,
    ///              "encode_s": 0.1, "solve_s": 0.5, "time_s": 0.7,
    ///              "proof": { "unsat_queries": 1, "certified_unsat": 1,
    ///                         "steps": 35011 } } ] }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"tier\": \"{}\",", self.tier);
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(
            out,
            "  \"total_time_s\": {:.6},",
            self.total_time.as_secs_f64()
        );
        let _ = writeln!(out, "  \"proved\": {},", self.proved());
        let _ = writeln!(out, "  \"total\": {},", self.harnesses.len());
        let _ = writeln!(out, "  \"unknown\": {},", self.unknowns());
        let _ = writeln!(
            out,
            "  \"proof\": {{ \"unsat_queries\": {}, \"certified_unsat\": {} }},",
            self.unsat_queries(),
            self.certified_unsat()
        );
        out.push_str("  \"harnesses\": [\n");
        for (i, h) in self.harnesses.iter().enumerate() {
            let detail = match &h.outcome {
                BmcOutcome::Counterexample(text) => {
                    format!("\"{}\"", crate::driver::json_escape(text))
                }
                _ => "null".to_string(),
            };
            let _ = write!(
                out,
                "    {{ \"name\": \"{}\", \"family\": \"{}\", \"bounds\": \"{}\", \
                 \"verdict\": \"{}\", \"detail\": {}, \"queries\": {}, \
                 \"cnf_clauses\": {}, \"conflicts\": {}, \"encode_s\": {:.6}, \
                 \"solve_s\": {:.6}, \"time_s\": {:.6}, \
                 \"proof\": {{ \"unsat_queries\": {}, \"certified_unsat\": {}, \
                 \"steps\": {} }} }}",
                h.name,
                h.family,
                crate::driver::json_escape(&h.bounds),
                h.outcome.verdict(),
                detail,
                h.queries,
                h.cnf_clauses,
                h.conflicts,
                h.encode_time.as_secs_f64(),
                h.solve_time.as_secs_f64(),
                h.time.as_secs_f64(),
                h.unsat_queries,
                h.certified_unsat,
                h.proof_steps
            );
            out.push_str(if i + 1 < self.harnesses.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs the BMC phase: every harness selected by `cfg`, in registry
/// order, reporting progress through `sink`.
///
/// When `cfg.certify` is set, the phase enforces the same invariant the
/// handler driver does for its queries: every Unsat answer carries a
/// checked DRAT certificate (`certified_unsat == unsat_queries`), or the
/// phase panics — a certification gap is a soundness bug, not a result.
pub fn run_bmc(cfg: &BmcConfig, sink: &EventSink) -> BmcReport {
    let defs: Vec<_> = harnesses()
        .into_iter()
        .filter(|h| match &cfg.only {
            Some(names) => names.iter().any(|n| n == h.name),
            None => true,
        })
        .collect();
    sink.emit(&VerifyEvent::BmcStarted {
        harnesses: defs.len(),
        tier: cfg.tier.name(),
    });

    let start = Instant::now();
    let mut reports = Vec::with_capacity(defs.len());
    for def in defs {
        let r = (def.run)(cfg);
        if cfg.certify {
            assert_eq!(
                r.certified_unsat, r.unsat_queries,
                "harness {} produced uncertified unsat answers",
                r.name
            );
        }
        match &r.outcome {
            BmcOutcome::Proved => {}
            BmcOutcome::Counterexample(text) => sink.emit(&VerifyEvent::BmcFinding {
                name: r.name,
                verdict: r.outcome.verdict(),
                detail: text.clone(),
            }),
            BmcOutcome::Unknown => sink.emit(&VerifyEvent::BmcFinding {
                name: r.name,
                verdict: r.outcome.verdict(),
                detail: format!("budget exhausted at bounds [{}]", r.bounds),
            }),
        }
        reports.push(r);
    }

    let report = BmcReport {
        harnesses: reports,
        tier: cfg.tier.name(),
        threads: cfg.threads,
        certified: cfg.certify,
        total_time: start.elapsed(),
    };
    sink.emit(&VerifyEvent::BmcFinished {
        proved: report.proved(),
        total: report.harnesses.len(),
        unsat_queries: report.unsat_queries(),
        certified: report.certified_unsat(),
        time: report.total_time,
    });
    report
}
