//! The BMC phase through the driver machinery: event stream order,
//! the `"bmc"` JSON section, and the certification invariant.
//!
//! The phase runs cheap harnesses only (the full registry at fast
//! bounds is exercised by `crates/bmc/tests/harnesses.rs`); this test
//! is about the core wiring, not the proofs.

use std::sync::{Arc, Mutex};

use hk_bmc::{BmcConfig, SeededBug};
use hk_core::bmc::run_bmc;
use hk_core::{EventSink, VerifyEvent};

/// Captures a compact trace of the phase's events.
fn capture() -> (EventSink, Arc<Mutex<Vec<String>>>) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let log2 = Arc::clone(&log);
    let sink = EventSink::new(move |ev| {
        let line = match ev {
            VerifyEvent::BmcStarted { harnesses, tier } => {
                format!("started {harnesses} {tier}")
            }
            VerifyEvent::BmcFinding { name, verdict, .. } => {
                format!("finding {name} {verdict}")
            }
            VerifyEvent::BmcFinished {
                proved,
                total,
                unsat_queries,
                certified,
                ..
            } => format!("finished {proved}/{total} {certified}/{unsat_queries}"),
            _ => return,
        };
        log2.lock().unwrap().push(line);
    });
    (sink, log)
}

/// Cheap three-harness selection covering three families.
fn quick_cfg() -> BmcConfig {
    BmcConfig {
        only: Some(vec![
            "paging_split_join_roundtrip".to_string(),
            "tlb_flush_from_scratch".to_string(),
            "iommu_dma_confinement".to_string(),
        ]),
        ..BmcConfig::default()
    }
}

#[test]
fn clean_phase_emits_started_and_finished_only() {
    let (sink, log) = capture();
    let report = run_bmc(&quick_cfg(), &sink);
    assert!(report.all_proved(), "{}", report.summary());
    assert_eq!(report.harnesses.len(), 3);
    assert_eq!(report.certified_unsat(), report.unsat_queries());

    let log = log.lock().unwrap();
    assert_eq!(log.len(), 2, "unexpected events: {log:?}");
    assert_eq!(log[0], "started 3 fast");
    assert!(
        log[1].starts_with("finished 3/3 "),
        "unexpected finish: {}",
        log[1]
    );
}

#[test]
fn seeded_bug_emits_a_finding_with_the_counterexample() {
    let (sink, log) = capture();
    let cfg = BmcConfig {
        seeded_bug: Some(SeededBug::IommuGrantWiden),
        only: Some(vec!["iommu_dma_confinement".to_string()]),
        ..BmcConfig::default()
    };
    let report = run_bmc(&cfg, &sink);
    assert!(!report.all_proved());
    assert_eq!(report.proved(), 0);

    let log = log.lock().unwrap();
    assert_eq!(
        log.as_slice(),
        [
            "started 1 fast",
            "finding iommu_dma_confinement CEX",
            "finished 0/1 0/0",
        ]
    );

    // The finding's detail lands in the JSON section too.
    let json = report.to_json();
    assert!(json.contains("\"verdict\": \"CEX\""), "{json}");
    assert!(json.contains("iommu counterexample"), "{json}");
}

#[test]
fn json_section_reports_each_harness_with_proof_counters() {
    let report = run_bmc(&quick_cfg(), &EventSink::null());
    let json = report.to_json();
    assert!(json.contains("\"tier\": \"fast\""), "{json}");
    assert!(json.contains("\"proved\": 3"), "{json}");
    assert!(json.contains("\"unknown\": 0"), "{json}");
    for name in [
        "paging_split_join_roundtrip",
        "tlb_flush_from_scratch",
        "iommu_dma_confinement",
    ] {
        assert!(json.contains(&format!("\"name\": \"{name}\"")), "{json}");
    }
    assert!(json.contains("\"certified_unsat\""), "{json}");
    assert!(json.contains("\"detail\": null"), "{json}");
    // Fail-closed accounting: the phase-level proof section equals the
    // per-harness sums.
    let unsat: u64 = report.harnesses.iter().map(|h| h.unsat_queries).sum();
    assert!(
        json.contains(&format!(
            "\"proof\": {{ \"unsat_queries\": {unsat}, \"certified_unsat\": {unsat} }}"
        )),
        "{json}"
    );
}
