//! Driver-level properties of the verification orchestrator:
//!
//! * thread count must not change verdicts, report order, or the event
//!   stream (the parallel path re-serializes events);
//! * a shared query cache must make a second run over the unchanged
//!   image nearly free (≥ 90 % hit rate), and that must show up in the
//!   JSON report;
//! * the cache must never serve a stale verdict after the kernel image
//!   changes — the content-addressed key has to miss.

use std::sync::{Arc, Mutex};

use hk_abi::{KernelParams, Sysno};
use hk_core::{verify_image, EventSink, HandlerOutcome, VerifyConfig, VerifyEvent};
use hk_kernel::KernelImage;
use hk_smt::QueryCache;

/// Small but non-trivial subset: a no-op, an interrupt path, and a
/// file-descriptor path with real invariant obligations.
const SUBSET: [Sysno; 3] = [Sysno::Nop, Sysno::AckIntr, Sysno::Dup];

/// Renders an event with every nondeterministic field (timings, thread
/// count, cache counters) stripped, for cross-run comparison. Returns
/// `None` for events that are timing-dependent by design and so
/// excluded from determinism comparisons entirely.
fn stable_view(ev: &VerifyEvent) -> Option<String> {
    Some(match ev {
        // Whether (and how wide) a query races depends on spare core
        // budget at the moment it runs; the event documents this and
        // the verdict-bearing events below are what must stay stable.
        VerifyEvent::PortfolioStarted { .. } => return None,
        VerifyEvent::AnalysisStarted { roots } => format!("analysis roots={roots}"),
        VerifyEvent::AnalysisFinding {
            rendered,
            allowlisted,
        } => format!("finding allowlisted={allowlisted} {rendered}"),
        VerifyEvent::AnalysisFinished {
            findings,
            allowlisted,
            loop_bounds,
            ..
        } => format!(
            "analysis done findings={findings} allowlisted={allowlisted} bounds={loop_bounds}"
        ),
        VerifyEvent::RunStarted { total, .. } => format!("start total={total}"),
        VerifyEvent::HandlerStarted {
            sysno,
            index,
            total,
        } => {
            format!("begin[{index}/{total}] {}", sysno.func_name())
        }
        VerifyEvent::HandlerFinished {
            sysno,
            index,
            total,
            verdict,
            paths,
            side_checks,
            ..
        } => format!(
            "end[{index}/{total}] {} {verdict} paths={paths} checks={side_checks}",
            sysno.func_name()
        ),
        VerifyEvent::HandlerCertified {
            sysno,
            index,
            total,
            unsat_queries,
            certified,
            ..
        } => format!(
            "certified[{index}/{total}] {} {certified}/{unsat_queries}",
            sysno.func_name()
        ),
        VerifyEvent::RunFinished {
            verified, total, ..
        } => {
            format!("done {verified}/{total}")
        }
        // BMC-phase events never fire from verify_image; covered by
        // tests/bmc_phase.rs.
        VerifyEvent::BmcStarted { .. }
        | VerifyEvent::BmcFinding { .. }
        | VerifyEvent::BmcFinished { .. } => return None,
    })
}

fn run_with_threads(image: &KernelImage, threads: usize) -> (Vec<String>, Vec<(Sysno, String)>) {
    run_subset(image, threads, true)
}

fn run_subset(
    image: &KernelImage,
    threads: usize,
    incremental: bool,
) -> (Vec<String>, Vec<(Sysno, String)>) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let sink_log = log.clone();
    let mut config = VerifyConfig {
        params: KernelParams::verification(),
        threads,
        only: SUBSET.to_vec(),
        events: EventSink::new(move |ev| {
            if let Some(s) = stable_view(ev) {
                sink_log.lock().unwrap().push(s);
            }
        }),
        ..VerifyConfig::default()
    };
    config.solver.incremental = incremental;
    let report = verify_image(image, &config);
    let outcomes = report
        .handlers
        .iter()
        .map(|h| (h.sysno, h.verdict().to_string()))
        .collect();
    let events = log.lock().unwrap().clone();
    (events, outcomes)
}

#[test]
fn parallel_run_is_deterministic() {
    let image = KernelImage::build(KernelParams::verification()).expect("kernel build");
    let (seq_events, seq_outcomes) = run_with_threads(&image, 1);
    let (par_events, par_outcomes) = run_with_threads(&image, 4);
    assert_eq!(
        seq_outcomes, par_outcomes,
        "thread count changed verdicts or report order"
    );
    assert_eq!(
        seq_events, par_events,
        "thread count changed the event stream"
    );
    // Sanity: the stream has the expected shape — the static-analysis
    // phase (clean: no finding events) precedes the run itself.
    assert_eq!(seq_events.first().unwrap(), "analysis roots=4");
    assert!(seq_events[1].starts_with("analysis done findings=0"));
    assert_eq!(seq_events[2], "start total=3");
    assert_eq!(seq_events.last().unwrap(), "done 3/3");
    assert_eq!(seq_events.len(), 4 + 2 * SUBSET.len());
}

/// The incremental per-handler solver and the fresh-solver-per-query
/// baseline must report identical handler outcomes and event streams,
/// sequentially and in parallel — incrementality is an optimization,
/// never a semantic change.
#[test]
fn incremental_and_oneshot_agree() {
    let image = KernelImage::build(KernelParams::verification()).expect("kernel build");
    let (inc_seq_events, inc_seq) = run_subset(&image, 1, true);
    let (inc_par_events, inc_par) = run_subset(&image, 4, true);
    let (one_seq_events, one_seq) = run_subset(&image, 1, false);
    let (one_par_events, one_par) = run_subset(&image, 4, false);
    assert_eq!(inc_seq, one_seq, "incremental changed verdicts (threads=1)");
    assert_eq!(inc_par, one_par, "incremental changed verdicts (threads=4)");
    assert_eq!(
        inc_seq, inc_par,
        "thread count changed incremental verdicts"
    );
    assert_eq!(
        inc_seq_events, one_seq_events,
        "incremental changed the event stream (threads=1)"
    );
    assert_eq!(
        inc_par_events, one_par_events,
        "incremental changed the event stream (threads=4)"
    );
}

#[test]
fn warm_cache_run_hits_and_reports() {
    let image = KernelImage::build(KernelParams::verification()).expect("kernel build");
    let cache = Arc::new(QueryCache::new(1 << 14));
    let mut config = VerifyConfig {
        params: KernelParams::verification(),
        threads: 1,
        only: vec![Sysno::Nop, Sysno::AckIntr],
        events: EventSink::null(),
        ..VerifyConfig::default()
    };
    config.solver.cache = Some(cache.clone());
    let cold = verify_image(&image, &config);
    assert!(cold.all_verified());
    assert!(cold.cache_misses() > 0, "first run must solve something");
    let warm = verify_image(&image, &config);
    assert!(warm.all_verified());
    assert_eq!(
        warm.cache_misses(),
        0,
        "unchanged image re-solved {} queries",
        warm.cache_misses()
    );
    assert!(warm.cache_hits() > 0);
    assert!(
        warm.cache_hit_rate() >= 0.9,
        "hit rate {:.2} below 90%",
        warm.cache_hit_rate()
    );
    // The JSON report carries the cache section and per-handler phases.
    let json = warm.to_json();
    assert!(json.contains("\"hit_rate\": 1.000000"), "{json}");
    assert!(json.contains("\"cache\": {"), "{json}");
    assert!(json.contains("\"phases\": {"), "{json}");
    assert!(json.contains("\"verdict\": \"verified\""), "{json}");
    // And the human summary mentions the cache too.
    assert!(warm.summary().contains("hit rate"));
}

/// Runs the subset with portfolio racing forced on every query
/// (probe threshold 0) and certification enabled, returning the stable
/// event stream, the verdicts, the deterministic projection of the JSON
/// report, and the total race count.
fn run_racing(
    image: &KernelImage,
    threads: usize,
) -> (Vec<String>, Vec<(Sysno, String)>, String, u64) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let sink_log = log.clone();
    let mut config = VerifyConfig {
        params: KernelParams::verification(),
        threads,
        only: SUBSET.to_vec(),
        events: EventSink::new(move |ev| {
            if let Some(s) = stable_view(ev) {
                sink_log.lock().unwrap().push(s);
            }
        }),
        ..VerifyConfig::default()
    };
    // Race every query: the probe threshold is the only thing keeping
    // cheap queries sequential, so zeroing it maximizes portfolio
    // activity (and the chance that different configs win on different
    // runs — which must not show anywhere in the outputs compared).
    config.solver.parallel.conflict_threshold = 0;
    config.solver.certify = true;
    let report = verify_image(image, &config);
    assert!(report.all_verified(), "racing changed a verdict");
    let outcomes: Vec<(Sysno, String)> = report
        .handlers
        .iter()
        .map(|h| (h.sysno, h.verdict().to_string()))
        .collect();
    let races = report.handlers.iter().map(|h| h.phases.races).sum();
    let events = log.lock().unwrap().clone();
    (events, outcomes, stable_json(&report.to_json()), races)
}

/// Projects a driver JSON report onto its deterministic fields: the
/// verified/total counts and, per handler, everything up to the first
/// search-dependent counter (`conflicts`). Timings, cache and search
/// counters, proof sizes and parallel stats all legitimately vary run
/// to run (and with thread count); verdicts never may.
fn stable_json(json: &str) -> String {
    let mut out = String::new();
    for line in json.lines() {
        let t = line.trim_start();
        if t.starts_with("\"verified\"") || t.starts_with("\"total\"") {
            out.push_str(t);
            out.push('\n');
        } else if t.starts_with("{ \"name\"") {
            let stable = t.split(", \"conflicts\"").next().unwrap();
            out.push_str(stable);
            out.push('\n');
        }
    }
    out
}

/// Determinism under racing: repeated runs and thread counts 1 vs 4
/// must produce identical stable event streams, verdicts, and JSON
/// projections even though which portfolio config wins each race is
/// timing-dependent — and every Unsat must still certify (enforced
/// inside the run by `certify`). This is the driver-level twin of the
/// solver-level differential in crates/smt/tests/portfolio.rs.
#[test]
fn racing_runs_are_deterministic() {
    let image = KernelImage::build(KernelParams::verification()).expect("kernel build");
    let (seq_events, seq_outcomes, seq_json, seq_races) = run_racing(&image, 1);
    // threads=1 installs no core budget: racing must never trigger.
    assert_eq!(seq_races, 0, "sequential run raced");
    let mut raced_at_least_once = false;
    for round in 0..2 {
        let (par_events, par_outcomes, par_json, par_races) = run_racing(&image, 4);
        raced_at_least_once |= par_races > 0;
        assert_eq!(
            seq_outcomes, par_outcomes,
            "racing changed verdicts (round {round})"
        );
        assert_eq!(
            seq_events, par_events,
            "racing changed the stable event stream (round {round})"
        );
        assert_eq!(
            seq_json, par_json,
            "racing changed the stable JSON projection (round {round})"
        );
    }
    // 4 threads over 3 handlers leaves at least one spare core from the
    // start, and the threshold is 0: the portfolio must actually run —
    // otherwise this test silently stops covering racing.
    assert!(raced_at_least_once, "no query raced at threads=4");
}

#[test]
fn cache_does_not_serve_stale_verdicts_across_image_change() {
    let params = KernelParams::verification();
    let cache = Arc::new(QueryCache::new(1 << 14));
    let mut config = VerifyConfig {
        params,
        threads: 1,
        only: vec![Sysno::Dup],
        events: EventSink::null(),
        ..VerifyConfig::default()
    };
    config.solver.cache = Some(cache.clone());
    // Pass 1: the stock kernel verifies, filling the cache.
    let stock = KernelImage::build(params).expect("kernel build");
    let report = verify_image(&stock, &config);
    assert!(report.all_verified());
    assert!(!cache.is_empty());
    // Pass 2: the classic forgotten-refcount bug is injected into dup.
    // Its verification conditions differ, so the content-addressed key
    // must miss and the bug must be found despite the warm cache.
    let sources: Vec<(&'static str, String)> = hk_kernel::image::SOURCES
        .iter()
        .map(|&(name, src)| {
            let patched = if name == "fd.hc" {
                src.replacen(
                    "    files[f].refcnt = files[f].refcnt + 1;\n    return 0;\n}\n\n// dup2",
                    "    return 0;\n}\n\n// dup2",
                    1,
                )
            } else {
                src.to_string()
            };
            (name, patched)
        })
        .collect();
    let buggy = KernelImage::build_with_sources(params, sources).expect("buggy build");
    let report = verify_image(&buggy, &config);
    match &report.handlers[0].outcome {
        HandlerOutcome::RefinementBug { .. } => {}
        other => panic!("stale cache verdict? dup reported {other:?}"),
    }
}
