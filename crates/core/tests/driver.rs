//! Driver-level properties of the verification orchestrator:
//!
//! * thread count must not change verdicts, report order, or the event
//!   stream (the parallel path re-serializes events);
//! * a shared query cache must make a second run over the unchanged
//!   image nearly free (≥ 90 % hit rate), and that must show up in the
//!   JSON report;
//! * the cache must never serve a stale verdict after the kernel image
//!   changes — the content-addressed key has to miss.

use std::sync::{Arc, Mutex};

use hk_abi::{KernelParams, Sysno};
use hk_core::{verify_image, EventSink, HandlerOutcome, VerifyConfig, VerifyEvent};
use hk_kernel::KernelImage;
use hk_smt::QueryCache;

/// Small but non-trivial subset: a no-op, an interrupt path, and a
/// file-descriptor path with real invariant obligations.
const SUBSET: [Sysno; 3] = [Sysno::Nop, Sysno::AckIntr, Sysno::Dup];

/// Renders an event with every nondeterministic field (timings, thread
/// count, cache counters) stripped, for cross-run comparison.
fn stable_view(ev: &VerifyEvent) -> String {
    match ev {
        VerifyEvent::AnalysisStarted { roots } => format!("analysis roots={roots}"),
        VerifyEvent::AnalysisFinding {
            rendered,
            allowlisted,
        } => format!("finding allowlisted={allowlisted} {rendered}"),
        VerifyEvent::AnalysisFinished {
            findings,
            allowlisted,
            loop_bounds,
            ..
        } => format!(
            "analysis done findings={findings} allowlisted={allowlisted} bounds={loop_bounds}"
        ),
        VerifyEvent::RunStarted { total, .. } => format!("start total={total}"),
        VerifyEvent::HandlerStarted {
            sysno,
            index,
            total,
        } => {
            format!("begin[{index}/{total}] {}", sysno.func_name())
        }
        VerifyEvent::HandlerFinished {
            sysno,
            index,
            total,
            verdict,
            paths,
            side_checks,
            ..
        } => format!(
            "end[{index}/{total}] {} {verdict} paths={paths} checks={side_checks}",
            sysno.func_name()
        ),
        VerifyEvent::HandlerCertified {
            sysno,
            index,
            total,
            unsat_queries,
            certified,
            ..
        } => format!(
            "certified[{index}/{total}] {} {certified}/{unsat_queries}",
            sysno.func_name()
        ),
        VerifyEvent::RunFinished {
            verified, total, ..
        } => {
            format!("done {verified}/{total}")
        }
    }
}

fn run_with_threads(image: &KernelImage, threads: usize) -> (Vec<String>, Vec<(Sysno, String)>) {
    run_subset(image, threads, true)
}

fn run_subset(
    image: &KernelImage,
    threads: usize,
    incremental: bool,
) -> (Vec<String>, Vec<(Sysno, String)>) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let sink_log = log.clone();
    let mut config = VerifyConfig {
        params: KernelParams::verification(),
        threads,
        only: SUBSET.to_vec(),
        events: EventSink::new(move |ev| sink_log.lock().unwrap().push(stable_view(ev))),
        ..VerifyConfig::default()
    };
    config.solver.incremental = incremental;
    let report = verify_image(image, &config);
    let outcomes = report
        .handlers
        .iter()
        .map(|h| (h.sysno, h.verdict().to_string()))
        .collect();
    let events = log.lock().unwrap().clone();
    (events, outcomes)
}

#[test]
fn parallel_run_is_deterministic() {
    let image = KernelImage::build(KernelParams::verification()).expect("kernel build");
    let (seq_events, seq_outcomes) = run_with_threads(&image, 1);
    let (par_events, par_outcomes) = run_with_threads(&image, 4);
    assert_eq!(
        seq_outcomes, par_outcomes,
        "thread count changed verdicts or report order"
    );
    assert_eq!(
        seq_events, par_events,
        "thread count changed the event stream"
    );
    // Sanity: the stream has the expected shape — the static-analysis
    // phase (clean: no finding events) precedes the run itself.
    assert_eq!(seq_events.first().unwrap(), "analysis roots=4");
    assert!(seq_events[1].starts_with("analysis done findings=0"));
    assert_eq!(seq_events[2], "start total=3");
    assert_eq!(seq_events.last().unwrap(), "done 3/3");
    assert_eq!(seq_events.len(), 4 + 2 * SUBSET.len());
}

/// The incremental per-handler solver and the fresh-solver-per-query
/// baseline must report identical handler outcomes and event streams,
/// sequentially and in parallel — incrementality is an optimization,
/// never a semantic change.
#[test]
fn incremental_and_oneshot_agree() {
    let image = KernelImage::build(KernelParams::verification()).expect("kernel build");
    let (inc_seq_events, inc_seq) = run_subset(&image, 1, true);
    let (inc_par_events, inc_par) = run_subset(&image, 4, true);
    let (one_seq_events, one_seq) = run_subset(&image, 1, false);
    let (one_par_events, one_par) = run_subset(&image, 4, false);
    assert_eq!(inc_seq, one_seq, "incremental changed verdicts (threads=1)");
    assert_eq!(inc_par, one_par, "incremental changed verdicts (threads=4)");
    assert_eq!(
        inc_seq, inc_par,
        "thread count changed incremental verdicts"
    );
    assert_eq!(
        inc_seq_events, one_seq_events,
        "incremental changed the event stream (threads=1)"
    );
    assert_eq!(
        inc_par_events, one_par_events,
        "incremental changed the event stream (threads=4)"
    );
}

#[test]
fn warm_cache_run_hits_and_reports() {
    let image = KernelImage::build(KernelParams::verification()).expect("kernel build");
    let cache = Arc::new(QueryCache::new(1 << 14));
    let mut config = VerifyConfig {
        params: KernelParams::verification(),
        threads: 1,
        only: vec![Sysno::Nop, Sysno::AckIntr],
        events: EventSink::null(),
        ..VerifyConfig::default()
    };
    config.solver.cache = Some(cache.clone());
    let cold = verify_image(&image, &config);
    assert!(cold.all_verified());
    assert!(cold.cache_misses() > 0, "first run must solve something");
    let warm = verify_image(&image, &config);
    assert!(warm.all_verified());
    assert_eq!(
        warm.cache_misses(),
        0,
        "unchanged image re-solved {} queries",
        warm.cache_misses()
    );
    assert!(warm.cache_hits() > 0);
    assert!(
        warm.cache_hit_rate() >= 0.9,
        "hit rate {:.2} below 90%",
        warm.cache_hit_rate()
    );
    // The JSON report carries the cache section and per-handler phases.
    let json = warm.to_json();
    assert!(json.contains("\"hit_rate\": 1.000000"), "{json}");
    assert!(json.contains("\"cache\": {"), "{json}");
    assert!(json.contains("\"phases\": {"), "{json}");
    assert!(json.contains("\"verdict\": \"verified\""), "{json}");
    // And the human summary mentions the cache too.
    assert!(warm.summary().contains("hit rate"));
}

#[test]
fn cache_does_not_serve_stale_verdicts_across_image_change() {
    let params = KernelParams::verification();
    let cache = Arc::new(QueryCache::new(1 << 14));
    let mut config = VerifyConfig {
        params,
        threads: 1,
        only: vec![Sysno::Dup],
        events: EventSink::null(),
        ..VerifyConfig::default()
    };
    config.solver.cache = Some(cache.clone());
    // Pass 1: the stock kernel verifies, filling the cache.
    let stock = KernelImage::build(params).expect("kernel build");
    let report = verify_image(&stock, &config);
    assert!(report.all_verified());
    assert!(!cache.is_empty());
    // Pass 2: the classic forgotten-refcount bug is injected into dup.
    // Its verification conditions differ, so the content-addressed key
    // must miss and the bug must be found despite the warm cache.
    let sources: Vec<(&'static str, String)> = hk_kernel::image::SOURCES
        .iter()
        .map(|&(name, src)| {
            let patched = if name == "fd.hc" {
                src.replacen(
                    "    files[f].refcnt = files[f].refcnt + 1;\n    return 0;\n}\n\n// dup2",
                    "    return 0;\n}\n\n// dup2",
                    1,
                )
            } else {
                src.to_string()
            };
            (name, patched)
        })
        .collect();
    let buggy = KernelImage::build_with_sources(params, sources).expect("buggy build");
    let report = verify_image(&buggy, &config);
    match &report.handlers[0].outcome {
        HandlerOutcome::RefinementBug { .. } => {}
        other => panic!("stale cache verdict? dup reported {other:?}"),
    }
}
