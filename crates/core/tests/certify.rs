//! End-to-end certified verification: with `solver.certify` set, every
//! Unsat answer the driver produces — and a verified handler is nothing
//! but a stack of Unsat answers — is re-derived by the independent DRAT
//! checker from the proof the SAT core logged, in both the incremental
//! per-handler-solver pipeline and the fresh-solver-per-query baseline.
//! The driver then reports the certification through a dedicated event,
//! the JSON report, and the human summary.

use std::sync::{Arc, Mutex};

use hk_abi::{KernelParams, Sysno};
use hk_core::{verify_image, EventSink, VerifyConfig, VerifyEvent, VerifyReport};
use hk_kernel::KernelImage;

/// Same subset the driver determinism tests use: a no-op, an interrupt
/// path, and a file-descriptor path with real invariant obligations.
const SUBSET: [Sysno; 3] = [Sysno::Nop, Sysno::AckIntr, Sysno::Dup];

/// Renders the events a certified run emits, timings stripped, keeping
/// enough structure to check ordering (each `certified` line must
/// directly follow its handler's `end` line).
fn stable_view(ev: &VerifyEvent) -> Option<String> {
    match ev {
        VerifyEvent::HandlerStarted { sysno, index, .. } => {
            Some(format!("begin[{index}] {}", sysno.func_name()))
        }
        VerifyEvent::HandlerFinished {
            sysno,
            index,
            verdict,
            ..
        } => Some(format!("end[{index}] {} {verdict}", sysno.func_name())),
        VerifyEvent::HandlerCertified {
            sysno,
            index,
            unsat_queries,
            certified,
            ..
        } => Some(format!(
            "certified[{index}] {} {certified}/{unsat_queries}",
            sysno.func_name()
        )),
        _ => None,
    }
}

fn run_certified(
    image: &KernelImage,
    incremental: bool,
    threads: usize,
) -> (VerifyReport, Vec<String>) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let sink_log = log.clone();
    let mut config = VerifyConfig {
        params: KernelParams::verification(),
        threads,
        only: SUBSET.to_vec(),
        events: EventSink::new(move |ev| {
            if let Some(line) = stable_view(ev) {
                sink_log.lock().unwrap().push(line);
            }
        }),
        ..VerifyConfig::default()
    };
    config.solver.incremental = incremental;
    config.solver.certify = true;
    let report = verify_image(image, &config);
    let events = log.lock().unwrap().clone();
    (report, events)
}

#[test]
fn certified_run_checks_every_unsat_answer() {
    let image = KernelImage::build(KernelParams::verification()).expect("kernel build");
    for incremental in [true, false] {
        let (report, events) = run_certified(&image, incremental, 1);
        assert!(
            report.all_verified(),
            "certification changed verdicts (incremental={incremental})"
        );
        // Every handler produced Unsat answers and every one of them was
        // certified; real proofs were replayed (not just vacuous
        // trivially-false queries).
        for h in &report.handlers {
            assert!(
                h.phases.unsat_queries > 0,
                "{}: a verified handler with no Unsat answers",
                h.sysno.func_name()
            );
            assert_eq!(
                h.phases.certified_unsat,
                h.phases.unsat_queries,
                "{}: Unsat answers left uncertified",
                h.sysno.func_name()
            );
        }
        assert!(report.fully_certified());
        let checked: u64 = report
            .handlers
            .iter()
            .map(|h| h.phases.proofs_checked)
            .sum();
        let steps: u64 = report.handlers.iter().map(|h| h.phases.proof_steps).sum();
        assert!(checked > 0, "no proof was ever replayed");
        assert!(steps > 0, "no DRAT steps were logged");
        // One certification event per handler.
        let certified_lines: Vec<&String> = events
            .iter()
            .filter(|l| l.starts_with("certified["))
            .collect();
        assert_eq!(certified_lines.len(), SUBSET.len(), "{events:?}");
        // The reports carry the proof story: JSON section and summary
        // line both present.
        let json = report.to_json();
        assert!(json.contains("\"proof\": {"), "{json}");
        assert!(
            json.contains(&format!(
                "\"unsat_queries\": {}, \"certified_unsat\": {}",
                report.unsat_queries(),
                report.certified_unsat()
            )),
            "{json}"
        );
        assert!(report.summary().contains("unsat answers certified"));
    }
}

/// Certification must not perturb the driver's determinism guarantee:
/// the event stream (now including the certification events, each
/// directly after its handler's finish line) is identical across thread
/// counts.
#[test]
fn certified_event_stream_is_deterministic() {
    let image = KernelImage::build(KernelParams::verification()).expect("kernel build");
    let (seq_report, seq_events) = run_certified(&image, true, 1);
    let (par_report, par_events) = run_certified(&image, true, 4);
    assert_eq!(seq_events, par_events, "thread count changed the stream");
    assert_eq!(
        seq_report.certified_unsat(),
        par_report.certified_unsat(),
        "thread count changed certification totals"
    );
    // Shape: begin / end / certified triplets, in submission order.
    assert_eq!(seq_events.len(), 3 * SUBSET.len());
    for (i, chunk) in seq_events.chunks(3).enumerate() {
        let name = SUBSET[i].func_name();
        assert!(
            chunk[0].starts_with(&format!("begin[{i}] {name}")),
            "{chunk:?}"
        );
        assert!(
            chunk[1].starts_with(&format!("end[{i}] {name} ok")),
            "{chunk:?}"
        );
        assert!(
            chunk[2].starts_with(&format!("certified[{i}] {name}")),
            "{chunk:?}"
        );
    }
}
