//! Quick harness: verify a few handlers and print the report.

use hk_abi::Sysno;
use hk_core::{verify_all, VerifyConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let only: Vec<Sysno> = args
        .iter()
        .filter_map(|a| {
            Sysno::ALL
                .iter()
                .copied()
                .find(|s| s.func_name() == *a || s.func_name() == format!("sys_{a}"))
        })
        .collect();
    let config = VerifyConfig {
        only,
        threads,
        ..VerifyConfig::default()
    };
    let report = verify_all(&config);
    print!("{}", report.summary());
    for h in &report.handlers {
        match &h.outcome {
            hk_core::HandlerOutcome::UbBug { kind, test_case } => {
                println!("\n== UB in {}: {kind}", h.sysno);
                println!("{}", test_case.display_minimized());
            }
            hk_core::HandlerOutcome::RefinementBug { detail, test_case } => {
                println!("\n== refinement bug in {}: {detail}", h.sysno);
                println!("{}", test_case.display_minimized());
            }
            hk_core::HandlerOutcome::SymxFailed(e) => {
                println!("\n== symx failure in {}: {e}", h.sysno);
            }
            _ => {}
        }
    }
}
