//! Debug: print spec vs impl term for one cell of one handler.
use hk_abi::{KernelParams, Sysno};
use hk_kernel::KernelImage;
use hk_smt::{Ctx, Sort, TermId};
use hk_spec::{shapes_of, spec_transition, SpecState};
use hk_symx::{sym_exec, SymxConfig};

fn main() {
    let params = KernelParams::verification();
    let image = KernelImage::build(params).unwrap();
    let shapes = shapes_of(&image.module);
    let mut ctx = Ctx::new();
    let st0 = SpecState::fresh(&mut ctx, &shapes, params);
    let sysno = Sysno::CloneProc;
    let args: Vec<TermId> = (0..sysno.arg_count())
        .map(|i| ctx.var(format!("arg{i}"), Sort::Bv(64)))
        .collect();
    let mut spec_post = st0.clone();
    let _sr = spec_transition(&mut ctx, &mut spec_post, sysno, &args);
    let impl_res = sym_exec(
        &mut ctx,
        &image.module,
        image.handler(sysno),
        &args,
        st0.clone(),
        &SymxConfig::default(),
    )
    .unwrap();
    let mut impl_state = impl_res.state.clone();
    for (g, f) in [("page_desc", "free_next"), ("freelist_head", "value")] {
        let idx: Vec<TermId> = if g == "freelist_head" {
            vec![]
        } else {
            vec![ctx.i64_const(0)]
        };
        let s = spec_post.read(&mut ctx, g, f, &idx);
        let m = impl_state.read(&mut ctx, g, f, &idx);
        println!("=== {g}.{f}[0]: equal_termid={}", s == m);
        let ds = ctx.display(s);
        let dm = ctx.display(m);
        println!("SPEC ({} chars): {}", ds.len(), &ds[..ds.len().min(600)]);
        println!("IMPL ({} chars): {}", dm.len(), &dm[..dm.len().min(600)]);
    }
}
