//! Debug: inspect the shape of the invariant term.
use hk_abi::KernelParams;
use hk_kernel::KernelImage;
use hk_smt::{BvBinOp, Ctx, TermData, TermId};
use hk_spec::{shapes_of, SpecState};
use hk_symx::{sym_exec, SymxConfig};

fn spine(ctx: &Ctx, t: TermId, out: &mut Vec<TermId>) {
    if let TermData::BvBin(BvBinOp::And, a, b) = ctx.data(t) {
        let (a, b) = (*a, *b);
        spine(ctx, a, out);
        spine(ctx, b, out);
    } else {
        out.push(t);
    }
}

fn main() {
    let params = KernelParams::verification();
    let image = KernelImage::build(params).unwrap();
    let shapes = shapes_of(&image.module);
    let mut ctx = Ctx::new();
    let st0 = SpecState::fresh(&mut ctx, &shapes, params);
    let r = sym_exec(
        &mut ctx,
        &image.module,
        image.rep_invariant,
        &[],
        st0,
        &SymxConfig::default(),
    )
    .unwrap();
    let ret = r.paths[0].ret;
    let mut leaves = Vec::new();
    spine(&ctx, ret, &mut leaves);
    println!("spine leaves: {}", leaves.len());
    for (i, &l) in leaves.iter().enumerate() {
        let is01 = ctx.as_bool01(l).is_some() || ctx.const_value(l).is_some_and(|v| v <= 1);
        if !is01 {
            let d = ctx.display(l);
            println!("leaf {} NOT bool01: {}", i, &d[..d.len().min(500)]);
        }
    }
    let one = ctx.i64_const(1);
    let ipost = ctx.eq(ret, one);
    match ctx.data(ipost) {
        TermData::And(args) => println!("And with {} args", args.len()),
        _ => println!("NOT And"),
    }
}
