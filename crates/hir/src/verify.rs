//! Module well-formedness checking.
//!
//! Catches structural errors before interpretation or symbolic execution:
//! register/block/global references out of range, call arity mismatches,
//! and — crucially for the finite-interface discipline — recursion in the
//! call graph, which would make a handler non-finite.

use crate::analysis::CallGraph;
use crate::func::{Gep, Inst, Operand, Span, Terminator};
use crate::module::{FuncId, Module};

/// Formats ` at file:line:col` when the span is known, empty otherwise.
fn span_suffix(module: &Module, span: Span) -> String {
    if span.is_known() {
        let file = module.file_name(span.file).unwrap_or("<unknown>");
        format!(" at {file}:{}:{}", span.line, span.col)
    } else {
        String::new()
    }
}

/// Checks a module; returns all problems found (empty means well-formed).
pub fn check_module(module: &Module) -> Vec<String> {
    let mut errors = Vec::new();
    for (fi, f) in module.funcs.iter().enumerate() {
        let fname = &f.name;
        if f.blocks.is_empty() {
            errors.push(format!("{fname}: no blocks"));
            continue;
        }
        if f.num_params > f.num_regs {
            errors.push(format!("{fname}: more params than registers"));
        }
        let check_reg = |r: u32, errors: &mut Vec<String>| {
            if r >= f.num_regs {
                errors.push(format!("{fname}: register r{r} out of range"));
            }
        };
        let check_op = |op: Operand, errors: &mut Vec<String>| {
            if let Operand::Reg(r) = op {
                check_reg(r.0, errors);
            }
        };
        let check_gep = |gep: &Gep, errors: &mut Vec<String>| {
            if gep.global.0 as usize >= module.globals.len() {
                errors.push(format!("{fname}: global id {} out of range", gep.global.0));
                return;
            }
            let g = module.global_decl(gep.global);
            if gep.field.0 as usize >= g.fields.len() {
                errors.push(format!(
                    "{fname}: field id {} out of range for global {}",
                    gep.field.0, g.name
                ));
            }
            check_op(gep.index, errors);
            check_op(gep.sub, errors);
        };
        for (bi, b) in f.blocks.iter().enumerate() {
            for inst in &b.insts {
                match inst {
                    Inst::Bin { dst, a, b, .. } | Inst::Cmp { dst, a, b, .. } => {
                        check_reg(dst.0, &mut errors);
                        check_op(*a, &mut errors);
                        check_op(*b, &mut errors);
                    }
                    Inst::Copy { dst, src } => {
                        check_reg(dst.0, &mut errors);
                        check_op(*src, &mut errors);
                    }
                    Inst::Load { dst, gep } => {
                        check_reg(dst.0, &mut errors);
                        check_gep(gep, &mut errors);
                    }
                    Inst::Store { gep, val } => {
                        check_gep(gep, &mut errors);
                        check_op(*val, &mut errors);
                    }
                    Inst::Call { dst, func, args } => {
                        check_reg(dst.0, &mut errors);
                        if func.0 as usize >= module.funcs.len() {
                            errors.push(format!("{fname}: call to unknown function id {}", func.0));
                        } else {
                            let callee = module.func_def(*func);
                            if callee.num_params as usize != args.len() {
                                errors.push(format!(
                                    "{fname}: call to {} with {} args, expected {}",
                                    callee.name,
                                    args.len(),
                                    callee.num_params
                                ));
                            }
                        }
                        for a in args {
                            check_op(*a, &mut errors);
                        }
                    }
                }
            }
            let check_target = |t: crate::func::BlockId, errors: &mut Vec<String>| {
                if t.0 as usize >= f.blocks.len() {
                    errors.push(format!(
                        "{fname}: block {bi} jumps to missing block {}{}",
                        t.0,
                        span_suffix(module, b.term_span)
                    ));
                }
            };
            match &b.term {
                Terminator::Jmp(t) => check_target(*t, &mut errors),
                Terminator::Br { cond, then_, else_ } => {
                    check_op(*cond, &mut errors);
                    check_target(*then_, &mut errors);
                    check_target(*else_, &mut errors);
                }
                Terminator::Ret(v) => check_op(*v, &mut errors),
            }
        }
        let _ = fi;
    }
    let graph = CallGraph::build(module);
    if let Some(cycle) = graph.find_cycle() {
        let names: Vec<&str> = cycle
            .iter()
            .map(|f| module.func_def(*f).name.as_str())
            .collect();
        let site = graph.call_site(cycle[0], cycle[1]).unwrap_or(Span::NONE);
        errors.push(format!(
            "recursion detected (non-finite interface): {}{}",
            names.join(" -> "),
            span_suffix(module, site)
        ));
    }
    errors
}

/// Detects a cycle in the call graph; returns it if found.
///
/// Thin wrapper over [`CallGraph::find_cycle`], the single home for
/// call-graph reasoning.
pub fn find_recursion(module: &Module) -> Option<Vec<FuncId>> {
    CallGraph::build(module).find_cycle()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::func::{BinOp, Inst, Operand, Reg};

    #[test]
    fn clean_module_passes() {
        let mut m = Module::new();
        let mut fb = FuncBuilder::new("f", 1);
        let x = fb.param(0);
        let r = fb.bin(BinOp::Add, Operand::Reg(x), Operand::Const(1));
        fb.ret(Operand::Reg(r));
        m.add_func(fb.finish());
        assert!(check_module(&m).is_empty());
    }

    #[test]
    fn recursion_is_rejected() {
        let mut m = Module::new();
        // Two mutually recursive functions; ids assigned in order.
        let mut fb = FuncBuilder::new("even", 1);
        let r = fb.call(crate::module::FuncId(1), vec![Operand::Reg(fb.param(0))]);
        fb.ret(Operand::Reg(r));
        m.add_func(fb.finish());
        let mut fb = FuncBuilder::new("odd", 1);
        let r = fb.call(crate::module::FuncId(0), vec![Operand::Reg(fb.param(0))]);
        fb.ret(Operand::Reg(r));
        m.add_func(fb.finish());
        let errors = check_module(&m);
        assert!(errors.iter().any(|e| e.contains("recursion")), "{errors:?}");
    }

    #[test]
    fn missing_block_target_reports_span() {
        let mut m = Module::new();
        let file = m.intern_file("t.hc");
        let mut fb = FuncBuilder::new("f", 0);
        fb.set_span(Span::new(file, 7, 3));
        fb.jmp(crate::func::BlockId(9));
        m.add_func(fb.finish());
        let errors = check_module(&m);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("missing block 9") && e.contains("t.hc:7:3")),
            "{errors:?}"
        );
    }

    #[test]
    fn bad_register_is_reported() {
        let mut m = Module::new();
        let mut fb = FuncBuilder::new("f", 0);
        fb.ret(Operand::Const(0));
        let mut f = fb.finish();
        // Corrupt: reference a register beyond num_regs.
        f.blocks[0].insts.push(Inst::Copy {
            dst: Reg(99),
            src: Operand::Const(1),
        });
        m.add_func(f);
        let errors = check_module(&m);
        assert!(errors.iter().any(|e| e.contains("r99")), "{errors:?}");
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let mut m = Module::new();
        let mut fb = FuncBuilder::new("callee", 2);
        fb.ret(Operand::Const(0));
        let callee = m.add_func(fb.finish());
        let mut fb = FuncBuilder::new("caller", 0);
        let r = fb.call(callee, vec![Operand::Const(1)]);
        fb.ret(Operand::Reg(r));
        m.add_func(fb.finish());
        let errors = check_module(&m);
        assert!(
            errors.iter().any(|e| e.contains("expected 2")),
            "{errors:?}"
        );
    }
}
