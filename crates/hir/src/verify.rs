//! Module well-formedness checking.
//!
//! Catches structural errors before interpretation or symbolic execution:
//! register/block/global references out of range, call arity mismatches,
//! and — crucially for the finite-interface discipline — recursion in the
//! call graph, which would make a handler non-finite.

use crate::func::{Gep, Inst, Operand, Terminator};
use crate::module::{FuncId, Module};

/// Checks a module; returns all problems found (empty means well-formed).
pub fn check_module(module: &Module) -> Vec<String> {
    let mut errors = Vec::new();
    for (fi, f) in module.funcs.iter().enumerate() {
        let fname = &f.name;
        if f.blocks.is_empty() {
            errors.push(format!("{fname}: no blocks"));
            continue;
        }
        if f.num_params > f.num_regs {
            errors.push(format!("{fname}: more params than registers"));
        }
        let check_reg = |r: u32, errors: &mut Vec<String>| {
            if r >= f.num_regs {
                errors.push(format!("{fname}: register r{r} out of range"));
            }
        };
        let check_op = |op: Operand, errors: &mut Vec<String>| {
            if let Operand::Reg(r) = op {
                check_reg(r.0, errors);
            }
        };
        let check_gep = |gep: &Gep, errors: &mut Vec<String>| {
            if gep.global.0 as usize >= module.globals.len() {
                errors.push(format!("{fname}: global id {} out of range", gep.global.0));
                return;
            }
            let g = module.global_decl(gep.global);
            if gep.field.0 as usize >= g.fields.len() {
                errors.push(format!(
                    "{fname}: field id {} out of range for global {}",
                    gep.field.0, g.name
                ));
            }
            check_op(gep.index, errors);
            check_op(gep.sub, errors);
        };
        for (bi, b) in f.blocks.iter().enumerate() {
            for inst in &b.insts {
                match inst {
                    Inst::Bin { dst, a, b, .. } | Inst::Cmp { dst, a, b, .. } => {
                        check_reg(dst.0, &mut errors);
                        check_op(*a, &mut errors);
                        check_op(*b, &mut errors);
                    }
                    Inst::Copy { dst, src } => {
                        check_reg(dst.0, &mut errors);
                        check_op(*src, &mut errors);
                    }
                    Inst::Load { dst, gep } => {
                        check_reg(dst.0, &mut errors);
                        check_gep(gep, &mut errors);
                    }
                    Inst::Store { gep, val } => {
                        check_gep(gep, &mut errors);
                        check_op(*val, &mut errors);
                    }
                    Inst::Call { dst, func, args } => {
                        check_reg(dst.0, &mut errors);
                        if func.0 as usize >= module.funcs.len() {
                            errors.push(format!("{fname}: call to unknown function id {}", func.0));
                        } else {
                            let callee = module.func_def(*func);
                            if callee.num_params as usize != args.len() {
                                errors.push(format!(
                                    "{fname}: call to {} with {} args, expected {}",
                                    callee.name,
                                    args.len(),
                                    callee.num_params
                                ));
                            }
                        }
                        for a in args {
                            check_op(*a, &mut errors);
                        }
                    }
                }
            }
            let check_target = |t: crate::func::BlockId, errors: &mut Vec<String>| {
                if t.0 as usize >= f.blocks.len() {
                    errors.push(format!(
                        "{fname}: block {bi} jumps to missing block {}",
                        t.0
                    ));
                }
            };
            match &b.term {
                Terminator::Jmp(t) => check_target(*t, &mut errors),
                Terminator::Br { cond, then_, else_ } => {
                    check_op(*cond, &mut errors);
                    check_target(*then_, &mut errors);
                    check_target(*else_, &mut errors);
                }
                Terminator::Ret(v) => check_op(*v, &mut errors),
            }
        }
        let _ = fi;
    }
    if let Some(cycle) = find_recursion(module) {
        let names: Vec<&str> = cycle
            .iter()
            .map(|f| module.func_def(*f).name.as_str())
            .collect();
        errors.push(format!(
            "recursion detected (non-finite interface): {}",
            names.join(" -> ")
        ));
    }
    errors
}

/// Detects a cycle in the call graph; returns it if found.
pub fn find_recursion(module: &Module) -> Option<Vec<FuncId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Gray,
        Black,
    }
    let n = module.funcs.len();
    let mut marks = vec![Mark::White; n];
    let mut path: Vec<usize> = Vec::new();

    fn dfs(
        module: &Module,
        u: usize,
        marks: &mut Vec<Mark>,
        path: &mut Vec<usize>,
    ) -> Option<Vec<FuncId>> {
        marks[u] = Mark::Gray;
        path.push(u);
        for callee in module.funcs[u].callees() {
            let v = callee.0 as usize;
            match marks[v] {
                Mark::Gray => {
                    let start = path.iter().position(|&x| x == v).unwrap();
                    let mut cycle: Vec<FuncId> =
                        path[start..].iter().map(|&x| FuncId(x as u32)).collect();
                    cycle.push(callee);
                    return Some(cycle);
                }
                Mark::White => {
                    if let Some(c) = dfs(module, v, marks, path) {
                        return Some(c);
                    }
                }
                Mark::Black => {}
            }
        }
        path.pop();
        marks[u] = Mark::Black;
        None
    }

    for u in 0..n {
        if marks[u] == Mark::White {
            if let Some(c) = dfs(module, u, &mut marks, &mut path) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::func::{BinOp, Inst, Operand, Reg};

    #[test]
    fn clean_module_passes() {
        let mut m = Module::new();
        let mut fb = FuncBuilder::new("f", 1);
        let x = fb.param(0);
        let r = fb.bin(BinOp::Add, Operand::Reg(x), Operand::Const(1));
        fb.ret(Operand::Reg(r));
        m.add_func(fb.finish());
        assert!(check_module(&m).is_empty());
    }

    #[test]
    fn recursion_is_rejected() {
        let mut m = Module::new();
        // Two mutually recursive functions; ids assigned in order.
        let mut fb = FuncBuilder::new("even", 1);
        let r = fb.call(crate::module::FuncId(1), vec![Operand::Reg(fb.param(0))]);
        fb.ret(Operand::Reg(r));
        m.add_func(fb.finish());
        let mut fb = FuncBuilder::new("odd", 1);
        let r = fb.call(crate::module::FuncId(0), vec![Operand::Reg(fb.param(0))]);
        fb.ret(Operand::Reg(r));
        m.add_func(fb.finish());
        let errors = check_module(&m);
        assert!(errors.iter().any(|e| e.contains("recursion")), "{errors:?}");
    }

    #[test]
    fn bad_register_is_reported() {
        let mut m = Module::new();
        let mut fb = FuncBuilder::new("f", 0);
        fb.ret(Operand::Const(0));
        let mut f = fb.finish();
        // Corrupt: reference a register beyond num_regs.
        f.blocks[0].insts.push(Inst::Copy {
            dst: Reg(99),
            src: Operand::Const(1),
        });
        m.add_func(f);
        let errors = check_module(&m);
        assert!(errors.iter().any(|e| e.contains("r99")), "{errors:?}");
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let mut m = Module::new();
        let mut fb = FuncBuilder::new("callee", 2);
        fb.ret(Operand::Const(0));
        let callee = m.add_func(fb.finish());
        let mut fb = FuncBuilder::new("caller", 0);
        let r = fb.call(callee, vec![Operand::Const(1)]);
        fb.ret(Operand::Reg(r));
        m.add_func(fb.finish());
        let errors = check_module(&m);
        assert!(
            errors.iter().any(|e| e.contains("expected 2")),
            "{errors:?}"
        );
    }
}
