//! HIR: the LLVM-IR-like intermediate representation the kernel is
//! verified at.
//!
//! The paper verifies Hyperkernel at the LLVM IR level because IR
//! semantics are far simpler than C while retaining types and structure
//! (§3.2). HIR keeps exactly the properties that verification relies on
//! and drops what Hyperkernel never uses (exceptions, integer-to-pointer
//! casts, floats, vectors):
//!
//! * all values are 64-bit signed integers in virtual registers;
//! * memory is a set of typed **global arrays of structs** accessed
//!   through structured GEPs (`global[index].field[sub]`), never raw
//!   pointers — which is what lets the verifier map each field to an
//!   uninterpreted function, the paper's "simple memory model tailored
//!   for kernel verification";
//! * undefined behaviour is explicit and three-way, mirroring LLVM's
//!   taxonomy: immediate UB (division by zero, out-of-bounds access,
//!   signed overflow), undefined values (uninitialized reads), and
//!   volatile reads (DMA pages) that may return anything;
//! * control flow is basic blocks with `jmp`/`br`/`ret`; loops are
//!   allowed but every verified function must be *self-finitizing* — the
//!   symbolic executor simply unrolls until the function provably exits
//!   (§3.2).
//!
//! The same HIR that is verified is also what executes: [`interp`] is the
//! kernel's runtime, so there is no gap between the verified artifact and
//! the running one (the paper instead trusts the LLVM backend).

pub mod analysis;
pub mod builder;
pub mod func;
pub mod interp;
pub mod module;
pub mod printer;
pub mod verify;

pub use analysis::{
    AnalysisConfig, AnalysisResult, CallGraph, Cfg, Diagnostic, DiagnosticCode, LoopBounds,
};
pub use builder::FuncBuilder;
pub use func::{BinOp, Block, BlockId, CmpKind, Func, Gep, Inst, Operand, Reg, Span, Terminator};
pub use interp::{ExecError, Interp, MemBackend, UbKind, VecMem};
pub use module::{FieldDecl, FieldId, FuncId, GlobalDecl, GlobalId, Module};
