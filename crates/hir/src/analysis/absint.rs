//! Abstract interpretation over a constant/interval domain.
//!
//! This pass walks every abstract path through an entry point (inlining
//! calls, forking at undecided branches) and proves three things at
//! once:
//!
//! 1. **Finiteness**: every loop terminates within a constant bound.
//!    Per-frame block-entry counts are capped; the observed maxima are
//!    exported as [`LoopBounds`] with counting semantics identical to
//!    `symx`'s per-frame visit counters, so the symbolic executor can
//!    assert its unrolling limit instead of probing the solver.
//! 2. **UB lints**: possible division/remainder by zero, shift amounts
//!    outside `[0, 64)`, and out-of-bounds GEP indexes, flagged with
//!    HyperC source spans.
//! 3. **Value tracking** precise enough that the kernel's validation
//!    idioms (`if (pid < 1 || pid >= NR_PROCS) return;`), branch-free
//!    select patterns (`b + (a - b) * c`), guarded multiplies
//!    (`slot * is_open`), and masked ring-buffer indexes
//!    (`(rp + i) & (PIPE_WORDS - 1)`) all verify without findings.
//!
//! Values are hash-consed into *value numbers* so that equal
//! expressions in different functions (after inlining) share
//! assumptions and interval refinements. The domain additionally
//! carries relational upper-bound facts (`a <= b + delta`, recorded
//! when a comparison against a non-constant bound is narrowed), a
//! per-(global, field) load memo with store invalidation, and
//! optional *field range rules* encoding the kernel's representation
//! invariant (see [`super::FieldRangeRule`], [`super::CondRangeRule`]).

use std::collections::{HashMap, HashSet};

use super::{AnalysisConfig, CondKind, Diagnostic, DiagnosticCode, LoopBounds};
use crate::func::{BinOp, CmpKind, Gep, Inst, Operand, Reg, Span, Terminator};
use crate::interp;
use crate::module::{FieldId, FuncId, GlobalId, Module};

/// A value number: an index into the hash-consed expression table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Vn(u32);

/// Comparison shapes kept after canonicalization (`Ne`, `Sle`, `Ule`
/// are rewritten into `Not` of these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CmpOp {
    Eq,
    Slt,
    Ult,
}

/// A canonical expression. `Not(x)` denotes `x == 0 ? 1 : 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Expr {
    Const(i64),
    Opaque(u32),
    Bin(BinOp, Vn, Vn),
    Cmp(CmpOp, Vn, Vn),
    Not(Vn),
}

#[derive(Default)]
struct VnTable {
    exprs: Vec<Expr>,
    map: HashMap<Expr, Vn>,
    next_opaque: u32,
}

impl VnTable {
    fn intern(&mut self, e: Expr) -> Vn {
        if let Some(&v) = self.map.get(&e) {
            return v;
        }
        let v = Vn(self.exprs.len() as u32);
        self.exprs.push(e);
        self.map.insert(e, v);
        v
    }

    fn lookup(&self, e: &Expr) -> Option<Vn> {
        self.map.get(e).copied()
    }

    fn konst(&mut self, v: i64) -> Vn {
        self.intern(Expr::Const(v))
    }

    fn fresh(&mut self) -> Vn {
        let id = self.next_opaque;
        self.next_opaque += 1;
        self.intern(Expr::Opaque(id))
    }

    fn expr(&self, v: Vn) -> Expr {
        self.exprs[v.0 as usize]
    }
}

/// A closed integer interval `[lo, hi]`; empty when `lo > hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    lo: i64,
    hi: i64,
}

impl Interval {
    const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    fn new(lo: i64, hi: i64) -> Interval {
        Interval { lo, hi }
    }

    fn point(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    fn excludes_zero(&self) -> bool {
        !self.is_empty() && !self.contains(0)
    }

    fn intersect(self, o: Interval) -> Interval {
        Interval::new(self.lo.max(o.lo), self.hi.min(o.hi))
    }

    fn hull(self, o: Interval) -> Interval {
        if self.is_empty() {
            return o;
        }
        if o.is_empty() {
            return self;
        }
        Interval::new(self.lo.min(o.lo), self.hi.max(o.hi))
    }

    /// Whether the interval is non-empty and within `[lo, hi]`.
    fn within(&self, lo: i64, hi: i64) -> bool {
        !self.is_empty() && self.lo >= lo && self.hi <= hi
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let end = |v: i64, f: &mut std::fmt::Formatter<'_>| {
            if v == i64::MIN {
                write!(f, "-inf")
            } else if v == i64::MAX {
                write!(f, "+inf")
            } else {
                write!(f, "{v}")
            }
        };
        write!(f, "[")?;
        end(self.lo, f)?;
        write!(f, ", ")?;
        end(self.hi, f)?;
        write!(f, "]")
    }
}

fn clamp128(lo: i128, hi: i128) -> Interval {
    if lo < i64::MIN as i128 || hi > i64::MAX as i128 {
        // The true range leaves i64: the wrapping result can be anything.
        Interval::TOP
    } else {
        Interval::new(lo as i64, hi as i64)
    }
}

/// Smallest `2^k - 1 >= v` for `v >= 0`.
fn pow2_mask(v: i64) -> i64 {
    let mut m: i64 = 0;
    while m < v {
        m = m.wrapping_shl(1) | 1;
        if m == -1 {
            return i64::MAX;
        }
    }
    m
}

fn interval_bin(op: BinOp, a: Interval, b: Interval) -> Interval {
    if a.is_empty() || b.is_empty() {
        return Interval::TOP;
    }
    match op {
        BinOp::Add => clamp128(a.lo as i128 + b.lo as i128, a.hi as i128 + b.hi as i128),
        BinOp::Sub => clamp128(a.lo as i128 - b.hi as i128, a.hi as i128 - b.lo as i128),
        BinOp::Mul => {
            let ps = [
                a.lo as i128 * b.lo as i128,
                a.lo as i128 * b.hi as i128,
                a.hi as i128 * b.lo as i128,
                a.hi as i128 * b.hi as i128,
            ];
            clamp128(*ps.iter().min().unwrap(), *ps.iter().max().unwrap())
        }
        BinOp::UDiv => {
            if a.lo >= 0 && b.lo >= 1 {
                Interval::new(a.lo / b.hi, a.hi / b.lo)
            } else {
                Interval::TOP
            }
        }
        BinOp::URem => {
            if a.lo >= 0 && b.lo >= 1 {
                Interval::new(0, (b.hi - 1).min(a.hi))
            } else {
                Interval::TOP
            }
        }
        BinOp::And => {
            // If either side is wholly non-negative, the result is
            // bounded by it regardless of the other side's sign.
            let mut hi = i64::MAX;
            if a.lo >= 0 {
                hi = hi.min(a.hi);
            }
            if b.lo >= 0 {
                hi = hi.min(b.hi);
            }
            if hi < i64::MAX {
                Interval::new(0, hi)
            } else {
                Interval::TOP
            }
        }
        BinOp::Or => {
            if a.lo >= 0 && b.lo >= 0 {
                Interval::new(a.lo.max(b.lo), pow2_mask(a.hi.max(b.hi)))
            } else {
                Interval::TOP
            }
        }
        BinOp::Xor => {
            if a.lo >= 0 && b.lo >= 0 {
                Interval::new(0, pow2_mask(a.hi.max(b.hi)))
            } else {
                Interval::TOP
            }
        }
        BinOp::Shl => {
            if a.lo >= 0 && b.within(0, 63) {
                clamp128((a.lo as i128) << b.lo as u32, (a.hi as i128) << b.hi as u32)
            } else {
                Interval::TOP
            }
        }
        BinOp::LShr => {
            if a.lo >= 0 && b.within(0, 63) {
                Interval::new(a.lo >> b.hi, a.hi >> b.lo)
            } else {
                Interval::TOP
            }
        }
        BinOp::AShr => {
            if b.within(0, 63) {
                let cands = [a.lo >> b.lo, a.lo >> b.hi, a.hi >> b.lo, a.hi >> b.hi];
                Interval::new(*cands.iter().min().unwrap(), *cands.iter().max().unwrap())
            } else {
                Interval::TOP
            }
        }
    }
}

fn interval_cmp(op: CmpOp, a: Interval, b: Interval) -> Interval {
    if a.is_empty() || b.is_empty() {
        return Interval::new(0, 1);
    }
    match op {
        CmpOp::Eq => {
            if a.hi < b.lo || b.hi < a.lo {
                Interval::point(0)
            } else if a.lo == a.hi && a == b {
                Interval::point(1)
            } else {
                Interval::new(0, 1)
            }
        }
        CmpOp::Slt => {
            if a.hi < b.lo {
                Interval::point(1)
            } else if a.lo >= b.hi {
                Interval::point(0)
            } else {
                Interval::new(0, 1)
            }
        }
        CmpOp::Ult => {
            // Only decide when signs make unsigned order match signed.
            if a.lo >= 0 && b.lo >= 0 {
                interval_cmp(CmpOp::Slt, a, b)
            } else {
                Interval::new(0, 1)
            }
        }
    }
}

/// The narrowable, fork-cloned part of a path: intervals, boolean
/// assumptions, and relational upper-bound facts, all keyed by [`Vn`].
#[derive(Clone, Default)]
struct Env {
    intervals: HashMap<Vn, Interval>,
    assumptions: HashMap<Vn, bool>,
    /// `key <= bound + delta` for each `(bound, delta)`.
    facts: HashMap<Vn, Vec<(Vn, i64)>>,
}

type Memo = HashMap<(GlobalId, FieldId, Vn, Vn), Vn>;

#[derive(Clone)]
struct Frame {
    func: FuncId,
    regs: Vec<Option<Vn>>,
    block: u32,
    inst: usize,
    ret_dst: Option<Reg>,
    visits: HashMap<u32, u32>,
}

#[derive(Clone)]
struct PathState {
    env: Env,
    memo: Memo,
    dirty: HashMap<(GlobalId, FieldId), Interval>,
    frames: Vec<Frame>,
}

struct RFieldRange {
    global: GlobalId,
    field: FieldId,
    iv: Interval,
    min_index: u64,
}

struct RCondRange {
    global: GlobalId,
    cond_field: FieldId,
    kind: CondKind,
    target_field: FieldId,
    iv: Interval,
}

/// The abstract interpreter; one instance analyses many entry points,
/// sharing its value-number table.
pub(crate) struct AbsInt<'a> {
    module: &'a Module,
    config: &'a AnalysisConfig,
    field_ranges: Vec<RFieldRange>,
    cond_ranges: Vec<RCondRange>,
    vns: VnTable,
    zero: Vn,
    /// Dedup of reported findings by (code, func, block, inst-or-term).
    reported: HashSet<(DiagnosticCode, FuncId, u32, u32)>,
}

const REVAL_DEPTH: u32 = 6;
const MAX_FACTS_PER_VN: usize = 4;

impl<'a> AbsInt<'a> {
    pub(crate) fn new(module: &'a Module, config: &'a AnalysisConfig) -> AbsInt<'a> {
        let mut vns = VnTable::default();
        let zero = vns.konst(0);
        let mut field_ranges = Vec::new();
        for r in &config.field_ranges {
            let Some(g) = module.global(&r.global) else {
                continue;
            };
            let Some(f) = module.global_decl(g).field(&r.field) else {
                continue;
            };
            field_ranges.push(RFieldRange {
                global: g,
                field: f,
                iv: Interval::new(r.lo, r.hi),
                min_index: r.min_index,
            });
        }
        let mut cond_ranges = Vec::new();
        for r in &config.cond_ranges {
            let Some(g) = module.global(&r.global) else {
                continue;
            };
            let decl = module.global_decl(g);
            let (Some(cf), Some(tf)) = (decl.field(&r.cond_field), decl.field(&r.target_field))
            else {
                continue;
            };
            cond_ranges.push(RCondRange {
                global: g,
                cond_field: cf,
                kind: r.kind,
                target_field: tf,
                iv: Interval::new(r.lo, r.hi),
            });
        }
        AbsInt {
            module,
            config,
            field_ranges,
            cond_ranges,
            vns,
            zero,
            reported: HashSet::new(),
        }
    }

    /// Analyses every abstract path through `root`, appending findings
    /// to `diags` and (when the analysis completes within budget and
    /// every loop stays bounded) merging proven loop bounds into
    /// `bounds`.
    pub(crate) fn analyze(
        &mut self,
        root: FuncId,
        diags: &mut Vec<Diagnostic>,
        bounds: &mut LoopBounds,
    ) {
        let module = self.module;
        let func = module.func_def(root);
        let mut frame = Frame {
            func: root,
            regs: vec![None; func.num_regs as usize],
            block: 0,
            inst: 0,
            ret_dst: None,
            visits: HashMap::new(),
        };
        for p in 0..func.num_params {
            frame.regs[p as usize] = Some(self.vns.fresh());
        }
        let mut local = LoopBounds::default();
        let mut poisoned = false;
        let mut steps: u64 = 0;
        let mut worklist = vec![PathState {
            env: Env::default(),
            memo: Memo::new(),
            dirty: HashMap::new(),
            frames: vec![frame],
        }];
        while let Some(st) = worklist.pop() {
            if !self.run_path(
                st,
                &mut worklist,
                diags,
                &mut local,
                &mut steps,
                &mut poisoned,
            ) {
                // Budget exhausted: partial visit counts are not proofs.
                diags.push(Diagnostic {
                    code: DiagnosticCode::AnalysisBudget,
                    func: func.name.clone(),
                    span: Span::NONE,
                    message: format!(
                        "analysis budget of {} steps exhausted; no loop bounds exported",
                        self.config.max_steps
                    ),
                    allowlisted: false,
                });
                poisoned = true;
                break;
            }
        }
        if !poisoned {
            bounds.merge(&local);
        }
    }

    /// Runs one path to completion; forked siblings go to `worklist`.
    /// Returns false when the global step budget is exhausted.
    fn run_path(
        &mut self,
        mut st: PathState,
        worklist: &mut Vec<PathState>,
        diags: &mut Vec<Diagnostic>,
        bounds: &mut LoopBounds,
        steps: &mut u64,
        poisoned: &mut bool,
    ) -> bool {
        let module = self.module;
        loop {
            *steps += 1;
            if *steps > self.config.max_steps {
                return false;
            }
            let fi = st.frames.len() - 1;
            let (func_id, block, inst_idx) = {
                let f = &st.frames[fi];
                (f.func, f.block, f.inst)
            };
            let func = module.func_def(func_id);
            let blk = &func.blocks[block as usize];
            if inst_idx < blk.insts.len() {
                st.frames[fi].inst += 1;
                let span = blk.inst_span(inst_idx);
                let site = (func_id, block, inst_idx as u32);
                self.exec_inst(&mut st, &blk.insts[inst_idx], span, site, diags);
                continue;
            }
            match &blk.term {
                Terminator::Jmp(t) => {
                    if !self.enter(&mut st, t.0, bounds, diags, poisoned) {
                        return true;
                    }
                }
                Terminator::Br { cond, then_, else_ } => {
                    let vc = self.op_vn(&mut st, *cond);
                    let decided = st.env.assumptions.get(&vc).copied().or_else(|| {
                        let iv = self.reval(&st.env, vc);
                        if iv.excludes_zero() {
                            Some(true)
                        } else if iv == Interval::point(0) {
                            Some(false)
                        } else {
                            None
                        }
                    });
                    match decided {
                        Some(true) => {
                            if !self.enter(&mut st, then_.0, bounds, diags, poisoned) {
                                return true;
                            }
                        }
                        Some(false) => {
                            if !self.enter(&mut st, else_.0, bounds, diags, poisoned) {
                                return true;
                            }
                        }
                        None => {
                            let mut else_st = st.clone();
                            if self.narrow(&mut else_st.env, &else_st.memo, vc, false)
                                && self.enter(&mut else_st, else_.0, bounds, diags, poisoned)
                            {
                                worklist.push(else_st);
                            }
                            if !(self.narrow(&mut st.env, &st.memo, vc, true)
                                && self.enter(&mut st, then_.0, bounds, diags, poisoned))
                            {
                                return true;
                            }
                        }
                    }
                }
                Terminator::Ret(v) => {
                    let vr = self.op_vn(&mut st, *v);
                    let done = st.frames.pop().expect("active frame");
                    match st.frames.last_mut() {
                        Some(caller) => {
                            if let Some(dst) = done.ret_dst {
                                caller.regs[dst.0 as usize] = Some(vr);
                            }
                        }
                        None => return true, // path complete
                    }
                }
            }
        }
    }

    /// Enters `target` in the current frame, bumping its visit count.
    /// Returns false (killing the path) when the per-activation cap is
    /// exceeded, which also reports an unbounded-loop finding.
    fn enter(
        &mut self,
        st: &mut PathState,
        target: u32,
        bounds: &mut LoopBounds,
        diags: &mut Vec<Diagnostic>,
        poisoned: &mut bool,
    ) -> bool {
        let frame = st.frames.last_mut().expect("active frame");
        let c = frame.visits.entry(target).or_insert(0);
        *c += 1;
        let count = *c;
        let func_id = frame.func;
        bounds.observe(func_id, target, count);
        if count > self.config.max_block_visits {
            *poisoned = true;
            let func = self.module.func_def(func_id);
            let blk = &func.blocks[target as usize];
            let span = if !blk.spans.is_empty() {
                blk.spans[0]
            } else {
                blk.term_span
            };
            self.report(
                diags,
                DiagnosticCode::UnboundedLoop,
                (func_id, target, u32::MAX),
                span,
                format!(
                    "loop entered more than {} times without a provable constant bound",
                    self.config.max_block_visits
                ),
            );
            return false;
        }
        let frame = st.frames.last_mut().expect("active frame");
        frame.block = target;
        frame.inst = 0;
        true
    }

    fn report(
        &mut self,
        diags: &mut Vec<Diagnostic>,
        code: DiagnosticCode,
        site: (FuncId, u32, u32),
        span: Span,
        message: String,
    ) {
        if !self.reported.insert((code, site.0, site.1, site.2)) {
            return;
        }
        diags.push(Diagnostic {
            code,
            func: self.module.func_def(site.0).name.clone(),
            span,
            message,
            allowlisted: false,
        });
    }

    fn op_vn(&mut self, st: &mut PathState, op: Operand) -> Vn {
        match op {
            Operand::Const(c) => self.vns.konst(c),
            Operand::Reg(r) => {
                let frame = st.frames.last_mut().expect("active frame");
                match frame.regs[r.0 as usize] {
                    Some(v) => v,
                    None => {
                        // Undef read; the definite-init pass reports it.
                        let v = self.vns.fresh();
                        frame.regs[r.0 as usize] = Some(v);
                        v
                    }
                }
            }
        }
    }

    fn set_reg(&mut self, st: &mut PathState, r: Reg, v: Vn) {
        let frame = st.frames.last_mut().expect("active frame");
        frame.regs[r.0 as usize] = Some(v);
    }

    fn exec_inst(
        &mut self,
        st: &mut PathState,
        inst: &Inst,
        span: Span,
        site: (FuncId, u32, u32),
        diags: &mut Vec<Diagnostic>,
    ) {
        match inst {
            Inst::Bin { dst, op, a, b } => {
                let va = self.op_vn(st, *a);
                let vb = self.op_vn(st, *b);
                match op {
                    BinOp::UDiv | BinOp::URem => {
                        let iv = self.reval(&st.env, vb);
                        let known_nonzero =
                            iv.excludes_zero() || st.env.assumptions.get(&vb) == Some(&true);
                        if !known_nonzero {
                            self.report(
                                diags,
                                DiagnosticCode::PossibleDivByZero,
                                site,
                                span,
                                format!("divisor may be zero (interval {iv})"),
                            );
                        }
                    }
                    BinOp::Shl | BinOp::LShr | BinOp::AShr => {
                        let iv = self.reval(&st.env, vb);
                        if !iv.within(0, 63) {
                            self.report(
                                diags,
                                DiagnosticCode::PossibleShiftRange,
                                site,
                                span,
                                format!("shift amount may fall outside [0, 64) (interval {iv})"),
                            );
                        }
                    }
                    _ => {}
                }
                let vn = self.mk_bin(&mut st.env, &st.memo, *op, va, vb);
                self.set_reg(st, *dst, vn);
            }
            Inst::Cmp { dst, op, a, b } => {
                let va = self.op_vn(st, *a);
                let vb = self.op_vn(st, *b);
                let vn = self.mk_cmp(&mut st.env, *op, va, vb);
                self.set_reg(st, *dst, vn);
            }
            Inst::Copy { dst, src } => {
                let v = self.op_vn(st, *src);
                self.set_reg(st, *dst, v);
            }
            Inst::Load { dst, gep } => {
                let (vidx, vsub) = self.check_gep(st, gep, span, site, diags);
                let v = self.load_value(st, gep.global, gep.field, vidx, vsub);
                self.set_reg(st, *dst, v);
            }
            Inst::Store { gep, val } => {
                let (vidx, vsub) = self.check_gep(st, gep, span, site, diags);
                let vval = self.op_vn(st, *val);
                let g = gep.global;
                let f = gep.field;
                if !self.module.global_decl(g).fields[f.0 as usize].volatile {
                    // Invalidate possibly-aliasing memo entries; the
                    // exact slot remembers the stored value.
                    st.memo.retain(|&(mg, mf, mi, ms), _| {
                        mg != g || mf != f || (mi == vidx && ms == vsub)
                    });
                    st.memo.insert((g, f, vidx, vsub), vval);
                }
                let iv = self.reval(&st.env, vval);
                st.dirty
                    .entry((g, f))
                    .and_modify(|d| *d = d.hull(iv))
                    .or_insert(iv);
            }
            Inst::Call { dst, func, args } => {
                let mut avs = Vec::with_capacity(args.len());
                for a in args {
                    avs.push(self.op_vn(st, *a));
                }
                let callee = self.module.func_def(*func);
                let mut regs = vec![None; callee.num_regs as usize];
                for (i, v) in avs.into_iter().enumerate() {
                    regs[i] = Some(v);
                }
                st.frames.push(Frame {
                    func: *func,
                    regs,
                    block: 0,
                    inst: 0,
                    ret_dst: Some(*dst),
                    visits: HashMap::new(),
                });
            }
        }
    }

    /// Bounds-checks a GEP, reporting findings; returns (index, sub)
    /// value numbers.
    fn check_gep(
        &mut self,
        st: &mut PathState,
        gep: &Gep,
        span: Span,
        site: (FuncId, u32, u32),
        diags: &mut Vec<Diagnostic>,
    ) -> (Vn, Vn) {
        let vidx = self.op_vn(st, gep.index);
        let vsub = self.op_vn(st, gep.sub);
        let decl = self.module.global_decl(gep.global);
        let field = &decl.fields[gep.field.0 as usize];
        let ii = self.reval(&st.env, vidx);
        if !ii.within(0, decl.elems as i64 - 1) {
            self.report(
                diags,
                DiagnosticCode::PossibleOobIndex,
                site,
                span,
                format!(
                    "index into `{}` may fall outside [0, {}) (interval {ii})",
                    decl.name, decl.elems
                ),
            );
        }
        let is = self.reval(&st.env, vsub);
        if !is.within(0, field.elems as i64 - 1) {
            self.report(
                diags,
                DiagnosticCode::PossibleOobSub,
                site,
                span,
                format!(
                    "index into field `{}` of `{}` may fall outside [0, {}) (interval {is})",
                    field.name, decl.name, field.elems
                ),
            );
        }
        (vidx, vsub)
    }

    /// The value of a load, via the memo or a fresh opaque value
    /// constrained by the field-range rules.
    fn load_value(
        &mut self,
        st: &mut PathState,
        g: GlobalId,
        f: FieldId,
        vidx: Vn,
        vsub: Vn,
    ) -> Vn {
        let decl = self.module.global_decl(g);
        if decl.fields[f.0 as usize].volatile {
            // DMA-visible memory reads as anything, every time.
            return self.vns.fresh();
        }
        if let Some(&v) = st.memo.get(&(g, f, vidx, vsub)) {
            return v;
        }
        let fresh = self.vns.fresh();
        let mut iv = Interval::TOP;
        if let Some(rule) = self
            .field_ranges
            .iter()
            .find(|r| r.global == g && r.field == f)
        {
            let ii = self.reval(&st.env, vidx);
            if ii.within(rule.min_index as i64, decl.elems as i64 - 1) {
                let mut base = rule.iv;
                if let Some(d) = st.dirty.get(&(g, f)) {
                    base = base.hull(*d);
                }
                iv = base;
            }
        }
        for ri in 0..self.cond_ranges.len() {
            let (rg, cf, kind, tf, riv) = {
                let r = &self.cond_ranges[ri];
                (r.global, r.cond_field, r.kind, r.target_field, r.iv)
            };
            if rg != g || tf != f {
                continue;
            }
            if let Some(&cvn) = st.memo.get(&(g, cf, vidx, self.zero)) {
                if self.cond_guard_holds(&st.env, cvn, kind) {
                    iv = iv.intersect(riv);
                }
            }
        }
        self.tighten(&mut st.env, fresh, iv);
        st.memo.insert((g, f, vidx, vsub), fresh);
        fresh
    }

    /// Whether a conditional-range guard provably holds for the
    /// memoized condition value `cvn`.
    fn cond_guard_holds(&self, env: &Env, cvn: Vn, kind: CondKind) -> bool {
        let iv = self.reval(env, cvn);
        match kind {
            CondKind::EqConst(k) => {
                if iv == Interval::point(k) {
                    return true;
                }
                self.eq_assumption(env, cvn, k) == Some(true)
            }
            CondKind::NeConst(k) => {
                if !iv.is_empty() && !iv.contains(k) {
                    return true;
                }
                self.eq_assumption(env, cvn, k) == Some(false)
            }
        }
    }

    /// Looks up the recorded truth of `cvn == k`, if any.
    fn eq_assumption(&self, env: &Env, cvn: Vn, k: i64) -> Option<bool> {
        if k == 0 {
            // `x == 0` canonicalizes to `Not(x)`, and assumptions on
            // `Not(x)` are always pushed down onto `x` itself.
            return env.assumptions.get(&cvn).map(|&t| !t);
        }
        let kv = self.vns.lookup(&Expr::Const(k))?;
        let (a, b) = if cvn <= kv { (cvn, kv) } else { (kv, cvn) };
        let eq = self.vns.lookup(&Expr::Cmp(CmpOp::Eq, a, b))?;
        env.assumptions.get(&eq).copied()
    }

    fn tighten(&self, env: &mut Env, vn: Vn, iv: Interval) {
        if let Expr::Const(_) = self.vns.expr(vn) {
            return;
        }
        env.intervals
            .entry(vn)
            .and_modify(|cur| *cur = cur.intersect(iv))
            .or_insert(iv);
    }

    /// Re-evaluates `vn`'s interval from its structure, the stored
    /// per-path interval, and relational upper-bound facts.
    fn reval(&self, env: &Env, vn: Vn) -> Interval {
        self.reval_d(env, vn, REVAL_DEPTH)
    }

    fn reval_d(&self, env: &Env, vn: Vn, d: u32) -> Interval {
        let stored = env.intervals.get(&vn).copied().unwrap_or(Interval::TOP);
        if d == 0 {
            return stored;
        }
        let structural = match self.vns.expr(vn) {
            Expr::Const(c) => Interval::point(c),
            Expr::Opaque(_) => Interval::TOP,
            Expr::Not(x) => {
                let ix = self.reval_d(env, x, d - 1);
                if ix.excludes_zero() {
                    Interval::point(0)
                } else if ix == Interval::point(0) {
                    Interval::point(1)
                } else {
                    Interval::new(0, 1)
                }
            }
            Expr::Bin(op, a, b) => {
                interval_bin(op, self.reval_d(env, a, d - 1), self.reval_d(env, b, d - 1))
            }
            Expr::Cmp(op, a, b) => {
                interval_cmp(op, self.reval_d(env, a, d - 1), self.reval_d(env, b, d - 1))
            }
        };
        let mut iv = stored.intersect(structural);
        if let Some(fs) = env.facts.get(&vn) {
            for &(bvn, delta) in fs {
                let bh = self.reval_d(env, bvn, d - 1).hi.saturating_add(delta);
                iv.hi = iv.hi.min(bh);
            }
        }
        iv
    }

    /// Re-evaluates `target` in a scratch copy of `env` narrowed under
    /// `guard == truth`; `None` if the guard is infeasible.
    fn reval_under(
        &self,
        env: &Env,
        memo: &Memo,
        guard: Vn,
        truth: bool,
        target: Vn,
    ) -> Option<Interval> {
        let mut scratch = env.clone();
        if !self.narrow(&mut scratch, memo, guard, truth) {
            return None;
        }
        Some(self.reval(&scratch, target))
    }

    fn mk_bin(&mut self, env: &mut Env, memo: &Memo, op: BinOp, va: Vn, vb: Vn) -> Vn {
        let ea = self.vns.expr(va);
        let eb = self.vns.expr(vb);
        if let (Expr::Const(x), Expr::Const(y)) = (ea, eb) {
            if let Ok(v) = interp::eval_bin(op, x, y) {
                return self.vns.konst(v);
            }
        }
        // Algebraic identities keep value numbers canonical across
        // loop iterations and inlined helpers.
        match (op, ea, eb) {
            (BinOp::Add, Expr::Const(0), _) => return vb,
            (BinOp::Add | BinOp::Sub, _, Expr::Const(0)) => return va,
            (BinOp::Mul, Expr::Const(0), _) | (BinOp::Mul, _, Expr::Const(0)) => return self.zero,
            (BinOp::Mul, Expr::Const(1), _) => return vb,
            (BinOp::Mul, _, Expr::Const(1)) => return va,
            (BinOp::And, Expr::Const(-1), _) | (BinOp::Or | BinOp::Xor, Expr::Const(0), _) => {
                return vb
            }
            (BinOp::And, _, Expr::Const(-1)) | (BinOp::Or | BinOp::Xor, _, Expr::Const(0)) => {
                return va
            }
            (BinOp::And, Expr::Const(0), _) | (BinOp::And, _, Expr::Const(0)) => return self.zero,
            (BinOp::Shl | BinOp::LShr | BinOp::AShr, _, Expr::Const(0)) => return va,
            _ => {}
        }
        let commutative = matches!(
            op,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        );
        let (ca, cb) = if commutative && vb < va {
            (vb, va)
        } else {
            (va, vb)
        };
        let vn = self.vns.intern(Expr::Bin(op, ca, cb));
        let ia = self.reval(env, ca);
        let ib = self.reval(env, cb);
        let mut iv = interval_bin(op, ia, ib);
        if op == BinOp::Mul {
            // Guarded multiply `x * flag` with `flag in [0,1]`: the
            // result is 0 or x-refined-under-the-guard.
            for (guard, x) in [(ca, cb), (cb, ca)] {
                let ig = self.reval(env, guard);
                if !matches!(self.vns.expr(guard), Expr::Const(_)) && ig.within(0, 1) {
                    let refined = match self.reval_under(env, memo, guard, true, x) {
                        Some(ix) => Interval::point(0).hull(ix),
                        None => Interval::point(0),
                    };
                    iv = iv.intersect(refined);
                }
            }
        }
        if op == BinOp::Add {
            // Branch-free select `x + (a - x) * c` with `c in [0,1]`
            // (the kernel's `blend`): result is x (c=0) or a (c=1).
            for (m, x) in [(ca, cb), (cb, ca)] {
                if let Expr::Bin(BinOp::Mul, p, q) = self.vns.expr(m) {
                    for (s, c) in [(p, q), (q, p)] {
                        if let Expr::Bin(BinOp::Sub, av, bv) = self.vns.expr(s) {
                            if bv == x && self.reval(env, c).within(0, 1) {
                                let mut h = self.reval(env, x);
                                if let Some(iav) = self.reval_under(env, memo, c, true, av) {
                                    h = h.hull(iav);
                                }
                                iv = iv.intersect(h);
                            }
                        }
                    }
                }
            }
        }
        self.tighten(env, vn, iv);
        vn
    }

    fn mk_cmp(&mut self, env: &mut Env, op: CmpKind, va: Vn, vb: Vn) -> Vn {
        match op {
            CmpKind::Eq => self.mk_eq(env, va, vb),
            CmpKind::Ne => {
                let eq = self.mk_eq(env, va, vb);
                self.mk_not(env, eq)
            }
            CmpKind::Slt => self.mk_ord(env, CmpOp::Slt, va, vb),
            CmpKind::Sle => {
                let lt = self.mk_ord(env, CmpOp::Slt, vb, va);
                self.mk_not(env, lt)
            }
            CmpKind::Ult => self.mk_ord(env, CmpOp::Ult, va, vb),
            CmpKind::Ule => {
                let lt = self.mk_ord(env, CmpOp::Ult, vb, va);
                self.mk_not(env, lt)
            }
        }
    }

    fn mk_eq(&mut self, env: &mut Env, va: Vn, vb: Vn) -> Vn {
        if va == vb {
            return self.vns.konst(1);
        }
        let ea = self.vns.expr(va);
        let eb = self.vns.expr(vb);
        if let (Expr::Const(x), Expr::Const(y)) = (ea, eb) {
            return self.vns.konst((x == y) as i64);
        }
        // `x == 0` is `Not(x)`, for any x.
        if eb == Expr::Const(0) {
            return self.mk_not(env, va);
        }
        if ea == Expr::Const(0) {
            return self.mk_not(env, vb);
        }
        let (a, b) = if vb < va { (vb, va) } else { (va, vb) };
        let vn = self.vns.intern(Expr::Cmp(CmpOp::Eq, a, b));
        let iv = interval_cmp(CmpOp::Eq, self.reval(env, a), self.reval(env, b));
        self.tighten(env, vn, iv);
        vn
    }

    fn mk_ord(&mut self, env: &mut Env, op: CmpOp, va: Vn, vb: Vn) -> Vn {
        if va == vb {
            return self.zero;
        }
        if let (Expr::Const(x), Expr::Const(y)) = (self.vns.expr(va), self.vns.expr(vb)) {
            let r = match op {
                CmpOp::Slt => x < y,
                CmpOp::Ult => (x as u64) < (y as u64),
                CmpOp::Eq => unreachable!(),
            };
            return self.vns.konst(r as i64);
        }
        let vn = self.vns.intern(Expr::Cmp(op, va, vb));
        let iv = interval_cmp(op, self.reval(env, va), self.reval(env, vb));
        self.tighten(env, vn, iv);
        vn
    }

    fn mk_not(&mut self, env: &mut Env, x: Vn) -> Vn {
        match self.vns.expr(x) {
            Expr::Const(c) => return self.vns.konst((c == 0) as i64),
            Expr::Not(y) => {
                // `!!y == y` only when y is boolean-valued.
                if matches!(self.vns.expr(y), Expr::Cmp(..) | Expr::Not(_)) {
                    return y;
                }
            }
            _ => {}
        }
        let vn = self.vns.intern(Expr::Not(x));
        let ix = self.reval(env, x);
        let iv = if ix.excludes_zero() {
            Interval::point(0)
        } else if ix == Interval::point(0) {
            Interval::point(1)
        } else {
            Interval::new(0, 1)
        };
        self.tighten(env, vn, iv);
        vn
    }

    /// Assumes `vn != 0` (truth) or `vn == 0` (!truth), narrowing
    /// intervals structurally. Returns false when the assumption
    /// contradicts the current state (the path is infeasible).
    fn narrow(&self, env: &mut Env, memo: &Memo, vn: Vn, truth: bool) -> bool {
        if let Some(&t) = env.assumptions.get(&vn) {
            return t == truth;
        }
        let iv = self.reval(env, vn);
        if truth && iv == Interval::point(0) {
            return false;
        }
        if !truth && iv.excludes_zero() {
            return false;
        }
        if iv.is_empty() {
            return false;
        }
        env.assumptions.insert(vn, truth);
        // Narrow this value's own interval.
        if truth {
            let mut nv = iv;
            if nv.lo == 0 {
                nv.lo = 1;
            }
            if nv.hi == 0 {
                nv.hi = -1;
            }
            if nv.is_empty() {
                return false;
            }
            self.tighten(env, vn, nv);
        } else {
            self.tighten(env, vn, Interval::point(0));
        }
        // Structural descent.
        let descended = match self.vns.expr(vn) {
            Expr::Not(x) => self.narrow(env, memo, x, !truth),
            Expr::Cmp(CmpOp::Eq, a, b) => self.narrow_eq(env, memo, a, b, truth),
            Expr::Cmp(CmpOp::Slt, a, b) => self.narrow_slt(env, a, b, truth),
            Expr::Cmp(CmpOp::Ult, a, b) => {
                let ia = self.reval(env, a);
                let ib = self.reval(env, b);
                if truth {
                    // a <u b with b >= 0 pins a into [0, b.hi - 1].
                    if ib.lo >= 0 {
                        let na = ia.intersect(Interval::new(0, ib.hi.saturating_sub(1)));
                        if na.is_empty() {
                            return false;
                        }
                        self.tighten(env, a, na);
                    }
                    true
                } else if ia.lo >= 0 && ib.lo >= 0 {
                    self.narrow_slt(env, a, b, false)
                } else {
                    true
                }
            }
            // x & y != 0 implies both operands are nonzero.
            Expr::Bin(BinOp::And, a, b) if truth => {
                self.narrow(env, memo, a, true) && self.narrow(env, memo, b, true)
            }
            // x | y == 0 implies both operands are zero.
            Expr::Bin(BinOp::Or, a, b) if !truth => {
                self.narrow(env, memo, a, false) && self.narrow(env, memo, b, false)
            }
            _ => true,
        };
        if !descended {
            return false;
        }
        // A directly-memoized condition field being zero/nonzero may
        // unlock a conditional range (guards against constant 0).
        self.apply_cond_rules(env, memo, vn, 0, !truth)
    }

    fn narrow_eq(&self, env: &mut Env, memo: &Memo, a: Vn, b: Vn, truth: bool) -> bool {
        let ia = self.reval(env, a);
        let ib = self.reval(env, b);
        if truth {
            let m = ia.intersect(ib);
            if m.is_empty() {
                return false;
            }
            self.tighten(env, a, m);
            self.tighten(env, b, m);
        } else {
            // Trim matching endpoints when one side is constant.
            for (cv, ov, oiv) in [(a, b, ib), (b, a, ia)] {
                if let Expr::Const(k) = self.vns.expr(cv) {
                    let mut nv = oiv;
                    if nv.lo == k {
                        nv.lo = k.saturating_add(1);
                    }
                    if nv.hi == k {
                        nv.hi = k.saturating_sub(1);
                    }
                    if nv.is_empty() {
                        return false;
                    }
                    self.tighten(env, ov, nv);
                }
            }
        }
        // Conditional ranges keyed on `field == k` / `field != k`.
        for (cv, ov) in [(a, b), (b, a)] {
            if let Expr::Const(k) = self.vns.expr(cv) {
                if !self.apply_cond_rules(env, memo, ov, k, truth) {
                    return false;
                }
            }
        }
        true
    }

    fn narrow_slt(&self, env: &mut Env, a: Vn, b: Vn, truth: bool) -> bool {
        let ia = self.reval(env, a);
        let ib = self.reval(env, b);
        if truth {
            // a < b
            let na = ia.intersect(Interval::new(i64::MIN, ib.hi.saturating_sub(1)));
            let nb = ib.intersect(Interval::new(ia.lo.saturating_add(1), i64::MAX));
            if na.is_empty() || nb.is_empty() {
                return false;
            }
            self.tighten(env, a, na);
            self.tighten(env, b, nb);
            if !matches!(self.vns.expr(b), Expr::Const(_)) {
                push_fact(env, a, b, -1);
            }
        } else {
            // a >= b
            let na = ia.intersect(Interval::new(ib.lo, i64::MAX));
            let nb = ib.intersect(Interval::new(i64::MIN, ia.hi));
            if na.is_empty() || nb.is_empty() {
                return false;
            }
            self.tighten(env, a, na);
            self.tighten(env, b, nb);
            if !matches!(self.vns.expr(a), Expr::Const(_)) {
                push_fact(env, b, a, 0);
            }
        }
        true
    }

    /// Applies conditional-range rules after learning that the value
    /// `cvn` is (`holds_eq`) or is not equal to the constant `k`.
    /// Returns false if a narrowed target becomes empty.
    fn apply_cond_rules(
        &self,
        env: &mut Env,
        memo: &Memo,
        cvn: Vn,
        k: i64,
        holds_eq: bool,
    ) -> bool {
        if self.cond_ranges.is_empty() {
            return true;
        }
        // Find memo slots whose current value is `cvn`.
        for (&(mg, mf, midx, _), &mvn) in memo.iter() {
            if mvn != cvn {
                continue;
            }
            for r in &self.cond_ranges {
                if r.global != mg || r.cond_field != mf {
                    continue;
                }
                let guard_holds = match r.kind {
                    CondKind::EqConst(rk) => holds_eq && rk == k,
                    CondKind::NeConst(rk) => (holds_eq && rk != k) || (!holds_eq && rk == k),
                };
                if !guard_holds {
                    continue;
                }
                if let Some(&tvn) = memo.get(&(mg, r.target_field, midx, self.zero)) {
                    let cur = self.reval(env, tvn);
                    let nv = cur.intersect(r.iv);
                    if nv.is_empty() {
                        return false;
                    }
                    self.tighten(env, tvn, nv);
                }
            }
        }
        true
    }
}

fn push_fact(env: &mut Env, key: Vn, bound: Vn, delta: i64) {
    let fs = env.facts.entry(key).or_default();
    if fs.len() < MAX_FACTS_PER_VN && !fs.contains(&(bound, delta)) {
        fs.push((bound, delta));
    }
}

#[cfg(test)]
mod tests {
    use super::super::{analyze_module, AnalysisConfig, DiagnosticCode, FieldRangeRule};
    use crate::builder::FuncBuilder;
    use crate::func::{BinOp, CmpKind, Operand};
    use crate::module::{FieldDecl, GlobalDecl, Module};

    fn analyze(
        module: &Module,
        root: &str,
        config: &AnalysisConfig,
    ) -> super::super::AnalysisResult {
        let f = module.func(root).expect("root");
        analyze_module(module, &[f], config)
    }

    #[test]
    fn constant_loop_bound_is_exported() {
        // for (i = 0; i < 3; i++) {}
        let mut fb = FuncBuilder::new("f", 0);
        let i = fb.new_reg();
        fb.copy_to(i, Operand::Const(0));
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jmp(header);
        fb.switch_to(header);
        let c = fb.cmp(CmpKind::Slt, Operand::Reg(i), Operand::Const(3));
        fb.br(Operand::Reg(c), body, exit);
        fb.switch_to(body);
        let ni = fb.bin(BinOp::Add, Operand::Reg(i), Operand::Const(1));
        fb.copy_to(i, Operand::Reg(ni));
        fb.jmp(header);
        fb.switch_to(exit);
        fb.ret(Operand::Const(0));
        let mut m = Module::new();
        let fid = m.add_func(fb.finish());
        let res = analyze(&m, "f", &AnalysisConfig::default());
        assert!(!res.has_findings(), "{:?}", res.diagnostics);
        // Header entered 4 times: preheader jump + 3 back edges.
        assert_eq!(res.bounds.bound(fid, 1), Some(4));
        assert_eq!(res.bounds.bound(fid, 2), Some(3));
    }

    #[test]
    fn unbounded_loop_is_flagged_and_bounds_are_withheld() {
        // while (x != 0) { x = x >> 1; }  -- x unconstrained
        let mut fb = FuncBuilder::new("f", 1);
        let x = crate::func::Reg(0);
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jmp(header);
        fb.switch_to(header);
        let c = fb.cmp(CmpKind::Ne, Operand::Reg(x), Operand::Const(0));
        fb.br(Operand::Reg(c), body, exit);
        fb.switch_to(body);
        let nx = fb.bin(BinOp::AShr, Operand::Reg(x), Operand::Const(1));
        fb.copy_to(x, Operand::Reg(nx));
        fb.jmp(header);
        fb.switch_to(exit);
        fb.ret(Operand::Const(0));
        let mut m = Module::new();
        m.add_func(fb.finish());
        let config = AnalysisConfig {
            max_block_visits: 16,
            ..AnalysisConfig::default()
        };
        let res = analyze(&m, "f", &config);
        assert!(res
            .unsuppressed()
            .any(|d| d.code == DiagnosticCode::UnboundedLoop));
        assert!(res.bounds.is_empty());
    }

    #[test]
    fn division_guard_suppresses_div_by_zero() {
        // g: return a / d            -> finding
        // f: if (d != 0) return a / d; return 0   -> clean
        let mut m = Module::new();
        let mut fb = FuncBuilder::new("g", 2);
        let q = fb.bin(
            BinOp::UDiv,
            Operand::Reg(crate::func::Reg(0)),
            Operand::Reg(crate::func::Reg(1)),
        );
        fb.ret(Operand::Reg(q));
        m.add_func(fb.finish());
        let mut fb = FuncBuilder::new("f", 2);
        let d = crate::func::Reg(1);
        let c = fb.cmp(CmpKind::Ne, Operand::Reg(d), Operand::Const(0));
        let then_b = fb.new_block();
        let else_b = fb.new_block();
        fb.br(Operand::Reg(c), then_b, else_b);
        fb.switch_to(then_b);
        let q = fb.bin(
            BinOp::UDiv,
            Operand::Reg(crate::func::Reg(0)),
            Operand::Reg(d),
        );
        fb.ret(Operand::Reg(q));
        fb.switch_to(else_b);
        fb.ret(Operand::Const(0));
        m.add_func(fb.finish());
        let res = analyze(&m, "g", &AnalysisConfig::default());
        assert!(res
            .unsuppressed()
            .any(|d| d.code == DiagnosticCode::PossibleDivByZero));
        let res = analyze(&m, "f", &AnalysisConfig::default());
        assert!(!res.has_findings(), "{:?}", res.diagnostics);
    }

    fn table_module() -> Module {
        let mut m = Module::new();
        m.declare_global(GlobalDecl {
            name: "table".into(),
            elems: 8,
            fields: vec![FieldDecl {
                name: "value".into(),
                elems: 1,
                volatile: false,
            }],
        });
        m
    }

    #[test]
    fn oob_index_is_flagged_and_validated_index_is_clean() {
        // g: table[i] unvalidated     -> finding
        // f: if (i < 0 || i >= 8) return 0; table[i]   -> clean
        let mut m = table_module();
        let g = m.global("table").unwrap();
        let gep = |idx| crate::func::Gep {
            global: g,
            index: idx,
            field: crate::module::FieldId(0),
            sub: Operand::Const(0),
        };
        let mut fb = FuncBuilder::new("g", 1);
        let v = fb.load(gep(Operand::Reg(crate::func::Reg(0))));
        fb.ret(Operand::Reg(v));
        m.add_func(fb.finish());
        let mut fb = FuncBuilder::new("f", 1);
        let i = crate::func::Reg(0);
        let lo = fb.cmp(CmpKind::Slt, Operand::Reg(i), Operand::Const(0));
        let hi = fb.cmp(CmpKind::Sle, Operand::Const(8), Operand::Reg(i));
        let bad = fb.bin(BinOp::Or, Operand::Reg(lo), Operand::Reg(hi));
        let err_b = fb.new_block();
        let ok_b = fb.new_block();
        fb.br(Operand::Reg(bad), err_b, ok_b);
        fb.switch_to(err_b);
        fb.ret(Operand::Const(0));
        fb.switch_to(ok_b);
        let v = fb.load(gep(Operand::Reg(i)));
        fb.ret(Operand::Reg(v));
        m.add_func(fb.finish());
        let res = analyze(&m, "g", &AnalysisConfig::default());
        assert!(res
            .unsuppressed()
            .any(|d| d.code == DiagnosticCode::PossibleOobIndex));
        let res = analyze(&m, "f", &AnalysisConfig::default());
        assert!(!res.has_findings(), "{:?}", res.diagnostics);
    }

    #[test]
    fn field_range_rule_covers_loaded_index() {
        // table.value in [0, 8) by invariant; table[table[0]] is clean
        // with the rule, flagged without it.
        let mut m = table_module();
        let g = m.global("table").unwrap();
        let gep = |idx| crate::func::Gep {
            global: g,
            index: idx,
            field: crate::module::FieldId(0),
            sub: Operand::Const(0),
        };
        let mut fb = FuncBuilder::new("f", 0);
        let x = fb.load(gep(Operand::Const(0)));
        let v = fb.load(gep(Operand::Reg(x)));
        fb.ret(Operand::Reg(v));
        m.add_func(fb.finish());
        let res = analyze(&m, "f", &AnalysisConfig::default());
        assert!(res
            .unsuppressed()
            .any(|d| d.code == DiagnosticCode::PossibleOobIndex));
        let config = AnalysisConfig {
            field_ranges: vec![FieldRangeRule {
                global: "table".into(),
                field: "value".into(),
                lo: 0,
                hi: 7,
                min_index: 0,
            }],
            ..AnalysisConfig::default()
        };
        let res = analyze(&m, "f", &config);
        assert!(!res.has_findings(), "{:?}", res.diagnostics);
    }

    #[test]
    fn masked_index_is_in_bounds() {
        // table[(x + y) & 7] is always within [0, 8).
        let mut m = table_module();
        let g = m.global("table").unwrap();
        let mut fb = FuncBuilder::new("f", 2);
        let s = fb.bin(
            BinOp::Add,
            Operand::Reg(crate::func::Reg(0)),
            Operand::Reg(crate::func::Reg(1)),
        );
        let idx = fb.bin(BinOp::And, Operand::Reg(s), Operand::Const(7));
        let v = fb.load(crate::func::Gep {
            global: g,
            index: Operand::Reg(idx),
            field: crate::module::FieldId(0),
            sub: Operand::Const(0),
        });
        fb.ret(Operand::Reg(v));
        m.add_func(fb.finish());
        let res = analyze(&m, "f", &AnalysisConfig::default());
        assert!(!res.has_findings(), "{:?}", res.diagnostics);
    }

    #[test]
    fn guarded_multiply_bounds_the_slot() {
        // flag = x < 8 (0/1); slot = i * flag where i in [0,8) under
        // the guard; table[slot] is clean.
        let mut m = table_module();
        let g = m.global("table").unwrap();
        let mut fb = FuncBuilder::new("f", 1);
        let i = crate::func::Reg(0);
        let lo_ok = fb.cmp(CmpKind::Sle, Operand::Const(0), Operand::Reg(i));
        let hi_ok = fb.cmp(CmpKind::Slt, Operand::Reg(i), Operand::Const(8));
        let flag = fb.bin(BinOp::And, Operand::Reg(lo_ok), Operand::Reg(hi_ok));
        let slot = fb.bin(BinOp::Mul, Operand::Reg(i), Operand::Reg(flag));
        let v = fb.load(crate::func::Gep {
            global: g,
            index: Operand::Reg(slot),
            field: crate::module::FieldId(0),
            sub: Operand::Const(0),
        });
        fb.ret(Operand::Reg(v));
        m.add_func(fb.finish());
        let res = analyze(&m, "f", &AnalysisConfig::default());
        assert!(!res.has_findings(), "{:?}", res.diagnostics);
    }
}
