//! Static-analysis framework over HIR.
//!
//! Hyperkernel's push-button decidability rests on a *finite interface*:
//! no recursion, no unbounded loops, and an explicit UB taxonomy at the
//! IR level. This module enforces those properties *before* symbolic
//! execution, with source-span diagnostics, instead of letting a
//! non-finite or UB-prone handler fail late inside the solver:
//!
//! * [`cfg`] — per-function CFG, dominator tree, natural loops;
//! * [`dataflow`] — a small forward-dataflow engine;
//! * [`callgraph`] — interprocedural call graph, recursion detection,
//!   and the worst-case stack bound `checkers` consumes;
//! * [`init`] — definite initialization (use-before-def on registers
//!   along all CFG paths, including undef values flowing into branch
//!   conditions or memory addresses);
//! * [`absint`] — an abstract interpreter over a constant/interval
//!   domain that proves a constant trip-count bound for every loop
//!   (exported as [`LoopBounds`] so `symx` asserts its unrolling limit
//!   instead of guessing) and flags possible division by zero,
//!   out-of-range shifts, and out-of-bounds GEP indexes.
//!
//! [`analyze_module`] orchestrates all passes over a set of entry
//! points (the kernel runs it over every syscall/trap handler plus the
//! representational invariant) and returns structured [`Diagnostic`]s
//! plus the loop bounds. Findings that are expected can be suppressed
//! with [`AllowRule`]s; suppressed findings stay in the result, flagged
//! `allowlisted`, so they remain visible in verification logs.

pub mod absint;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod init;

use std::collections::HashMap;

use crate::func::Span;
use crate::module::{FuncId, Module};

pub use callgraph::CallGraph;
pub use cfg::{Cfg, NaturalLoop};

/// Machine-readable category of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagnosticCode {
    /// The call graph contains a cycle.
    Recursion,
    /// A loop has no provable constant trip-count bound.
    UnboundedLoop,
    /// The abstract interpreter ran out of budget before finishing; no
    /// loop bounds are exported for the affected entry point.
    AnalysisBudget,
    /// A register may be read before it is assigned.
    UseBeforeDef,
    /// A possibly-undef value flows into a branch condition.
    UndefBranch,
    /// A possibly-undef value flows into a memory address.
    UndefAddress,
    /// A `udiv`/`urem` divisor may be zero.
    PossibleDivByZero,
    /// A shift amount may fall outside `[0, 64)`.
    PossibleShiftRange,
    /// A GEP element index may fall outside the global's bounds.
    PossibleOobIndex,
    /// A GEP sub-index may fall outside the field's bounds.
    PossibleOobSub,
}

impl DiagnosticCode {
    /// Stable kebab-case name, used in rendered diagnostics and
    /// allowlist entries.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagnosticCode::Recursion => "recursion",
            DiagnosticCode::UnboundedLoop => "unbounded-loop",
            DiagnosticCode::AnalysisBudget => "analysis-budget",
            DiagnosticCode::UseBeforeDef => "use-before-def",
            DiagnosticCode::UndefBranch => "undef-branch",
            DiagnosticCode::UndefAddress => "undef-address",
            DiagnosticCode::PossibleDivByZero => "possible-div-by-zero",
            DiagnosticCode::PossibleShiftRange => "possible-shift-range",
            DiagnosticCode::PossibleOobIndex => "possible-oob-index",
            DiagnosticCode::PossibleOobSub => "possible-oob-sub",
        }
    }
}

/// One finding, anchored to a HyperC source span when the IR carries
/// one.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Category.
    pub code: DiagnosticCode,
    /// Function the finding is in.
    pub func: String,
    /// Source span (may be [`Span::NONE`] for hand-built IR).
    pub span: Span,
    /// Human-readable description.
    pub message: String,
    /// Whether an [`AllowRule`] suppressed this finding.
    pub allowlisted: bool,
}

impl Diagnostic {
    /// Renders as `file:line:col: code: message (in func)`, with the
    /// location omitted when no span is known.
    pub fn render(&self, module: &Module) -> String {
        let loc = if self.span.is_known() {
            let file = module.file_name(self.span.file).unwrap_or("<unknown>");
            format!("{file}:{}:{}: ", self.span.line, self.span.col)
        } else {
            String::new()
        };
        format!(
            "{loc}{}: {} (in `{}`)",
            self.code.as_str(),
            self.message,
            self.func
        )
    }
}

/// Suppresses findings of `code` inside function `func`.
#[derive(Debug, Clone)]
pub struct AllowRule {
    /// Kebab-case code name (see [`DiagnosticCode::as_str`]).
    pub code: String,
    /// Function name the rule applies to.
    pub func: String,
}

/// Declares the value range of a global field, assumed on loads.
///
/// These encode the representation invariant the kernel maintains (see
/// `repinv.hc`): the analysis, like the symbolic executor, reasons
/// about a handler *under* the invariant. A load is only trusted when
/// its element index provably lies in `[min_index, elems)`.
#[derive(Debug, Clone)]
pub struct FieldRangeRule {
    /// Global name.
    pub global: String,
    /// Field name.
    pub field: String,
    /// Inclusive lower bound of the field's value.
    pub lo: i64,
    /// Inclusive upper bound of the field's value.
    pub hi: i64,
    /// First element index the invariant covers (e.g. `procs` starts
    /// at 1: slot 0 is never a valid process).
    pub min_index: u64,
}

/// The guard of a [`CondRangeRule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondKind {
    /// Guard holds when the condition field equals the constant.
    EqConst(i64),
    /// Guard holds when the condition field differs from the constant.
    NeConst(i64),
}

/// A conditional field range: when `global[i].cond_field` satisfies
/// `kind`, then `global[i].target_field` lies in `[lo, hi]`.
///
/// Mirrors implications in the representation invariant, e.g.
/// `page_desc[pn].parent_pn != -1  =>  parent_idx in [0, PAGE_WORDS)`.
#[derive(Debug, Clone)]
pub struct CondRangeRule {
    /// Global name.
    pub global: String,
    /// Field tested by the guard.
    pub cond_field: String,
    /// Guard shape.
    pub kind: CondKind,
    /// Field whose range the guard implies.
    pub target_field: String,
    /// Inclusive lower bound implied on the target field.
    pub lo: i64,
    /// Inclusive upper bound implied on the target field.
    pub hi: i64,
}

/// Configuration for [`analyze_module`].
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Per-activation cap on entries into any single block; exceeding
    /// it makes the loop "unbounded" for analysis purposes.
    pub max_block_visits: u32,
    /// Global abstract-step budget per entry point.
    pub max_steps: u64,
    /// Unconditional field ranges (representation invariant).
    pub field_ranges: Vec<FieldRangeRule>,
    /// Conditional field ranges (invariant implications).
    pub cond_ranges: Vec<CondRangeRule>,
    /// Findings to suppress.
    pub allow: Vec<AllowRule>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            max_block_visits: 4096,
            max_steps: 4_000_000,
            field_ranges: Vec::new(),
            cond_ranges: Vec::new(),
            allow: Vec::new(),
        }
    }
}

/// Proven per-loop bounds: the maximum number of times any single
/// activation of a function enters a given block, maximised over all
/// abstract paths.
///
/// The count matches `symx`'s per-frame visit counters exactly: a
/// `for`-loop that runs `N` iterations enters its header `N + 1` times
/// (once from the preheader, `N` times around the back edge). `symx`
/// treats `bound(f, b) = Some(k)` as permission to re-enter `b` up to
/// `k` times per activation without a feasibility probe — and as proof
/// that further entries are infeasible.
#[derive(Debug, Clone, Default)]
pub struct LoopBounds {
    map: HashMap<(FuncId, u32), u32>,
}

impl LoopBounds {
    /// The proven entry bound for block `block` of `func`, if any.
    pub fn bound(&self, func: FuncId, block: u32) -> Option<u32> {
        self.map.get(&(func, block)).copied()
    }

    /// Records an observed entry count, keeping the maximum.
    pub fn observe(&mut self, func: FuncId, block: u32, count: u32) {
        let e = self.map.entry((func, block)).or_insert(0);
        *e = (*e).max(count);
    }

    /// Removes every bound for `func` (used when analysis of an entry
    /// point exhausts its budget: partial counts are not proofs).
    pub fn clear_func(&mut self, func: FuncId) {
        self.map.retain(|&(f, _), _| f != func);
    }

    /// Number of recorded bounds.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no bounds are recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Merges another bounds map, keeping maxima.
    pub fn merge(&mut self, other: &LoopBounds) {
        for (&(f, b), &c) in &other.map {
            self.observe(f, b, c);
        }
    }
}

/// Result of [`analyze_module`].
#[derive(Debug, Clone, Default)]
pub struct AnalysisResult {
    /// All findings, including allowlisted ones.
    pub diagnostics: Vec<Diagnostic>,
    /// Proven loop bounds for every analysed function.
    pub bounds: LoopBounds,
}

impl AnalysisResult {
    /// Findings not suppressed by the allowlist.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.allowlisted)
    }

    /// Whether any unsuppressed finding exists.
    pub fn has_findings(&self) -> bool {
        self.unsuppressed().next().is_some()
    }
}

/// Runs the full pass suite over `roots` (entry points) and every
/// function reachable from them.
pub fn analyze_module(
    module: &Module,
    roots: &[FuncId],
    config: &AnalysisConfig,
) -> AnalysisResult {
    let mut result = AnalysisResult::default();
    let graph = CallGraph::build(module);

    // Recursion is fatal for everything downstream (stack bounds, loop
    // bounds, symbolic execution): report it and stop.
    if let Some(cycle) = graph.find_cycle() {
        let names: Vec<&str> = cycle
            .iter()
            .map(|&f| module.func_def(f).name.as_str())
            .collect();
        let span = graph.call_site(cycle[0], cycle[1]).unwrap_or(Span::NONE);
        result.diagnostics.push(Diagnostic {
            code: DiagnosticCode::Recursion,
            func: names[0].to_string(),
            span,
            message: format!("recursive call cycle: {}", names.join(" -> ")),
            allowlisted: false,
        });
        apply_allowlist(&mut result.diagnostics, config);
        return result;
    }

    // Reachable set, in a stable order.
    let mut reach: Vec<FuncId> = Vec::new();
    let mut stack: Vec<FuncId> = roots.to_vec();
    while let Some(f) = stack.pop() {
        if reach.contains(&f) {
            continue;
        }
        reach.push(f);
        stack.extend_from_slice(graph.callees(f));
    }
    reach.sort_unstable();

    // Definite initialization per function.
    for &f in &reach {
        init::check_func(module, f, &mut result.diagnostics);
    }

    // Abstract interpretation per entry point: UB lints, finiteness,
    // and loop bounds.
    let mut absint = absint::AbsInt::new(module, config);
    for &root in roots {
        absint.analyze(root, &mut result.diagnostics, &mut result.bounds);
    }

    apply_allowlist(&mut result.diagnostics, config);
    result
}

fn apply_allowlist(diags: &mut [Diagnostic], config: &AnalysisConfig) {
    for d in diags.iter_mut() {
        if config
            .allow
            .iter()
            .any(|a| a.code == d.code.as_str() && a.func == d.func)
        {
            d.allowlisted = true;
        }
    }
}
