//! Control-flow graph utilities: successor/predecessor maps, dominator
//! tree, and natural-loop detection via back edges.
//!
//! Everything here is per-function and purely structural; the passes in
//! the sibling modules ([`super::init`], [`super::absint`]) build on it.

use crate::func::{Func, Terminator};

/// A natural loop: a back edge `tail -> header` where `header` dominates
/// `tail`, together with the set of blocks that can reach the tail
/// without passing through the header.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// Loop header block.
    pub header: u32,
    /// Sources of back edges into `header`.
    pub back_edges: Vec<u32>,
    /// Blocks in the loop body, sorted, including the header.
    pub body: Vec<u32>,
}

/// Control-flow graph of one function, with derived structure.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor blocks of each block (deduplicated).
    pub succs: Vec<Vec<u32>>,
    /// Predecessor blocks of each block (deduplicated).
    pub preds: Vec<Vec<u32>>,
    /// Reverse postorder over reachable blocks, starting at the entry.
    pub rpo: Vec<u32>,
    /// Immediate dominator of each block; the entry's is itself and
    /// unreachable blocks have none.
    pub idom: Vec<Option<u32>>,
    /// Natural loops, one per header with at least one back edge.
    pub loops: Vec<NaturalLoop>,
}

impl Cfg {
    /// Builds the CFG and derived structure for `func`.
    pub fn build(func: &Func) -> Cfg {
        let n = func.blocks.len();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (b, blk) in func.blocks.iter().enumerate() {
            let mut out: Vec<u32> = match blk.term {
                Terminator::Jmp(t) => vec![t.0],
                Terminator::Br { then_, else_, .. } => vec![then_.0, else_.0],
                Terminator::Ret(_) => Vec::new(),
            };
            out.sort_unstable();
            out.dedup();
            for &t in &out {
                if (t as usize) < n {
                    preds[t as usize].push(b as u32);
                }
            }
            succs[b] = out;
        }
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
        }

        // Postorder DFS from the entry (iterative).
        let mut post = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut stack: Vec<(u32, usize)> = Vec::new();
        if n > 0 {
            seen[0] = true;
            stack.push((0, 0));
        }
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let sl = &succs[b as usize];
            if *i < sl.len() {
                let s = sl[*i];
                *i += 1;
                if (s as usize) < n && !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<u32> = post.iter().rev().copied().collect();
        let mut rpo_num = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_num[b as usize] = i;
        }

        // Cooper-Harvey-Kennedy iterative dominators.
        let mut idom: Vec<Option<u32>> = vec![None; n];
        if n > 0 {
            idom[0] = Some(0);
        }
        let intersect = |idom: &[Option<u32>], rpo_num: &[usize], mut a: u32, mut b: u32| -> u32 {
            while a != b {
                while rpo_num[a as usize] > rpo_num[b as usize] {
                    a = idom[a as usize].unwrap();
                }
                while rpo_num[b as usize] > rpo_num[a as usize] {
                    b = idom[b as usize].unwrap();
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<u32> = None;
                for &p in &preds[b as usize] {
                    if idom[p as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_num, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b as usize] != new_idom {
                    idom[b as usize] = new_idom;
                    changed = true;
                }
            }
        }

        let dominates = |idom: &[Option<u32>], h: u32, mut b: u32| -> bool {
            loop {
                if b == h {
                    return true;
                }
                match idom[b as usize] {
                    Some(d) if d != b => b = d,
                    _ => return false,
                }
            }
        };

        // Back edges and natural-loop bodies.
        let mut loops: Vec<NaturalLoop> = Vec::new();
        for &b in &rpo {
            for &s in &succs[b as usize] {
                if (s as usize) < n && idom[s as usize].is_some() && dominates(&idom, s, b) {
                    match loops.iter_mut().find(|l| l.header == s) {
                        Some(l) => l.back_edges.push(b),
                        None => loops.push(NaturalLoop {
                            header: s,
                            back_edges: vec![b],
                            body: Vec::new(),
                        }),
                    }
                }
            }
        }
        for l in &mut loops {
            let mut body = vec![l.header];
            let mut work: Vec<u32> = Vec::new();
            for &t in &l.back_edges {
                if t != l.header && !body.contains(&t) {
                    body.push(t);
                    work.push(t);
                }
            }
            while let Some(b) = work.pop() {
                for &p in &preds[b as usize] {
                    if !body.contains(&p) {
                        body.push(p);
                        work.push(p);
                    }
                }
            }
            body.sort_unstable();
            l.body = body;
        }
        loops.sort_by_key(|l| l.header);

        Cfg {
            succs,
            preds,
            rpo,
            idom,
            loops,
        }
    }

    /// Whether block `b` is reachable from the entry.
    pub fn reachable(&self, b: u32) -> bool {
        self.idom.get(b as usize).is_some_and(|d| d.is_some())
    }

    /// Whether `a` dominates `b` (both must be reachable).
    pub fn dominates(&self, a: u32, mut b: u32) -> bool {
        loop {
            if a == b {
                return true;
            }
            match self.idom[b as usize] {
                Some(d) if d != b => b = d,
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::func::{BinOp, CmpKind, Operand};

    fn loop_func() -> Func {
        // i = 0; while (i < 10) { i = i + 1 } return i
        let mut fb = FuncBuilder::new("f", 0);
        let i = fb.new_reg();
        fb.copy_to(i, Operand::Const(0));
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jmp(header);
        fb.switch_to(header);
        let c = fb.cmp(CmpKind::Slt, Operand::Reg(i), Operand::Const(10));
        fb.br(Operand::Reg(c), body, exit);
        fb.switch_to(body);
        let ni = fb.bin(BinOp::Add, Operand::Reg(i), Operand::Const(1));
        fb.copy_to(i, Operand::Reg(ni));
        fb.jmp(header);
        fb.switch_to(exit);
        fb.ret(Operand::Reg(i));
        fb.finish()
    }

    #[test]
    fn preds_succs_and_rpo() {
        let f = loop_func();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.succs[0], vec![1]);
        assert_eq!(cfg.succs[1], vec![2, 3]);
        assert_eq!(cfg.succs[2], vec![1]);
        assert!(cfg.succs[3].is_empty());
        assert_eq!(cfg.preds[1], vec![0, 2]);
        assert_eq!(cfg.rpo[0], 0);
        assert_eq!(cfg.rpo.len(), 4);
    }

    #[test]
    fn dominators_and_loops() {
        let f = loop_func();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.idom[0], Some(0));
        assert_eq!(cfg.idom[1], Some(0));
        assert_eq!(cfg.idom[2], Some(1));
        assert_eq!(cfg.idom[3], Some(1));
        assert!(cfg.dominates(1, 2));
        assert!(!cfg.dominates(2, 3));
        assert_eq!(cfg.loops.len(), 1);
        let l = &cfg.loops[0];
        assert_eq!(l.header, 1);
        assert_eq!(l.back_edges, vec![2]);
        assert_eq!(l.body, vec![1, 2]);
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut fb = FuncBuilder::new("f", 0);
        let dead = fb.new_block();
        fb.ret(Operand::Const(0));
        fb.switch_to(dead);
        fb.ret(Operand::Const(1));
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        assert!(cfg.reachable(0));
        assert!(!cfg.reachable(1));
        assert_eq!(cfg.idom[1], None);
    }
}
