//! A small forward-dataflow engine over a function's [`Cfg`].
//!
//! Analyses supply a join-semilattice state and a block transfer
//! function; the engine iterates to a fixpoint over reachable blocks in
//! reverse postorder. HIR functions are small (tens of blocks) so a
//! simple worklist is plenty.

use super::cfg::Cfg;

/// A join-semilattice value.
pub trait Lattice: Clone {
    /// Joins `other` into `self`; returns true if `self` changed.
    fn join_with(&mut self, other: &Self) -> bool;
}

/// A forward analysis: a boundary state for the entry block and a
/// transfer function mapping a block-entry state to its exit state.
pub trait ForwardAnalysis {
    /// The dataflow state.
    type State: Lattice;

    /// State on entry to the function's entry block.
    fn boundary(&self) -> Self::State;

    /// Transforms `state` across block `block` (in place).
    fn transfer(&self, block: u32, state: &mut Self::State);
}

/// Runs `analysis` to fixpoint; returns the state at each block's entry
/// (`None` for unreachable blocks).
pub fn run_forward<A: ForwardAnalysis>(cfg: &Cfg, analysis: &A) -> Vec<Option<A::State>> {
    let n = cfg.succs.len();
    let mut entry: Vec<Option<A::State>> = vec![None; n];
    if n == 0 {
        return entry;
    }
    entry[0] = Some(analysis.boundary());
    let mut dirty = vec![false; n];
    dirty[0] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &cfg.rpo {
            if !dirty[b as usize] {
                continue;
            }
            dirty[b as usize] = false;
            let mut state = entry[b as usize].clone().expect("reachable block");
            analysis.transfer(b, &mut state);
            for &s in &cfg.succs[b as usize] {
                let slot = &mut entry[s as usize];
                let touched = match slot {
                    None => {
                        *slot = Some(state.clone());
                        true
                    }
                    Some(cur) => cur.join_with(&state),
                };
                if touched {
                    dirty[s as usize] = true;
                    changed = true;
                }
            }
        }
    }
    entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::func::Operand;

    /// Reaching "marks": a set of block ids the path has passed through.
    #[derive(Clone, PartialEq)]
    struct Marks(Vec<u32>);

    impl Lattice for Marks {
        fn join_with(&mut self, other: &Self) -> bool {
            let before = self.0.len();
            for &m in &other.0 {
                if !self.0.contains(&m) {
                    self.0.push(m);
                }
            }
            self.0.sort_unstable();
            self.0.len() != before
        }
    }

    struct MarkBlocks;

    impl ForwardAnalysis for MarkBlocks {
        type State = Marks;
        fn boundary(&self) -> Marks {
            Marks(Vec::new())
        }
        fn transfer(&self, block: u32, state: &mut Marks) {
            if !state.0.contains(&block) {
                state.0.push(block);
                state.0.sort_unstable();
            }
        }
    }

    #[test]
    fn fixpoint_over_diamond() {
        // 0 -> {1, 2} -> 3
        let mut fb = FuncBuilder::new("f", 1);
        let t = fb.new_block();
        let e = fb.new_block();
        let m = fb.new_block();
        fb.br(Operand::Reg(crate::func::Reg(0)), t, e);
        fb.switch_to(t);
        fb.jmp(m);
        fb.switch_to(e);
        fb.jmp(m);
        fb.switch_to(m);
        fb.ret(Operand::Const(0));
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        let states = run_forward(&cfg, &MarkBlocks);
        // Merge block sees the union of both arms.
        assert_eq!(states[3].as_ref().unwrap().0, vec![0, 1, 2]);
        assert_eq!(states[1].as_ref().unwrap().0, vec![0]);
    }
}
