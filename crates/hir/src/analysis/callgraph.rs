//! Interprocedural call graph: recursion detection and the worst-case
//! stack-depth bound.
//!
//! This is the single home for call-graph reasoning; both the HIR module
//! verifier and `checkers`' stack checker consume it instead of
//! re-deriving their own DFS.

use std::collections::HashMap;

use crate::func::{Inst, Span};
use crate::module::{FuncId, Module};

/// The module-wide call graph.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Deduplicated direct callees of each function, indexed by
    /// [`FuncId`].
    callees: Vec<Vec<FuncId>>,
    /// Span of the first call site for each `(caller, callee)` edge.
    sites: HashMap<(FuncId, FuncId), Span>,
}

impl CallGraph {
    /// Builds the call graph of `module`.
    pub fn build(module: &Module) -> CallGraph {
        let mut callees = Vec::with_capacity(module.funcs.len());
        let mut sites = HashMap::new();
        for (fi, f) in module.funcs.iter().enumerate() {
            let caller = FuncId(fi as u32);
            let mut out: Vec<FuncId> = Vec::new();
            for b in &f.blocks {
                for (i, inst) in b.insts.iter().enumerate() {
                    if let Inst::Call { func, .. } = inst {
                        // Out-of-range targets are a well-formedness error
                        // reported elsewhere; keep the graph indexable.
                        if func.0 as usize >= module.funcs.len() {
                            continue;
                        }
                        sites
                            .entry((caller, *func))
                            .or_insert_with(|| b.inst_span(i));
                        out.push(*func);
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            callees.push(out);
        }
        CallGraph { callees, sites }
    }

    /// Direct callees of `f`.
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        &self.callees[f.0 as usize]
    }

    /// Span of the first `caller -> callee` call site, if that edge
    /// exists.
    pub fn call_site(&self, caller: FuncId, callee: FuncId) -> Option<Span> {
        self.sites.get(&(caller, callee)).copied()
    }

    /// Finds a call cycle, returned as a path `f0 -> f1 -> ... -> f0`
    /// (first element repeated at the end). Returns `None` when the
    /// graph is acyclic, i.e. recursion-free.
    pub fn find_cycle(&self) -> Option<Vec<FuncId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.callees.len();
        let mut color = vec![Color::White; n];
        let mut path: Vec<FuncId> = Vec::new();
        // Iterative DFS keeping the gray path explicit.
        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            let mut stack: Vec<(FuncId, usize)> = vec![(FuncId(start as u32), 0)];
            color[start] = Color::Gray;
            path.push(FuncId(start as u32));
            while let Some(&mut (f, ref mut i)) = stack.last_mut() {
                let cs = &self.callees[f.0 as usize];
                if *i < cs.len() {
                    let c = cs[*i];
                    *i += 1;
                    match color[c.0 as usize] {
                        Color::Gray => {
                            // Found a cycle: slice the gray path from c.
                            let pos = path.iter().position(|&p| p == c).unwrap();
                            let mut cyc: Vec<FuncId> = path[pos..].to_vec();
                            cyc.push(c);
                            return Some(cyc);
                        }
                        Color::White => {
                            color[c.0 as usize] = Color::Gray;
                            path.push(c);
                            stack.push((c, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[f.0 as usize] = Color::Black;
                    path.pop();
                    stack.pop();
                }
            }
        }
        None
    }

    /// Worst-case stack bytes for a call rooted at `root`, where each
    /// activation of function `f` costs `f.num_regs * 8 + overhead`
    /// bytes. Returns `None` if `root` can reach a call cycle (the bound
    /// is then infinite).
    pub fn max_stack_bytes(&self, module: &Module, root: FuncId, overhead: u64) -> Option<u64> {
        let mut memo: HashMap<FuncId, Option<u64>> = HashMap::new();
        self.max_stack_rec(module, root, overhead, &mut memo, &mut Vec::new())
    }

    fn max_stack_rec(
        &self,
        module: &Module,
        f: FuncId,
        overhead: u64,
        memo: &mut HashMap<FuncId, Option<u64>>,
        active: &mut Vec<FuncId>,
    ) -> Option<u64> {
        if let Some(&m) = memo.get(&f) {
            return m;
        }
        if active.contains(&f) {
            return None; // cycle
        }
        active.push(f);
        let own = module.func_def(f).num_regs as u64 * 8 + overhead;
        let mut worst_callee = 0u64;
        let mut result = Some(own);
        for &c in self.callees(f) {
            match self.max_stack_rec(module, c, overhead, memo, active) {
                Some(d) => worst_callee = worst_callee.max(d),
                None => {
                    result = None;
                    break;
                }
            }
        }
        active.pop();
        let out = result.map(|own| own + worst_callee);
        memo.insert(f, out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::func::Operand;

    fn leaf(module: &mut Module, name: &str, extra_regs: u32) -> FuncId {
        let mut fb = FuncBuilder::new(name, 0);
        for _ in 0..extra_regs {
            fb.new_reg();
        }
        fb.ret(Operand::Const(0));
        module.add_func(fb.finish())
    }

    fn caller(module: &mut Module, name: &str, callees: &[FuncId]) -> FuncId {
        let mut fb = FuncBuilder::new(name, 0);
        for &c in callees {
            fb.call(c, Vec::new());
        }
        fb.ret(Operand::Const(0));
        module.add_func(fb.finish())
    }

    #[test]
    fn acyclic_graph_has_no_cycle_and_a_stack_bound() {
        let mut m = Module::new();
        let a = leaf(&mut m, "a", 2); // 2 regs
        let b = caller(&mut m, "b", &[a, a]); // 2 call dsts = 2 regs
        let g = CallGraph::build(&m);
        assert_eq!(g.callees(b), &[a]);
        assert!(g.find_cycle().is_none());
        // b: 2*8+16 = 32, a: 2*8+16 = 32 -> 64.
        assert_eq!(g.max_stack_bytes(&m, b, 16), Some(64));
        assert_eq!(g.max_stack_bytes(&m, a, 16), Some(32));
    }

    #[test]
    fn cycle_is_detected_with_its_path() {
        let mut m = Module::new();
        // Build mutual recursion by hand: a calls b, b calls a.
        // add_func assigns ids in order, so predict them.
        let a_id = FuncId(0);
        let b_id = FuncId(1);
        let mut fb = FuncBuilder::new("a", 0);
        fb.call(b_id, Vec::new());
        fb.ret(Operand::Const(0));
        m.add_func(fb.finish());
        let mut fb = FuncBuilder::new("b", 0);
        fb.call(a_id, Vec::new());
        fb.ret(Operand::Const(0));
        m.add_func(fb.finish());
        let g = CallGraph::build(&m);
        let cyc = g.find_cycle().expect("cycle");
        assert_eq!(cyc.first(), cyc.last());
        assert!(cyc.len() >= 3);
        assert_eq!(g.max_stack_bytes(&m, a_id, 16), None);
    }
}
