//! Definite initialization: no register may be read unless it has been
//! assigned along *every* CFG path from the entry.
//!
//! This is the "undefined value" leg of the paper's UB taxonomy: in HIR
//! (as in LLVM) an uninitialized read yields undef, and the symbolic
//! executor models it as an unconstrained fresh variable. A handler
//! whose behaviour depends on undef is almost certainly a bug, and one
//! that flows undef into a branch condition or a memory address is
//! flagged with a dedicated code because that is exactly where LLVM's
//! poison semantics would make the whole execution undefined.

use super::cfg::Cfg;
use super::dataflow::{run_forward, ForwardAnalysis, Lattice};
use super::{Diagnostic, DiagnosticCode};
use crate::func::{Func, Gep, Inst, Operand, Reg, Terminator};
use crate::module::{FuncId, Module};

/// Set of definitely-assigned registers, as a bitset.
#[derive(Clone, PartialEq)]
struct Assigned(Vec<u64>);

impl Assigned {
    fn new(num_regs: u32) -> Assigned {
        Assigned(vec![0; (num_regs as usize).div_ceil(64)])
    }

    fn set(&mut self, r: Reg) {
        self.0[r.0 as usize / 64] |= 1 << (r.0 % 64);
    }

    fn get(&self, r: Reg) -> bool {
        self.0[r.0 as usize / 64] >> (r.0 % 64) & 1 != 0
    }
}

impl Lattice for Assigned {
    fn join_with(&mut self, other: &Assigned) -> bool {
        let mut changed = false;
        for (a, &b) in self.0.iter_mut().zip(&other.0) {
            let n = *a & b;
            changed |= n != *a;
            *a = n;
        }
        changed
    }
}

struct InitAnalysis<'f> {
    func: &'f Func,
}

impl ForwardAnalysis for InitAnalysis<'_> {
    type State = Assigned;

    fn boundary(&self) -> Assigned {
        let mut s = Assigned::new(self.func.num_regs);
        for p in 0..self.func.num_params {
            s.set(Reg(p));
        }
        s
    }

    fn transfer(&self, block: u32, state: &mut Assigned) {
        for inst in &self.func.blocks[block as usize].insts {
            if let Some(dst) = inst_dst(inst) {
                state.set(dst);
            }
        }
    }
}

fn inst_dst(inst: &Inst) -> Option<Reg> {
    match inst {
        Inst::Bin { dst, .. }
        | Inst::Cmp { dst, .. }
        | Inst::Copy { dst, .. }
        | Inst::Load { dst, .. }
        | Inst::Call { dst, .. } => Some(*dst),
        Inst::Store { .. } => None,
    }
}

/// Checks one function, appending findings to `diags`.
pub fn check_func(module: &Module, f: FuncId, diags: &mut Vec<Diagnostic>) {
    let func = module.func_def(f);
    let cfg = Cfg::build(func);
    let entry_states = run_forward(&cfg, &InitAnalysis { func });

    let mut report = |span, code, reg: Reg| {
        diags.push(Diagnostic {
            code,
            func: func.name.clone(),
            span,
            message: match code {
                DiagnosticCode::UndefBranch => {
                    format!(
                        "branch condition reads `r{}` which may be uninitialized",
                        reg.0
                    )
                }
                DiagnosticCode::UndefAddress => {
                    format!(
                        "memory address reads `r{}` which may be uninitialized",
                        reg.0
                    )
                }
                _ => format!("`r{}` may be read before assignment", reg.0),
            },
            allowlisted: false,
        });
    };

    for (bi, block) in func.blocks.iter().enumerate() {
        let Some(entry) = &entry_states[bi] else {
            continue; // unreachable
        };
        let mut state = entry.clone();
        let use_op = |state: &Assigned, op: &Operand| -> Option<Reg> {
            match op {
                Operand::Reg(r) if !state.get(*r) => Some(*r),
                _ => None,
            }
        };
        for (i, inst) in block.insts.iter().enumerate() {
            let span = block.inst_span(i);
            let mut check_gep = |state: &Assigned, gep: &Gep| {
                for op in [&gep.index, &gep.sub] {
                    if let Some(r) = use_op(state, op) {
                        report(span, DiagnosticCode::UndefAddress, r);
                    }
                }
            };
            match inst {
                Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                    for op in [a, b] {
                        if let Some(r) = use_op(&state, op) {
                            report(span, DiagnosticCode::UseBeforeDef, r);
                        }
                    }
                }
                Inst::Copy { src, .. } => {
                    if let Some(r) = use_op(&state, src) {
                        report(span, DiagnosticCode::UseBeforeDef, r);
                    }
                }
                Inst::Load { gep, .. } => check_gep(&state, gep),
                Inst::Store { gep, val } => {
                    check_gep(&state, gep);
                    if let Some(r) = use_op(&state, val) {
                        report(span, DiagnosticCode::UseBeforeDef, r);
                    }
                }
                Inst::Call { args, .. } => {
                    for op in args {
                        if let Some(r) = use_op(&state, op) {
                            report(span, DiagnosticCode::UseBeforeDef, r);
                        }
                    }
                }
            }
            if let Some(dst) = inst_dst(inst) {
                state.set(dst);
            }
        }
        match &block.term {
            Terminator::Br { cond, .. } => {
                if let Some(r) = use_op(&state, cond) {
                    report(block.term_span, DiagnosticCode::UndefBranch, r);
                }
            }
            Terminator::Ret(val) => {
                if let Some(r) = use_op(&state, val) {
                    report(block.term_span, DiagnosticCode::UseBeforeDef, r);
                }
            }
            Terminator::Jmp(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::func::{BinOp, Operand};

    fn check(func: Func) -> Vec<Diagnostic> {
        let mut m = Module::new();
        let f = m.add_func(func);
        let mut diags = Vec::new();
        check_func(&m, f, &mut diags);
        diags
    }

    #[test]
    fn straight_line_assignment_is_clean() {
        let mut fb = FuncBuilder::new("f", 1);
        let x = fb.new_reg();
        fb.copy_to(x, Operand::Const(3));
        let y = fb.bin(BinOp::Add, Operand::Reg(x), Operand::Reg(Reg(0)));
        fb.ret(Operand::Reg(y));
        assert!(check(fb.finish()).is_empty());
    }

    #[test]
    fn read_of_never_assigned_reg_is_flagged() {
        let mut fb = FuncBuilder::new("f", 0);
        let x = fb.new_reg(); // declared, never assigned
        let y = fb.bin(BinOp::Add, Operand::Reg(x), Operand::Const(1));
        fb.ret(Operand::Reg(y));
        let d = check(fb.finish());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, DiagnosticCode::UseBeforeDef);
        assert!(d[0].message.contains("r0"), "{}", d[0].message);
    }

    #[test]
    fn assignment_on_one_branch_only_is_flagged_at_the_merge() {
        // if (p) { x = 1 }  return x
        let mut fb = FuncBuilder::new("f", 1);
        let x = fb.new_reg();
        let then_b = fb.new_block();
        let merge = fb.new_block();
        fb.br(Operand::Reg(Reg(0)), then_b, merge);
        fb.switch_to(then_b);
        fb.copy_to(x, Operand::Const(1));
        fb.jmp(merge);
        fb.switch_to(merge);
        fb.ret(Operand::Reg(x));
        let d = check(fb.finish());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, DiagnosticCode::UseBeforeDef);
    }

    #[test]
    fn assignment_on_both_branches_is_clean() {
        let mut fb = FuncBuilder::new("f", 1);
        let x = fb.new_reg();
        let then_b = fb.new_block();
        let else_b = fb.new_block();
        let merge = fb.new_block();
        fb.br(Operand::Reg(Reg(0)), then_b, else_b);
        fb.switch_to(then_b);
        fb.copy_to(x, Operand::Const(1));
        fb.jmp(merge);
        fb.switch_to(else_b);
        fb.copy_to(x, Operand::Const(2));
        fb.jmp(merge);
        fb.switch_to(merge);
        fb.ret(Operand::Reg(x));
        assert!(check(fb.finish()).is_empty());
    }

    #[test]
    fn undef_into_branch_condition_has_dedicated_code() {
        let mut fb = FuncBuilder::new("f", 0);
        let x = fb.new_reg();
        let a = fb.new_block();
        let b = fb.new_block();
        fb.br(Operand::Reg(x), a, b);
        fb.switch_to(a);
        fb.ret(Operand::Const(0));
        fb.switch_to(b);
        fb.ret(Operand::Const(1));
        let d = check(fb.finish());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, DiagnosticCode::UndefBranch);
    }
}
