//! Functions, basic blocks, and instructions.
//!
//! HIR is a register machine over 64-bit signed words: instructions read
//! operands (registers or constants) and write a destination register.
//! There is no SSA requirement — locals may be reassigned — which keeps
//! the frontend simple while remaining trivial for the symbolic executor
//! (register state is just a map from register to term).

use crate::module::{FieldId, FuncId, GlobalId};

/// A source position in a HyperC file: `file:line:col`.
///
/// `file` indexes the owning [`crate::Module`]'s file-name table
/// ([`crate::Module::file_name`]); `line` and `col` are 1-based. Spans
/// exist purely for diagnostics — they never affect semantics, and IR
/// built without a frontend (tests, hand-written fixtures) carries
/// [`Span::NONE`] everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Index into the module's file-name table, or `u32::MAX` for none.
    pub file: u32,
    /// 1-based line, or 0 for none.
    pub line: u32,
    /// 1-based column, or 0 for none.
    pub col: u32,
}

impl Span {
    /// The absent span: no source location is known.
    pub const NONE: Span = Span {
        file: u32::MAX,
        line: 0,
        col: 0,
    };

    /// A span at `file:line:col`.
    pub fn new(file: u32, line: u32, col: u32) -> Self {
        Span { file, line, col }
    }

    /// Whether this span carries a real source location.
    pub fn is_known(&self) -> bool {
        self.line != 0
    }
}

impl Default for Span {
    fn default() -> Self {
        Span::NONE
    }
}

/// A virtual register (function-local, 64-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

/// Reference to a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Value of a register.
    Reg(Reg),
    /// Immediate constant.
    Const(i64),
}

/// Binary arithmetic/logic operations.
///
/// `Add`/`Sub`/`Mul` wrap, exactly like LLVM's `add`/`sub`/`mul` without
/// `nsw` flags — the HyperC frontend never emits the overflow-is-UB
/// variants (cf. paper §4.4: the verifier sees the frontend's chosen
/// interpretation of C UB). `UDiv`/`URem` treat operands as unsigned and
/// division by zero is immediate UB. Shifts require the amount in
/// `[0, 64)` (LLVM makes out-of-range shifts poison; the verifier treats
/// poison as immediate UB, paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (UB on zero divisor).
    UDiv,
    /// Unsigned remainder (UB on zero divisor).
    URem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (wrapping; UB on amount outside `[0,64)`).
    Shl,
    /// Logical right shift (UB on amount outside `[0,64)`).
    LShr,
    /// Arithmetic right shift (UB on amount outside `[0,64)`).
    AShr,
}

/// Comparison kinds; results are `0` or `1` in a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
}

/// A structured address: `global[index].field[sub]`.
///
/// This is HIR's entire addressing mode — the analogue of an LLVM GEP
/// restricted to the shapes kernel data structures actually use, and the
/// reason the verifier's memory model can map every `(global, field)` to
/// one uninterpreted function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gep {
    /// The global being addressed.
    pub global: GlobalId,
    /// Element index (UB if out of `[0, elems)`).
    pub index: Operand,
    /// Field within the element.
    pub field: FieldId,
    /// Index within the field (UB if out of `[0, field.elems)`).
    pub sub: Operand,
}

/// An instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst = a op b`.
    Bin {
        /// Destination register.
        dst: Reg,
        /// Operation.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = (a op b) ? 1 : 0`.
    Cmp {
        /// Destination register.
        dst: Reg,
        /// Comparison.
        op: CmpKind,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = src`.
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = load gep`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address.
        gep: Gep,
    },
    /// `store val, gep`.
    Store {
        /// Address.
        gep: Gep,
        /// Value to store.
        val: Operand,
    },
    /// `dst = call f(args)` (direct call; recursion is rejected by the
    /// module verifier, keeping every function finite).
    Call {
        /// Destination register for the return value.
        dst: Reg,
        /// Callee.
        func: FuncId,
        /// Arguments.
        args: Vec<Operand>,
    },
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Conditional branch: taken if `cond != 0`.
    Br {
        /// Condition operand.
        cond: Operand,
        /// Target when nonzero.
        then_: BlockId,
        /// Target when zero.
        else_: BlockId,
    },
    /// Return a value.
    Ret(Operand),
}

/// A basic block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// Terminator.
    pub term: Terminator,
    /// Source span of each instruction, parallel to `insts`.
    pub spans: Vec<Span>,
    /// Source span of the terminator.
    pub term_span: Span,
}

impl Block {
    /// Span of instruction `i`, or [`Span::NONE`] when the block carries
    /// no span information (hand-built IR).
    pub fn inst_span(&self, i: usize) -> Span {
        self.spans.get(i).copied().unwrap_or(Span::NONE)
    }
}

/// A function definition.
#[derive(Debug, Clone)]
pub struct Func {
    /// Function name (unique within the module).
    pub name: String,
    /// Number of parameters; they occupy registers `0..num_params`.
    pub num_params: u32,
    /// Total registers, including parameters.
    pub num_regs: u32,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
}

impl Func {
    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// The block with the given id.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.0 as usize]
    }

    /// Ids of functions this function calls directly.
    pub fn callees(&self) -> Vec<FuncId> {
        let mut out = Vec::new();
        for b in &self.blocks {
            for i in &b.insts {
                if let Inst::Call { func, .. } = i {
                    out.push(*func);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}
