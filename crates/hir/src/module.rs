//! Modules, global declarations, and memory layout.
//!
//! A module is a set of global arrays-of-structs plus functions. Globals
//! are the *only* memory in HIR; every element field is a 64-bit word or a
//! fixed-length array of words. The module also computes a word-level
//! layout (offsets and strides) used by the concrete memory backend and by
//! the link checker.

use std::collections::HashMap;

use crate::func::Func;

/// Reference to a global declaration within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// Reference to a field within a global's element struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub u32);

/// Reference to a function within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// One field of a global's element struct.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    /// Field name (unique within the global).
    pub name: String,
    /// Number of 64-bit words: 1 for a scalar field, more for an inline
    /// array field such as `ofile[NR_FDS]`.
    pub elems: u64,
    /// Volatile fields (DMA-visible memory) read as arbitrary values
    /// during verification, per §3.1/§3.2 of the paper.
    pub volatile: bool,
}

/// A global array-of-structs.
///
/// A scalar global such as `current` is an array of length 1 with a
/// single scalar field. A plain array such as `pages[NR][WORDS]` is an
/// array of length `NR` with a single field of `WORDS` elements.
#[derive(Debug, Clone)]
pub struct GlobalDecl {
    /// Symbol name (unique within the module).
    pub name: String,
    /// Number of elements in the array.
    pub elems: u64,
    /// Fields of each element.
    pub fields: Vec<FieldDecl>,
}

impl GlobalDecl {
    /// Words per element (the element stride).
    pub fn stride(&self) -> u64 {
        self.fields.iter().map(|f| f.elems).sum()
    }

    /// Word offset of a field within an element.
    pub fn field_offset(&self, field: FieldId) -> u64 {
        self.fields[..field.0 as usize]
            .iter()
            .map(|f| f.elems)
            .sum()
    }

    /// Total size of the global in 64-bit words.
    pub fn size_words(&self) -> u64 {
        self.elems * self.stride()
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<FieldId> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .map(|i| FieldId(i as u32))
    }
}

/// A HIR module: globals plus functions.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Global declarations.
    pub globals: Vec<GlobalDecl>,
    /// Function definitions.
    pub funcs: Vec<Func>,
    /// Source file names referenced by instruction spans (indexed by
    /// [`crate::Span::file`]).
    pub files: Vec<String>,
    global_names: HashMap<String, GlobalId>,
    func_names: HashMap<String, FuncId>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a global; returns its id.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or empty declarations.
    pub fn declare_global(&mut self, decl: GlobalDecl) -> GlobalId {
        assert!(
            !decl.fields.is_empty(),
            "global {} has no fields",
            decl.name
        );
        assert!(decl.elems > 0, "global {} has zero elements", decl.name);
        assert!(
            !self.global_names.contains_key(&decl.name),
            "duplicate global {}",
            decl.name
        );
        let id = GlobalId(self.globals.len() as u32);
        self.global_names.insert(decl.name.clone(), id);
        self.globals.push(decl);
        id
    }

    /// Convenience: declares a scalar global (one element, one word).
    pub fn declare_scalar(&mut self, name: &str) -> GlobalId {
        self.declare_global(GlobalDecl {
            name: name.to_string(),
            elems: 1,
            fields: vec![FieldDecl {
                name: "value".to_string(),
                elems: 1,
                volatile: false,
            }],
        })
    }

    /// Adds a function definition; returns its id.
    ///
    /// # Panics
    ///
    /// Panics on duplicate function names.
    pub fn add_func(&mut self, func: Func) -> FuncId {
        assert!(
            !self.func_names.contains_key(&func.name),
            "duplicate function {}",
            func.name
        );
        let id = FuncId(self.funcs.len() as u32);
        self.func_names.insert(func.name.clone(), id);
        self.funcs.push(func);
        id
    }

    /// Interns a source file name for use in spans; returns its index.
    pub fn intern_file(&mut self, name: &str) -> u32 {
        if let Some(i) = self.files.iter().position(|f| f == name) {
            return i as u32;
        }
        self.files.push(name.to_string());
        (self.files.len() - 1) as u32
    }

    /// The file name behind a span's `file` index, if any.
    pub fn file_name(&self, file: u32) -> Option<&str> {
        self.files.get(file as usize).map(|s| s.as_str())
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<GlobalId> {
        self.global_names.get(name).copied()
    }

    /// Looks up a function by name.
    pub fn func(&self, name: &str) -> Option<FuncId> {
        self.func_names.get(name).copied()
    }

    /// The declaration of a global.
    pub fn global_decl(&self, g: GlobalId) -> &GlobalDecl {
        &self.globals[g.0 as usize]
    }

    /// The definition of a function.
    pub fn func_def(&self, f: FuncId) -> &Func {
        &self.funcs[f.0 as usize]
    }

    /// Total words of global memory.
    pub fn total_words(&self) -> u64 {
        self.globals.iter().map(|g| g.size_words()).sum()
    }

    /// Assigns each global a word offset in a flat address space, in
    /// declaration order. The link checker validates disjointness of the
    /// resulting ranges.
    pub fn layout(&self) -> Vec<(GlobalId, u64, u64)> {
        let mut out = Vec::with_capacity(self.globals.len());
        let mut off = 0;
        for (i, g) in self.globals.iter().enumerate() {
            out.push((GlobalId(i as u32), off, g.size_words()));
            off += g.size_words();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn procs_like() -> GlobalDecl {
        GlobalDecl {
            name: "procs".into(),
            elems: 8,
            fields: vec![
                FieldDecl {
                    name: "state".into(),
                    elems: 1,
                    volatile: false,
                },
                FieldDecl {
                    name: "ofile".into(),
                    elems: 16,
                    volatile: false,
                },
                FieldDecl {
                    name: "ppid".into(),
                    elems: 1,
                    volatile: false,
                },
            ],
        }
    }

    #[test]
    fn layout_arithmetic() {
        let g = procs_like();
        assert_eq!(g.stride(), 18);
        assert_eq!(g.size_words(), 144);
        assert_eq!(g.field_offset(FieldId(0)), 0);
        assert_eq!(g.field_offset(FieldId(1)), 1);
        assert_eq!(g.field_offset(FieldId(2)), 17);
        assert_eq!(g.field("ppid"), Some(FieldId(2)));
        assert_eq!(g.field("nope"), None);
    }

    #[test]
    fn module_layout_is_disjoint_and_ordered() {
        let mut m = Module::new();
        m.declare_scalar("current");
        m.declare_global(procs_like());
        m.declare_scalar("uptime");
        let layout = m.layout();
        assert_eq!(layout.len(), 3);
        assert_eq!(layout[0].1, 0);
        assert_eq!(layout[1].1, 1);
        assert_eq!(layout[2].1, 145);
        assert_eq!(m.total_words(), 146);
    }

    #[test]
    #[should_panic(expected = "duplicate global")]
    fn duplicate_global_panics() {
        let mut m = Module::new();
        m.declare_scalar("x");
        m.declare_scalar("x");
    }
}
