//! Textual dump of HIR modules, in the spirit of `llvm-dis`.
//!
//! The output is for humans (diagnostics, counterexample context, and the
//! repository's documentation); there is no parser for it.

use std::fmt::Write;

use crate::func::{BinOp, CmpKind, Func, Gep, Inst, Operand, Terminator};
use crate::module::Module;

/// Renders a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for g in &m.globals {
        let _ = write!(out, "global @{}[{}] {{", g.name, g.elems);
        for (i, f) in g.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}", f.name);
            if f.elems > 1 {
                let _ = write!(out, "[{}]", f.elems);
            }
            if f.volatile {
                out.push_str(" volatile");
            }
        }
        out.push_str("}\n");
    }
    out.push('\n');
    for f in &m.funcs {
        out.push_str(&print_func(m, f));
        out.push('\n');
    }
    out
}

/// Renders one function.
pub fn print_func(m: &Module, f: &Func) -> String {
    let mut out = String::new();
    let params: Vec<String> = (0..f.num_params).map(|i| format!("r{i}")).collect();
    let _ = writeln!(out, "func @{}({}) {{", f.name, params.join(", "));
    for (bi, b) in f.blocks.iter().enumerate() {
        let _ = writeln!(out, "b{bi}:");
        for inst in &b.insts {
            let _ = writeln!(out, "  {}", print_inst(m, inst));
        }
        let _ = writeln!(out, "  {}", print_term(&b.term));
    }
    out.push_str("}\n");
    out
}

fn print_op(op: Operand) -> String {
    match op {
        Operand::Reg(r) => format!("r{}", r.0),
        Operand::Const(c) => format!("{c}"),
    }
}

fn print_gep(m: &Module, gep: &Gep) -> String {
    let g = m.global_decl(gep.global);
    let f = &g.fields[gep.field.0 as usize];
    let mut s = format!("@{}[{}].{}", g.name, print_op(gep.index), f.name);
    if f.elems > 1 {
        s.push_str(&format!("[{}]", print_op(gep.sub)));
    }
    s
}

fn bin_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::UDiv => "udiv",
        BinOp::URem => "urem",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::LShr => "lshr",
        BinOp::AShr => "ashr",
    }
}

fn cmp_name(op: CmpKind) -> &'static str {
    match op {
        CmpKind::Eq => "eq",
        CmpKind::Ne => "ne",
        CmpKind::Slt => "slt",
        CmpKind::Sle => "sle",
        CmpKind::Ult => "ult",
        CmpKind::Ule => "ule",
    }
}

fn print_inst(m: &Module, inst: &Inst) -> String {
    match inst {
        Inst::Bin { dst, op, a, b } => format!(
            "r{} = {} {}, {}",
            dst.0,
            bin_name(*op),
            print_op(*a),
            print_op(*b)
        ),
        Inst::Cmp { dst, op, a, b } => format!(
            "r{} = icmp {} {}, {}",
            dst.0,
            cmp_name(*op),
            print_op(*a),
            print_op(*b)
        ),
        Inst::Copy { dst, src } => format!("r{} = {}", dst.0, print_op(*src)),
        Inst::Load { dst, gep } => format!("r{} = load {}", dst.0, print_gep(m, gep)),
        Inst::Store { gep, val } => format!("store {}, {}", print_op(*val), print_gep(m, gep)),
        Inst::Call { dst, func, args } => {
            let callee = m.func_def(*func);
            let args: Vec<String> = args.iter().map(|&a| print_op(a)).collect();
            format!("r{} = call @{}({})", dst.0, callee.name, args.join(", "))
        }
    }
}

fn print_term(t: &Terminator) -> String {
    match t {
        Terminator::Jmp(b) => format!("jmp b{}", b.0),
        Terminator::Br { cond, then_, else_ } => {
            format!("br {}, b{}, b{}", print_op(*cond), then_.0, else_.0)
        }
        Terminator::Ret(v) => format!("ret {}", print_op(*v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::module::{FieldDecl, GlobalDecl};

    #[test]
    fn printing_smoke() {
        let mut m = Module::new();
        let g = m.declare_global(GlobalDecl {
            name: "files".into(),
            elems: 8,
            fields: vec![FieldDecl {
                name: "refcnt".into(),
                elems: 1,
                volatile: false,
            }],
        });
        let fld = m.global_decl(g).field("refcnt").unwrap();
        let mut fb = FuncBuilder::new("bump", 1);
        let f = fb.param(0);
        let old = fb.load(Gep {
            global: g,
            index: Operand::Reg(f),
            field: fld,
            sub: Operand::Const(0),
        });
        let new = fb.bin(BinOp::Add, Operand::Reg(old), Operand::Const(1));
        fb.store(
            Gep {
                global: g,
                index: Operand::Reg(f),
                field: fld,
                sub: Operand::Const(0),
            },
            Operand::Reg(new),
        );
        fb.ret(Operand::Const(0));
        m.add_func(fb.finish());
        let text = print_module(&m);
        assert!(text.contains("global @files[8]"), "{text}");
        assert!(text.contains("func @bump(r0)"), "{text}");
        assert!(text.contains("load @files[r0].refcnt"), "{text}");
        assert!(text.contains("r2 = add r1, 1"), "{text}");
    }
}
