//! Convenience builder for constructing HIR functions.
//!
//! Used by the HyperC compiler's lowering pass and by tests that need
//! hand-written IR.

use crate::func::{
    BinOp, Block, BlockId, CmpKind, Func, Gep, Inst, Operand, Reg, Span, Terminator,
};
use crate::module::FuncId;

/// Builds one function, block by block.
#[derive(Debug)]
pub struct FuncBuilder {
    name: String,
    num_params: u32,
    num_regs: u32,
    blocks: Vec<Option<Block>>,
    pending: Vec<Inst>,
    pending_spans: Vec<Span>,
    current: BlockId,
    terminated: bool,
    current_span: Span,
}

impl FuncBuilder {
    /// Starts a function with `num_params` parameters (occupying registers
    /// `0..num_params`). The entry block is current.
    pub fn new(name: impl Into<String>, num_params: u32) -> Self {
        FuncBuilder {
            name: name.into(),
            num_params,
            num_regs: num_params,
            blocks: vec![None],
            pending: Vec::new(),
            pending_spans: Vec::new(),
            current: BlockId(0),
            terminated: false,
            current_span: Span::NONE,
        }
    }

    /// Sets the source span recorded on subsequently emitted instructions
    /// and terminators, until the next `set_span`.
    pub fn set_span(&mut self, span: Span) {
        self.current_span = span;
    }

    /// Parameter register `i`.
    pub fn param(&self, i: u32) -> Reg {
        assert!(i < self.num_params, "param {i} out of range");
        Reg(i)
    }

    /// Allocates a fresh register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg(self.num_regs);
        self.num_regs += 1;
        r
    }

    /// Creates a new (empty, unpositioned) block.
    pub fn new_block(&mut self) -> BlockId {
        let b = BlockId(self.blocks.len() as u32);
        self.blocks.push(None);
        b
    }

    /// Switches the insertion point to `b`.
    ///
    /// # Panics
    ///
    /// Panics if the current block lacks a terminator or `b` was already
    /// filled.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(
            self.terminated,
            "block {:?} left unterminated",
            self.current
        );
        assert!(
            self.blocks[b.0 as usize].is_none(),
            "block {b:?} already filled"
        );
        self.current = b;
        self.pending = Vec::new();
        self.pending_spans = Vec::new();
        self.terminated = false;
    }

    fn push(&mut self, inst: Inst) {
        assert!(!self.terminated, "instruction after terminator");
        self.pending.push(inst);
        self.pending_spans.push(self.current_span);
    }

    /// Emits `dst = a op b` into a fresh register.
    pub fn bin(&mut self, op: BinOp, a: Operand, b: Operand) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Bin { dst, op, a, b });
        dst
    }

    /// Emits `dst = (a op b)` into a fresh register.
    pub fn cmp(&mut self, op: CmpKind, a: Operand, b: Operand) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Cmp { dst, op, a, b });
        dst
    }

    /// Emits a copy into an existing register (used for assignments).
    pub fn copy_to(&mut self, dst: Reg, src: Operand) {
        self.push(Inst::Copy { dst, src });
    }

    /// Emits a load into a fresh register.
    pub fn load(&mut self, gep: Gep) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Load { dst, gep });
        dst
    }

    /// Emits a store.
    pub fn store(&mut self, gep: Gep, val: Operand) {
        self.push(Inst::Store { gep, val });
    }

    /// Emits a call into a fresh register.
    pub fn call(&mut self, func: FuncId, args: Vec<Operand>) -> Reg {
        let dst = self.new_reg();
        self.push(Inst::Call { dst, func, args });
        dst
    }

    fn terminate(&mut self, term: Terminator) {
        assert!(!self.terminated, "double terminator");
        let block = Block {
            insts: std::mem::take(&mut self.pending),
            term,
            spans: std::mem::take(&mut self.pending_spans),
            term_span: self.current_span,
        };
        self.blocks[self.current.0 as usize] = Some(block);
        self.terminated = true;
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jmp(&mut self, target: BlockId) {
        self.terminate(Terminator::Jmp(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn br(&mut self, cond: Operand, then_: BlockId, else_: BlockId) {
        self.terminate(Terminator::Br { cond, then_, else_ });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, val: Operand) {
        self.terminate(Terminator::Ret(val));
    }

    /// Finishes the function.
    ///
    /// # Panics
    ///
    /// Panics if any created block was never filled.
    pub fn finish(self) -> Func {
        assert!(self.terminated, "last block unterminated");
        let blocks: Vec<Block> = self
            .blocks
            .into_iter()
            .enumerate()
            .map(|(i, b)| b.unwrap_or_else(|| panic!("block {i} never filled")))
            .collect();
        Func {
            name: self.name,
            num_params: self.num_params,
            num_regs: self.num_regs,
            blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_function() {
        // f(a, b) = a + b
        let mut fb = FuncBuilder::new("add", 2);
        let a = fb.param(0);
        let b = fb.param(1);
        let sum = fb.bin(BinOp::Add, Operand::Reg(a), Operand::Reg(b));
        fb.ret(Operand::Reg(sum));
        let f = fb.finish();
        assert_eq!(f.name, "add");
        assert_eq!(f.num_params, 2);
        assert_eq!(f.blocks.len(), 1);
    }

    #[test]
    fn build_branching_function() {
        // f(x) = x < 0 ? -x : x
        let mut fb = FuncBuilder::new("abs", 1);
        let x = fb.param(0);
        let neg = fb.cmp(CmpKind::Slt, Operand::Reg(x), Operand::Const(0));
        let then_b = fb.new_block();
        let else_b = fb.new_block();
        fb.br(Operand::Reg(neg), then_b, else_b);
        fb.switch_to(then_b);
        let nx = fb.bin(BinOp::Sub, Operand::Const(0), Operand::Reg(x));
        fb.ret(Operand::Reg(nx));
        fb.switch_to(else_b);
        fb.ret(Operand::Reg(x));
        let f = fb.finish();
        assert_eq!(f.blocks.len(), 3);
    }

    #[test]
    #[should_panic(expected = "unterminated")]
    fn unterminated_block_panics() {
        let mut fb = FuncBuilder::new("bad", 0);
        let b = fb.new_block();
        // Switching without terminating the entry block.
        fb.switch_to(b);
    }
}
