//! The HIR interpreter — the kernel's runtime.
//!
//! Because Hyperkernel-in-Rust executes the very IR it verifies, the
//! interpreter is the analogue of "the LLVM backend plus the CPU" in the
//! paper's trust story. It enforces the same undefined-behaviour rules the
//! verifier side-checks (division by zero, shift range, out-of-bounds
//! global access) and reports them as errors instead of
//! silently continuing, and it treats reads of uninitialized registers as
//! errors — strictly harsher than LLVM's `undef`, which makes differential
//! testing against the specification deterministic.

use crate::func::{BinOp, CmpKind, Func, Gep, Inst, Operand, Reg, Terminator};
use crate::module::{FieldId, FuncId, GlobalId, Module};

/// Kinds of immediate undefined behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UbKind {
    /// Division or remainder by zero.
    DivByZero,
    /// Shift amount outside `[0, 64)`.
    ShiftOutOfRange,
    /// Global element index out of bounds.
    OobIndex {
        /// The global accessed.
        global: GlobalId,
        /// The offending index.
        index: i64,
    },
    /// Field sub-index out of bounds.
    OobSub {
        /// The global accessed.
        global: GlobalId,
        /// The field accessed.
        field: FieldId,
        /// The offending sub-index.
        sub: i64,
    },
}

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Undefined behaviour was detected (the function and a description).
    Ub {
        /// The function in which UB occurred.
        func: String,
        /// What happened.
        kind: UbKind,
    },
    /// A register was read before being written.
    UninitRead {
        /// The function.
        func: String,
        /// The register.
        reg: Reg,
    },
    /// The fuel budget was exhausted (would-be divergence).
    OutOfFuel,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Ub { func, kind } => write!(f, "undefined behavior in {func}: {kind:?}"),
            ExecError::UninitRead { func, reg } => {
                write!(f, "uninitialized read of r{} in {func}", reg.0)
            }
            ExecError::OutOfFuel => write!(f, "out of fuel"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A resolved, bounds-checked address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Addr {
    /// The global.
    pub global: GlobalId,
    /// Element index, validated in range.
    pub index: u64,
    /// Field.
    pub field: FieldId,
    /// Sub-index within the field, validated in range.
    pub sub: u64,
}

/// Memory behind the interpreter. The kernel runs with its globals placed
/// in the machine's physical memory; tests use [`VecMem`].
pub trait MemBackend {
    /// Loads one word.
    fn load(&mut self, module: &Module, addr: Addr) -> i64;
    /// Stores one word.
    fn store(&mut self, module: &Module, addr: Addr, val: i64);
}

/// A simple flat-vector memory with the module's default layout.
#[derive(Debug, Clone)]
pub struct VecMem {
    /// Backing words.
    pub words: Vec<i64>,
    offsets: Vec<u64>,
}

impl VecMem {
    /// Allocates zeroed memory for all globals of a module.
    pub fn new(module: &Module) -> Self {
        let mut offsets = Vec::with_capacity(module.globals.len());
        let mut off = 0;
        for g in &module.globals {
            offsets.push(off);
            off += g.size_words();
        }
        VecMem {
            words: vec![0; off as usize],
            offsets,
        }
    }

    /// Flat word offset of an address.
    pub fn flat(&self, module: &Module, addr: Addr) -> usize {
        let g = module.global_decl(addr.global);
        (self.offsets[addr.global.0 as usize]
            + addr.index * g.stride()
            + g.field_offset(addr.field)
            + addr.sub) as usize
    }

    /// Reads by names, for tests and boot code.
    ///
    /// # Panics
    ///
    /// Panics on unknown names or out-of-range indices.
    pub fn get(&self, module: &Module, global: &str, index: u64, field: &str, sub: u64) -> i64 {
        let g = module.global(global).expect("unknown global");
        let f = module.global_decl(g).field(field).expect("unknown field");
        let addr = Addr {
            global: g,
            index,
            field: f,
            sub,
        };
        self.words[self.flat(module, addr)]
    }

    /// Writes by names, for tests and boot code.
    ///
    /// # Panics
    ///
    /// Panics on unknown names or out-of-range indices.
    pub fn set(
        &mut self,
        module: &Module,
        global: &str,
        index: u64,
        field: &str,
        sub: u64,
        val: i64,
    ) {
        let g = module.global(global).expect("unknown global");
        let f = module.global_decl(g).field(field).expect("unknown field");
        let addr = Addr {
            global: g,
            index,
            field: f,
            sub,
        };
        let i = self.flat(module, addr);
        self.words[i] = val;
    }
}

impl MemBackend for VecMem {
    fn load(&mut self, module: &Module, addr: Addr) -> i64 {
        self.words[self.flat(module, addr)]
    }

    fn store(&mut self, module: &Module, addr: Addr, val: i64) {
        let i = self.flat(module, addr);
        self.words[i] = val;
    }
}

/// The interpreter. Borrows the module; memory is passed per call so the
/// same interpreter can serve multiple memories.
#[derive(Debug)]
pub struct Interp<'m> {
    module: &'m Module,
}

impl<'m> Interp<'m> {
    /// Creates an interpreter for a module.
    pub fn new(module: &'m Module) -> Self {
        Interp { module }
    }

    /// Calls a function by id with the given arguments.
    ///
    /// `fuel` bounds the total number of executed instructions across the
    /// whole call tree; exceeding it is reported as [`ExecError::OutOfFuel`]
    /// (the runtime manifestation of a non-finite handler).
    pub fn call<M: MemBackend>(
        &self,
        mem: &mut M,
        func: FuncId,
        args: &[i64],
        fuel: u64,
    ) -> Result<i64, ExecError> {
        self.call_counting(mem, func, args, fuel).map(|(v, _)| v)
    }

    /// Like [`Interp::call`], additionally returning the number of
    /// instructions executed (the kernel's cycle accounting reads this).
    pub fn call_counting<M: MemBackend>(
        &self,
        mem: &mut M,
        func: FuncId,
        args: &[i64],
        fuel: u64,
    ) -> Result<(i64, u64), ExecError> {
        let mut remaining = fuel;
        let ret = self.call_inner(mem, func, args, &mut remaining)?;
        Ok((ret, fuel - remaining))
    }

    fn call_inner<M: MemBackend>(
        &self,
        mem: &mut M,
        func: FuncId,
        args: &[i64],
        fuel: &mut u64,
    ) -> Result<i64, ExecError> {
        let f = self.module.func_def(func);
        assert_eq!(
            args.len(),
            f.num_params as usize,
            "arity mismatch calling {}",
            f.name
        );
        let mut regs: Vec<Option<i64>> = vec![None; f.num_regs as usize];
        for (i, &a) in args.iter().enumerate() {
            regs[i] = Some(a);
        }
        let mut block = f.entry();
        loop {
            let b = f.block(block);
            for inst in &b.insts {
                if *fuel == 0 {
                    return Err(ExecError::OutOfFuel);
                }
                *fuel -= 1;
                self.step(mem, f, inst, &mut regs, fuel)?;
            }
            match &b.term {
                Terminator::Jmp(t) => block = *t,
                Terminator::Br { cond, then_, else_ } => {
                    let c = self.operand(f, &regs, *cond)?;
                    block = if c != 0 { *then_ } else { *else_ };
                }
                Terminator::Ret(v) => return self.operand(f, &regs, *v),
            }
        }
    }

    fn operand(&self, f: &Func, regs: &[Option<i64>], op: Operand) -> Result<i64, ExecError> {
        match op {
            Operand::Const(c) => Ok(c),
            Operand::Reg(r) => regs[r.0 as usize].ok_or(ExecError::UninitRead {
                func: f.name.clone(),
                reg: r,
            }),
        }
    }

    fn resolve(&self, f: &Func, regs: &[Option<i64>], gep: Gep) -> Result<Addr, ExecError> {
        let g = self.module.global_decl(gep.global);
        let index = self.operand(f, regs, gep.index)?;
        if index < 0 || index as u64 >= g.elems {
            return Err(ExecError::Ub {
                func: f.name.clone(),
                kind: UbKind::OobIndex {
                    global: gep.global,
                    index,
                },
            });
        }
        let field = &g.fields[gep.field.0 as usize];
        let sub = self.operand(f, regs, gep.sub)?;
        if sub < 0 || sub as u64 >= field.elems {
            return Err(ExecError::Ub {
                func: f.name.clone(),
                kind: UbKind::OobSub {
                    global: gep.global,
                    field: gep.field,
                    sub,
                },
            });
        }
        Ok(Addr {
            global: gep.global,
            index: index as u64,
            field: gep.field,
            sub: sub as u64,
        })
    }

    fn step<M: MemBackend>(
        &self,
        mem: &mut M,
        f: &Func,
        inst: &Inst,
        regs: &mut [Option<i64>],
        fuel: &mut u64,
    ) -> Result<(), ExecError> {
        match inst {
            Inst::Bin { dst, op, a, b } => {
                let x = self.operand(f, regs, *a)?;
                let y = self.operand(f, regs, *b)?;
                let r = eval_bin(*op, x, y).map_err(|kind| ExecError::Ub {
                    func: f.name.clone(),
                    kind,
                })?;
                regs[dst.0 as usize] = Some(r);
            }
            Inst::Cmp { dst, op, a, b } => {
                let x = self.operand(f, regs, *a)?;
                let y = self.operand(f, regs, *b)?;
                regs[dst.0 as usize] = Some(eval_cmp(*op, x, y) as i64);
            }
            Inst::Copy { dst, src } => {
                let v = self.operand(f, regs, *src)?;
                regs[dst.0 as usize] = Some(v);
            }
            Inst::Load { dst, gep } => {
                let addr = self.resolve(f, regs, *gep)?;
                regs[dst.0 as usize] = Some(mem.load(self.module, addr));
            }
            Inst::Store { gep, val } => {
                let v = self.operand(f, regs, *val)?;
                let addr = self.resolve(f, regs, *gep)?;
                mem.store(self.module, addr, v);
            }
            Inst::Call { dst, func, args } => {
                let vals: Result<Vec<i64>, ExecError> =
                    args.iter().map(|&a| self.operand(f, regs, a)).collect();
                let r = self.call_inner(mem, *func, &vals?, fuel)?;
                regs[dst.0 as usize] = Some(r);
            }
        }
        Ok(())
    }
}

/// Evaluates a binary operation with C/HIR UB semantics.
pub fn eval_bin(op: BinOp, a: i64, b: i64) -> Result<i64, UbKind> {
    match op {
        BinOp::Add => Ok(a.wrapping_add(b)),
        BinOp::Sub => Ok(a.wrapping_sub(b)),
        BinOp::Mul => Ok(a.wrapping_mul(b)),
        BinOp::UDiv => {
            if b == 0 {
                Err(UbKind::DivByZero)
            } else {
                Ok(((a as u64) / (b as u64)) as i64)
            }
        }
        BinOp::URem => {
            if b == 0 {
                Err(UbKind::DivByZero)
            } else {
                Ok(((a as u64) % (b as u64)) as i64)
            }
        }
        BinOp::And => Ok(a & b),
        BinOp::Or => Ok(a | b),
        BinOp::Xor => Ok(a ^ b),
        BinOp::Shl => {
            if !(0..64).contains(&b) {
                return Err(UbKind::ShiftOutOfRange);
            }
            Ok(((a as u64) << b) as i64)
        }
        BinOp::LShr => {
            if !(0..64).contains(&b) {
                return Err(UbKind::ShiftOutOfRange);
            }
            Ok(((a as u64) >> b) as i64)
        }
        BinOp::AShr => {
            if !(0..64).contains(&b) {
                return Err(UbKind::ShiftOutOfRange);
            }
            Ok(a >> b)
        }
    }
}

/// Evaluates a comparison.
pub fn eval_cmp(op: CmpKind, a: i64, b: i64) -> bool {
    match op {
        CmpKind::Eq => a == b,
        CmpKind::Ne => a != b,
        CmpKind::Slt => a < b,
        CmpKind::Sle => a <= b,
        CmpKind::Ult => (a as u64) < (b as u64),
        CmpKind::Ule => (a as u64) <= (b as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::module::{FieldDecl, GlobalDecl};

    fn test_module() -> (Module, FuncId, FuncId) {
        let mut m = Module::new();
        m.declare_global(GlobalDecl {
            name: "table".into(),
            elems: 4,
            fields: vec![FieldDecl {
                name: "value".into(),
                elems: 2,
                volatile: false,
            }],
        });
        // get(i, j) = table[i].value[j]
        let g = m.global("table").unwrap();
        let fld = m.global_decl(g).field("value").unwrap();
        let mut fb = FuncBuilder::new("get", 2);
        let v = fb.load(Gep {
            global: g,
            index: Operand::Reg(fb.param(0)),
            field: fld,
            sub: Operand::Reg(fb.param(1)),
        });
        fb.ret(Operand::Reg(v));
        let get = m.add_func(fb.finish());
        // put(i, j, v) { table[i].value[j] = v; return 0; }
        let mut fb = FuncBuilder::new("put", 3);
        fb.store(
            Gep {
                global: g,
                index: Operand::Reg(fb.param(0)),
                field: fld,
                sub: Operand::Reg(fb.param(1)),
            },
            Operand::Reg(fb.param(2)),
        );
        fb.ret(Operand::Const(0));
        let put = m.add_func(fb.finish());
        (m, get, put)
    }

    #[test]
    fn load_store_roundtrip() {
        let (m, get, put) = test_module();
        let interp = Interp::new(&m);
        let mut mem = VecMem::new(&m);
        interp.call(&mut mem, put, &[2, 1, 99], 1000).unwrap();
        assert_eq!(interp.call(&mut mem, get, &[2, 1], 1000).unwrap(), 99);
        assert_eq!(interp.call(&mut mem, get, &[2, 0], 1000).unwrap(), 0);
        assert_eq!(mem.get(&m, "table", 2, "value", 1), 99);
    }

    #[test]
    fn oob_index_is_ub() {
        let (m, get, _) = test_module();
        let interp = Interp::new(&m);
        let mut mem = VecMem::new(&m);
        let err = interp.call(&mut mem, get, &[4, 0], 1000).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Ub {
                kind: UbKind::OobIndex { .. },
                ..
            }
        ));
        let err = interp.call(&mut mem, get, &[-1, 0], 1000).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Ub {
                kind: UbKind::OobIndex { index: -1, .. },
                ..
            }
        ));
        let err = interp.call(&mut mem, get, &[0, 2], 1000).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Ub {
                kind: UbKind::OobSub { .. },
                ..
            }
        ));
    }

    #[test]
    fn arithmetic_wraps_like_llvm() {
        // LLVM `add`/`sub`/`mul` without nsw wrap; the HyperC frontend
        // never emits nsw (paper §4.4's frontend-interpretation caveat).
        assert_eq!(eval_bin(BinOp::Add, i64::MAX, 1), Ok(i64::MIN));
        assert_eq!(eval_bin(BinOp::Sub, i64::MIN, 1), Ok(i64::MAX));
        assert_eq!(eval_bin(BinOp::Mul, i64::MAX, 2), Ok(-2));
        assert_eq!(eval_bin(BinOp::Add, 1, 2), Ok(3));
    }

    #[test]
    fn shift_ub_rules() {
        assert_eq!(eval_bin(BinOp::Shl, 1, 64), Err(UbKind::ShiftOutOfRange));
        assert_eq!(eval_bin(BinOp::Shl, 1, -1), Err(UbKind::ShiftOutOfRange));
        assert_eq!(eval_bin(BinOp::Shl, 1, 63), Ok(i64::MIN));
        assert_eq!(eval_bin(BinOp::Shl, 3, 2), Ok(12));
        assert_eq!(eval_bin(BinOp::LShr, -1, 1), Ok(i64::MAX));
        assert_eq!(eval_bin(BinOp::AShr, -2, 1), Ok(-1));
    }

    #[test]
    fn div_by_zero_is_ub() {
        assert_eq!(eval_bin(BinOp::UDiv, 1, 0), Err(UbKind::DivByZero));
        assert_eq!(eval_bin(BinOp::URem, 1, 0), Err(UbKind::DivByZero));
        assert_eq!(eval_bin(BinOp::UDiv, 7, 2), Ok(3));
        // Unsigned semantics: -1 is a huge dividend.
        assert_eq!(eval_bin(BinOp::UDiv, -1, 2), Ok(i64::MAX));
    }

    #[test]
    fn fuel_exhaustion() {
        // An infinite loop runs out of fuel instead of hanging.
        let mut m = Module::new();
        let mut fb = FuncBuilder::new("spin", 0);
        let b = fb.new_block();
        fb.jmp(b);
        fb.switch_to(b);
        let _ = fb.bin(BinOp::Add, Operand::Const(1), Operand::Const(1));
        fb.jmp(b);
        let f = m.add_func(fb.finish());
        let interp = Interp::new(&m);
        let mut mem = VecMem::new(&m);
        assert_eq!(
            interp.call(&mut mem, f, &[], 10_000),
            Err(ExecError::OutOfFuel)
        );
    }

    #[test]
    fn uninit_read_is_error() {
        let mut m = Module::new();
        let mut fb = FuncBuilder::new("bad", 0);
        let r = fb.new_reg();
        let s = fb.bin(BinOp::Add, Operand::Reg(r), Operand::Const(1));
        fb.ret(Operand::Reg(s));
        let f = m.add_func(fb.finish());
        let interp = Interp::new(&m);
        let mut mem = VecMem::new(&m);
        assert!(matches!(
            interp.call(&mut mem, f, &[], 1000),
            Err(ExecError::UninitRead { .. })
        ));
    }

    #[test]
    fn calls_pass_arguments() {
        let mut m = Module::new();
        let mut fb = FuncBuilder::new("double", 1);
        let x = fb.param(0);
        let r = fb.bin(BinOp::Add, Operand::Reg(x), Operand::Reg(x));
        fb.ret(Operand::Reg(r));
        let double = m.add_func(fb.finish());
        let mut fb = FuncBuilder::new("quad", 1);
        let x = fb.param(0);
        let d = fb.call(double, vec![Operand::Reg(x)]);
        let q = fb.call(double, vec![Operand::Reg(d)]);
        fb.ret(Operand::Reg(q));
        let quad = m.add_func(fb.finish());
        let interp = Interp::new(&m);
        let mut mem = VecMem::new(&m);
        assert_eq!(interp.call(&mut mem, quad, &[5], 1000).unwrap(), 20);
    }
}
