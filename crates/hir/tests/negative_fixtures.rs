//! Negative fixtures for the static-analysis pipeline: each HyperC
//! fixture trips exactly one lint, and the diagnostic must carry the
//! exact `file:line:col` of the offending HyperC expression.
//!
//! The UB fixtures are additionally *differential*: the concrete
//! interpreter must trap at runtime with the same UB kind, in the same
//! function, that the lint warned about statically.

use hk_hir::analysis::{analyze_module, AnalysisConfig, AnalysisResult, Diagnostic};
use hk_hir::builder::FuncBuilder;
use hk_hir::{
    DiagnosticCode, ExecError, FieldDecl, GlobalDecl, Interp, Module, Operand, Span, UbKind, VecMem,
};

/// Compiles one named HyperC fixture into a fresh module and analyses
/// the given root function.
fn analyze_fixture(file: &str, src: &str, root: &str) -> (Module, AnalysisResult) {
    let mut module = Module::new();
    analyze_fixture_in(&mut module, file, src, root)
}

fn analyze_fixture_in(
    module: &mut Module,
    file: &str,
    src: &str,
    root: &str,
) -> (Module, AnalysisResult) {
    let mut compiler = hk_hcc::Compiler::new(module);
    compiler.compile_named(file, src).expect("fixture compiles");
    let f = module.func(root).expect("root function");
    // A small visit cap keeps the unbounded-loop fixture cheap; the
    // verdict is the same at any cap.
    let config = AnalysisConfig {
        max_block_visits: 64,
        ..AnalysisConfig::default()
    };
    let result = analyze_module(module, &[f], &config);
    (module.clone(), result)
}

/// Asserts exactly one unsuppressed finding of `code`, anchored at the
/// expected source position, and returns it.
fn expect_finding(
    module: &Module,
    result: &AnalysisResult,
    code: DiagnosticCode,
    file: &str,
    line: u32,
    col: u32,
) -> Diagnostic {
    let found: Vec<&Diagnostic> = result.unsuppressed().filter(|d| d.code == code).collect();
    assert_eq!(
        found.len(),
        1,
        "expected exactly one {} finding, got: {:?}",
        code.as_str(),
        result.diagnostics
    );
    let d = found[0];
    let expected = Span {
        file: module.files.iter().position(|f| f == file).unwrap() as u32,
        line,
        col,
    };
    assert_eq!(
        (d.span.file, d.span.line, d.span.col),
        (expected.file, expected.line, expected.col),
        "wrong span; rendered: {}",
        d.render(module)
    );
    assert!(
        d.render(module)
            .starts_with(&format!("{file}:{line}:{col}: {}:", code.as_str())),
        "render mismatch: {}",
        d.render(module)
    );
    d.clone()
}

#[test]
fn unbounded_loop_is_flagged_at_its_condition() {
    let src = "\
i64 spin(i64 n) {
    i64 i;
    i64 s = 0;
    for (i = 0; i < n; i = i + 1) {
        s = s + 1;
    }
    return s;
}
";
    let (module, result) = analyze_fixture("spin.hc", src, "spin");
    // The loop header (entered once per iteration) has no provable
    // constant bound because `n` is unconstrained; the finding anchors
    // at the condition `i < n`.
    expect_finding(
        &module,
        &result,
        DiagnosticCode::UnboundedLoop,
        "spin.hc",
        4,
        19,
    );
    assert!(result.bounds.is_empty(), "no bounds may be exported");
}

#[test]
fn recursion_is_flagged_at_the_call_site() {
    // Recursion is not even *expressible* in HyperC: the single-pass
    // compiler resolves callees at lowering time, so a function can
    // never name itself (or a later one). The cycle detector's real
    // prey is hand-built or corrupted IR — so that is what the fixture
    // is, with spans attached as a front end would.
    let mut module = Module::new();
    let file = module.intern_file("rec.hc");
    let mut fb = FuncBuilder::new("rec", 1);
    fb.set_span(Span::new(file, 5, 12));
    let r = fb.call(hk_hir::FuncId(0), vec![Operand::Reg(fb.param(0))]);
    fb.ret(Operand::Reg(r));
    module.add_func(fb.finish());
    let f = module.func("rec").unwrap();
    let result = analyze_module(&module, &[f], &AnalysisConfig::default());
    let d = expect_finding(&module, &result, DiagnosticCode::Recursion, "rec.hc", 5, 12);
    assert!(d.message.contains("rec -> rec"), "{}", d.message);
    assert!(result.bounds.is_empty(), "recursion poisons all bounds");
}

#[test]
fn use_before_def_is_flagged_at_the_read() {
    let src = "\
i64 pick(i64 c) {
    i64 x;
    if (c != 0) {
        x = 7;
    }
    return x + 1;
}
";
    let (module, result) = analyze_fixture("pick.hc", src, "pick");
    // `x` is assigned only on the then-path; the maybe-undef read is
    // the `x + 1` at the merge.
    let d = expect_finding(
        &module,
        &result,
        DiagnosticCode::UseBeforeDef,
        "pick.hc",
        6,
        14,
    );
    assert!(d.message.contains("may be read before assignment"));
}

#[test]
fn div_by_zero_is_flagged_and_interp_traps_to_match() {
    let src = "\
i64 quot(i64 a, i64 b) {
    return a / b;
}
";
    let (module, result) = analyze_fixture("quot.hc", src, "quot");
    let d = expect_finding(
        &module,
        &result,
        DiagnosticCode::PossibleDivByZero,
        "quot.hc",
        2,
        14,
    );
    // Differential: the interpreter traps at runtime with the same UB
    // kind, in the same function, the lint warned about.
    let f = module.func("quot").unwrap();
    let interp = Interp::new(&module);
    let mut mem = VecMem::new(&module);
    let err = interp.call(&mut mem, f, &[10, 0], 1_000).unwrap_err();
    assert_eq!(
        err,
        ExecError::Ub {
            func: d.func.clone(),
            kind: UbKind::DivByZero,
        }
    );
    // With a nonzero divisor the same code runs fine — the lint fires
    // on possibility, the trap on actuality.
    assert_eq!(interp.call(&mut mem, f, &[10, 2], 1_000), Ok(5));
}

#[test]
fn oob_gep_is_flagged_and_interp_traps_to_match() {
    let mut module = Module::new();
    module.declare_global(GlobalDecl {
        name: "table".into(),
        elems: 8,
        fields: vec![FieldDecl {
            name: "value".into(),
            elems: 1,
            volatile: false,
        }],
    });
    let src = "\
i64 peek(i64 i) {
    return table[i].value;
}
";
    let (module, result) = analyze_fixture_in(&mut module, "peek.hc", src, "peek");
    let d = expect_finding(
        &module,
        &result,
        DiagnosticCode::PossibleOobIndex,
        "peek.hc",
        2,
        12,
    );
    let g = module.global("table").unwrap();
    let f = module.func("peek").unwrap();
    let interp = Interp::new(&module);
    let mut mem = VecMem::new(&module);
    let err = interp.call(&mut mem, f, &[99], 1_000).unwrap_err();
    assert_eq!(
        err,
        ExecError::Ub {
            func: d.func.clone(),
            kind: UbKind::OobIndex {
                global: g,
                index: 99,
            },
        }
    );
    assert_eq!(interp.call(&mut mem, f, &[3], 1_000), Ok(0));
}

#[test]
fn guarded_variants_of_every_fixture_are_clean() {
    // The same idioms, validated the way the kernel sources do it:
    // constant trip counts, guards before use, and range checks.
    let src = "\
i64 sum4() {
    i64 i;
    i64 s = 0;
    for (i = 0; i < 4; i = i + 1) {
        s = s + i;
    }
    return s;
}

i64 pick_ok(i64 c) {
    i64 x = 0;
    if (c != 0) {
        x = 7;
    }
    return x + 1;
}

i64 quot_ok(i64 a, i64 b) {
    if (b == 0) {
        return 0 - 1;
    }
    return a / b;
}
";
    let mut module = Module::new();
    let mut compiler = hk_hcc::Compiler::new(&mut module);
    compiler.compile_named("ok.hc", src).expect("compiles");
    let roots: Vec<_> = ["sum4", "pick_ok", "quot_ok"]
        .iter()
        .map(|n| module.func(n).unwrap())
        .collect();
    let result = analyze_module(&module, &roots, &AnalysisConfig::default());
    let rendered: Vec<String> = result.unsuppressed().map(|d| d.render(&module)).collect();
    assert!(rendered.is_empty(), "{}", rendered.join("\n"));
    // The bounded loop exports its bound: header entered 5 times (one
    // preheader entry + four back edges), body 4.
    let sum4 = module.func("sum4").unwrap();
    let header = result.bounds.bound(sum4, 1).expect("header bound exported");
    assert_eq!(header, 5);
}
