//! # Hyperkernel, in Rust
//!
//! A from-scratch reproduction of *Hyperkernel: Push-Button Verification
//! of an OS Kernel* (Nelson et al., SOSP 2017): a finite-interface OS
//! kernel together with the entire toolchain that verifies it — an SMT
//! solver, an LLVM-IR-like intermediate representation and symbolic
//! executor, a C-like frontend, a machine substrate with virtualization
//! and an IOMMU, the two-layer specification, the push-button verifier,
//! the §5 checkers, and the user-space world (libc, journaling file
//! system, TCP/IP, shell, HTTP, Linux emulation).
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under a stable name.
//!
//! ## The ten-second tour
//!
//! ```
//! use hyperkernel::abi::{KernelParams, Sysno};
//! use hyperkernel::kernel::{boot::boot, Kernel};
//! use hyperkernel::vm::CostModel;
//!
//! // Build the kernel (compiles the 50 HyperC trap handlers to HIR).
//! let kernel = Kernel::new(KernelParams::verification()).unwrap();
//! let mut machine = kernel.new_machine(CostModel::default_model());
//! boot(&kernel, &mut machine);
//!
//! // The interface is finite: dup names *both* descriptors (§2.1).
//! let r = kernel.trap(&mut machine, Sysno::Dup, &[0, 1]).unwrap();
//! assert_eq!(r, -hyperkernel::abi::EBADF); // nothing open yet
//! ```
//!
//! To *verify* a handler instead of merely running it:
//!
//! ```no_run
//! use hyperkernel::verifier::{verify_all, VerifyConfig};
//!
//! let report = verify_all(&VerifyConfig::default());
//! assert!(report.all_verified());
//! println!("{}", report.summary());
//! ```
//!
//! See the `examples/` directory for the full demos: `quickstart`,
//! `verify_kernel`, `webserver`, and `linux_binaries`.

/// Shared ABI: syscall numbers, errnos, parameters, PTE encoding.
pub use hk_abi as abi;
/// The §5 checkers: boot, stack, link.
pub use hk_checkers as checkers;
/// The push-button verifier (Theorems 1 and 2, test generation).
pub use hk_core as verifier;
/// The HyperC compiler (C-analogue frontend).
pub use hk_hcc as hcc;
/// The LLVM-IR-like intermediate representation and interpreter.
pub use hk_hir as hir;
/// The kernel: HyperC handlers, image, boot, dispatch, system.
pub use hk_kernel as kernel;
/// The monolithic Unix-like baseline (Figure 10's "Linux").
pub use hk_mono as mono;
/// The SMT solver (Z3 stand-in).
pub use hk_smt as smt;
/// The two-layer specification.
pub use hk_spec as spec;
/// The symbolic executor.
pub use hk_symx as symx;
/// User space: libc, file system, network, shell, HTTP, Linux emulation.
pub use hk_user as user;
/// The machine substrate (virtualization, paging, IOMMU, devices).
pub use hk_vm as vm;
