//! Push-button verification, end to end (the paper's §2 walkthrough):
//!
//! 1. verify a handful of handlers against their state-machine specs
//!    (Theorem 1), including UB-freedom;
//! 2. check the declarative layer against a transition (Theorem 2);
//! 3. inject the paper's forgotten-refcount bug into `sys_dup` and watch
//!    the verifier produce a *concrete, replayable* counterexample.
//!
//! ```sh
//! cargo run --release --example verify_kernel               # a fast subset
//! cargo run --release --example verify_kernel -- --all      # all 50 (slow)
//! cargo run --release --example verify_kernel -- --certify  # DRAT-checked Unsat
//! ```

use std::sync::Arc;

use hyperkernel::abi::{KernelParams, Sysno};
use hyperkernel::kernel::{Kernel, KernelImage};
use hyperkernel::smt::QueryCache;
use hyperkernel::spec::shapes_of;
use hyperkernel::verifier::xcut;
use hyperkernel::verifier::{verify_image, HandlerOutcome, VerifyConfig};

fn main() {
    let all = std::env::args().any(|a| a == "--all");
    let json = std::env::args().any(|a| a == "--json");
    let certify = std::env::args().any(|a| a == "--certify");
    let params = KernelParams::verification();

    // ---- Theorem 1 on the stock kernel. ----
    let image = KernelImage::build(params).expect("kernel build");
    let only = if all {
        Vec::new()
    } else {
        vec![
            Sysno::Nop,
            Sysno::Dup,
            Sysno::Close,
            Sysno::AckIntr,
            Sysno::TrapIrq,
        ]
    };
    // One content-addressed verification-condition cache shared across
    // runs: the second pass over the unchanged image answers almost all
    // queries from it.
    let cache = Arc::new(QueryCache::new(1 << 14));
    let mut config = VerifyConfig {
        params,
        threads: 1,
        only,
        ..VerifyConfig::default()
    };
    config.solver.cache = Some(cache.clone());
    // With --certify every Unsat answer — and a verified handler is a
    // stack of Unsat answers — is re-derived by the independent DRAT
    // checker before being reported; the summary grows a "proof" line.
    // Certified queries bypass the cache (a certified verdict is always
    // re-derived, never replayed), so the warm pass below stops being
    // warm: that is the trust/speed trade, made visible.
    config.solver.certify = certify;
    println!("== Theorem 1: refinement + UB-freedom ==");
    let report = verify_image(&image, &config);
    print!("{}", report.summary());
    assert!(report.all_verified(), "stock kernel must verify");
    if certify {
        assert!(report.fully_certified(), "certification incomplete");
    }

    println!("\n== Theorem 1 again, warm cache ==");
    let warm = verify_image(&image, &config);
    print!("{}", warm.summary());
    assert!(warm.all_verified());
    println!(
        "warm run: {:.2}s vs cold {:.2}s, {:.0}% of queries cached",
        warm.total_time.as_secs_f64(),
        report.total_time.as_secs_f64(),
        warm.cache_hit_rate() * 100.0
    );
    if json {
        println!("\n{}", warm.to_json());
    }

    // ---- Theorem 2 on one transition. ----
    println!("\n== Theorem 2: declarative layer across sys_dup ==");
    let shapes = shapes_of(&image.module);
    let pr = xcut::check_transition(&shapes, params, Sysno::Dup, &Default::default());
    println!(
        "properties preserved by sys_dup: {} ({:.2}s, {} conflicts)",
        if pr.outcome.holds() { "yes" } else { "NO" },
        pr.time.as_secs_f64(),
        pr.conflicts
    );
    assert!(pr.outcome.holds());

    // ---- The §2.4 debugging experience: inject the forgotten
    //      refcount increment into the dup implementation. ----
    println!("\n== bug injection: dup forgets files[f].refcnt += 1 ==");
    let sources: Vec<(&'static str, String)> = hyperkernel::kernel::image::SOURCES
        .iter()
        .map(|&(name, src)| {
            let patched = if name == "fd.hc" {
                src.replacen(
                    "    procs[current].ofile[newfd] = f;\n    procs[current].nr_fds = procs[current].nr_fds + 1;\n    files[f].refcnt = files[f].refcnt + 1;\n    return 0;\n}\n\n// dup2",
                    "    procs[current].ofile[newfd] = f;\n    procs[current].nr_fds = procs[current].nr_fds + 1;\n    // BUG (injected): forgot files[f].refcnt = files[f].refcnt + 1;\n    return 0;\n}\n\n// dup2",
                    1,
                )
            } else {
                src.to_string()
            };
            (name, patched)
        })
        .collect();
    let buggy = KernelImage::build_with_sources(params, sources).expect("buggy build");
    let config = VerifyConfig {
        params,
        threads: 1,
        only: vec![Sysno::Dup],
        ..VerifyConfig::default()
    };
    let report = verify_image(&buggy, &config);
    match &report.handlers[0].outcome {
        HandlerOutcome::RefinementBug { detail, test_case } => {
            println!("verifier verdict: refinement bug at {detail}");
            println!("{}", test_case.display_minimized());
            // Replay on the real interpreter (the stock kernel's machine
            // shape matches; build a kernel around the buggy image).
            let kernel = Kernel {
                layout: hyperkernel::kernel::KernelLayout::new(&buggy.module),
                image: buggy,
            };
            let replay = test_case.replay(&kernel);
            println!("replay on the interpreter: {replay:?}");
        }
        other => panic!("expected a refinement bug, got {other:?}"),
    }
    println!("\npush-button verification: done.");
}
