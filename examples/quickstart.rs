//! Quickstart: boot the verified kernel, run the boot checkers, spawn a
//! multi-process shell pipeline, and tear everything down through the
//! finite interface.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hyperkernel::abi::KernelParams;
use hyperkernel::checkers;
use hyperkernel::kernel::System;
use hyperkernel::user::shell::Shell;
use hyperkernel::user::ulib::PageBudget;
use hyperkernel::vm::CostModel;

fn main() {
    println!("== hyperkernel quickstart ==\n");
    // Boot: compiles the 50 HyperC trap handlers to HIR, lays the kernel
    // out in physical memory, and initializes the process/page tables.
    let params = KernelParams::production();
    let mut system = System::boot(params, CostModel::default_model());
    println!(
        "booted: {} procs, {} pages of {} words, kernel region {} words",
        params.nr_procs, params.nr_pages, params.page_words, system.kernel.layout.kernel_words
    );

    // The §5 checkers vouch for what the theorems do not cover.
    let boot = checkers::boot_checker(&system.kernel, &mut system.machine);
    let stack = checkers::stack_checker(&system.kernel);
    let link = checkers::link_checker(&system.kernel, &system.machine);
    let (worst_fn, worst_bytes) = checkers::stack_worst_case(&system.kernel);
    println!("boot checker:  {}", if boot.ok() { "ok" } else { "FAILED" });
    println!(
        "stack checker: {} (worst case {} bytes in {}, budget {})",
        if stack.ok() { "ok" } else { "FAILED" },
        worst_bytes,
        worst_fn,
        checkers::KERNEL_STACK_BYTES
    );
    println!("link checker:  {}", if link.ok() { "ok" } else { "FAILED" });

    // Run a pipeline: the shell spawns one process per stage and wires
    // them with kernel pipes, exokernel-style (every page and descriptor
    // is chosen by user space and merely validated by the kernel).
    let line = "echo put another way | rev | upper";
    println!("\n$ {line}");
    let shell = Shell::new(line, 0, PageBudget::from_range(3, 300), 2);
    system.set_init(Box::new(shell));
    let exit = system.run(100_000);
    println!("scheduler exit: {exit:?}");
    println!("console: {}", system.console_text().trim_end());

    // The invariant the verifier proves inductive holds on the live
    // system at every step; check it once more on the final state.
    let invariant = system
        .kernel
        .check_invariant(&mut system.machine)
        .expect("invariant executes");
    println!("\nrepresentation invariant on final state: {invariant}");
    println!(
        "cycles: {}, TLB (hits, misses, flushes): {:?}",
        system.machine.cycles.total,
        system.machine.tlb_stats()
    );
}
