//! Linux user emulation (§4.3): run HXE "binaries" whose Linux system
//! calls are serviced in-process — the Hyp-Linux configuration whose
//! null-syscall cost Figure 10 reports as 136 cycles.
//!
//! ```sh
//! cargo run --example linux_binaries
//! ```

use hyperkernel::abi::KernelParams;
use hyperkernel::kernel::{GuestEnv, GuestProg, Poll, System};
use hyperkernel::user::linuxemu::{HxeImage, LinuxEmu};
use hyperkernel::user::ulib::{self, PageBudget};
use hyperkernel::vm::CostModel;

struct Launcher {
    spawned: bool,
}

impl GuestProg for Launcher {
    fn poll(&mut self, env: &mut GuestEnv) -> Poll {
        if !self.spawned {
            let mut budget: PageBudget = ulib::init_budget(env);
            let images: Vec<(&str, HxeImage)> = vec![
                (
                    "hello",
                    HxeImage::hello("hello from an emulated Linux binary\n"),
                ),
                ("sum_loop(1000)", HxeImage::sum_loop(1000)),
                ("gettid x32", HxeImage::gettid_loop(32)),
                ("brk+touch", HxeImage::brk_touch(64)),
            ];
            for (i, (name, image)) in images.into_iter().enumerate() {
                let pid = 2 + i as i64;
                let child = ulib::spawn(env, &mut budget, pid, &[], 24).unwrap();
                println!("[init] exec {name} as pid {pid}");
                env.register_actor(pid, Box::new(LinuxEmu::new(image, child)));
            }
            self.spawned = true;
        }
        Poll::Pending
    }
}

fn main() {
    println!("== hyperkernel Linux emulation ==\n");
    let mut system = System::boot(KernelParams::production(), CostModel::default_model());
    system.set_init(Box::new(Launcher { spawned: false }));
    system.run(100_000);
    println!("\nconsole output:\n{}", system.console_text());
    for pid in 2..=5u64 {
        let state = system
            .kernel
            .read_global(&system.machine, "procs", pid, "state", 0);
        println!(
            "pid {pid}: state={}",
            hyperkernel::abi::proc_state::name(state)
        );
    }
    let inv = system.kernel.check_invariant(&mut system.machine).unwrap();
    println!("\nkernel invariant after all binaries ran: {inv}");
}
