//! The paper's web-server demo (§4.3): an HTTP server running as a user
//! process on the verified kernel, its NIC driven through IOMMU-mapped
//! DMA, serving files from the journaling file system to a client on
//! the other end of the wire.
//!
//! ```sh
//! cargo run --example webserver
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use hyperkernel::abi::KernelParams;
use hyperkernel::kernel::{GuestEnv, GuestProg, Poll, System};
use hyperkernel::user::fs::disk::RamDisk;
use hyperkernel::user::fs::{FileSys, T_DIR, T_FILE};
use hyperkernel::user::httpd::{HttpClient, HttpServer};
use hyperkernel::user::net::driver::NicDriver;
use hyperkernel::user::ulib::{self, PageBudget, UserVm};
use hyperkernel::vm::dev::Nic;
use hyperkernel::vm::CostModel;

/// The in-guest web server: NIC driver + TCP stack + HTTP + files.
struct WebServer {
    driver: NicDriver,
    http: HttpServer,
    vm: Option<UserVm>,
    budget: Option<PageBudget>,
}

impl GuestProg for WebServer {
    fn poll(&mut self, env: &mut GuestEnv) -> Poll {
        if self.vm.is_none() {
            let mut budget = ulib::init_budget(env);
            let mut vm = UserVm::new(env.proc_field("pml4"));
            // Claim device 0, build its IOMMU table, take vector 5.
            self.driver
                .setup(env, &mut vm, &mut budget, 0, 5)
                .expect("driver setup");
            println!("[guest] NIC driver up: IOMMU table built, vector 5 routed");
            self.vm = Some(vm);
            self.budget = Some(budget);
        }
        let moved = self.driver.pump(env, &mut self.http.stack);
        self.http.step();
        let moved2 = self.driver.pump(env, &mut self.http.stack);
        if moved + moved2 > 0 {
            Poll::Ready
        } else {
            Poll::Pending
        }
    }
}

fn site() -> FileSys<RamDisk> {
    let mut fs = FileSys::mkfs(RamDisk::new(64, 1024), 64, 16).unwrap();
    fs.create("/index.html", T_FILE).unwrap();
    fs.write_str(
        "/index.html",
        "<html><body><h1>Hyperkernel</h1>\
         <p>This page is served by a user process on a formally \
         verified kernel.</p></body></html>",
    )
    .unwrap();
    fs.create("/papers", T_DIR).unwrap();
    fs.create("/papers/README", T_FILE).unwrap();
    fs.write_str("/papers/README", "the git repository of this paper\n")
        .unwrap();
    fs
}

fn main() {
    println!("== hyperkernel webserver ==\n");
    let mut system = System::boot(KernelParams::production(), CostModel::default_model());
    let nic = Rc::new(RefCell::new(Nic::new(0, 5)));
    system.set_init(Box::new(WebServer {
        driver: NicDriver::new(nic.clone()),
        http: HttpServer::new(2, site()),
        vm: None,
        budget: None,
    }));

    for path in ["/index.html", "/papers/README", "/papers", "/missing"] {
        let mut client = HttpClient::get(1, 2, path);
        for _ in 0..80 {
            system.run(300);
            {
                // The wire between the external client and the guest NIC.
                let mut nic = nic.borrow_mut();
                for frame in std::mem::take(&mut nic.tx_queue) {
                    client.stack.on_packet(&frame);
                }
                for pkt in client.stack.take_outgoing() {
                    nic.wire_deliver(&mut system.machine, pkt);
                }
            }
            client.step();
            if client.response.is_some() {
                break;
            }
        }
        let (status, body) = client.response.expect("response");
        println!("GET {path} -> {status}");
        for line in body.lines().take(3) {
            println!("    {line}");
        }
    }
    println!(
        "\ncycles: {}, DMA faults blocked by IOMMU: {}",
        system.machine.cycles.total, system.machine.iommu.faults
    );
}
