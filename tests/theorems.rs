//! Theorem-level integration tests: Theorem 2 (the declarative layer
//! preserved by specified transitions), the memory-isolation lemma
//! (paper Property 5), and the §6.1 experience report — spec bugs that
//! refinement alone cannot see but the declarative layer catches.

use hyperkernel::abi::{KernelParams, Sysno, PARENT_NONE};
use hyperkernel::kernel::KernelImage;
use hyperkernel::smt::{Ctx, SatResult, Solver, Sort};
use hyperkernel::spec::decl::{all_properties, conjunction};
use hyperkernel::spec::{shapes_of, SpecState};
use hyperkernel::verifier::xcut;

fn setup() -> (KernelParams, Vec<hyperkernel::spec::GlobalShape>) {
    let params = KernelParams::verification();
    let image = KernelImage::build(params).unwrap();
    (params, shapes_of(&image.module))
}

#[test]
#[ignore = "slow tier: full declarative sweep; run with --ignored"]
fn theorem2_holds_for_fd_handlers() {
    let (params, shapes) = setup();
    for sysno in [
        Sysno::Dup,
        Sysno::Close,
        Sysno::CreateFile,
        Sysno::TransferFd,
    ] {
        let report = xcut::check_transition(&shapes, params, sysno, &Default::default());
        assert!(
            report.outcome.holds(),
            "{sysno}: declarative layer violated: {:?}",
            report.violated
        );
    }
}

#[test]
#[ignore = "slow tier: full declarative sweep; run with --ignored"]
fn theorem2_holds_for_lifecycle_handlers() {
    let (params, shapes) = setup();
    for sysno in [Sysno::Kill, Sysno::Reap, Sysno::Reparent, Sysno::Switch] {
        let report = xcut::check_transition(&shapes, params, sysno, &Default::default());
        assert!(
            report.outcome.holds(),
            "{sysno}: declarative layer violated: {:?}",
            report.violated
        );
    }
}

#[test]
#[ignore = "slow tier: full declarative sweep; run with --ignored"]
fn theorem2_holds_for_iommu_lifetime_handlers() {
    // The §6.1 bug territory: device/vector/remap lifetimes.
    let (params, shapes) = setup();
    for sysno in [
        Sysno::AllocIommuRoot,
        Sysno::FreeIommuRoot,
        Sysno::AllocIntremap,
        Sysno::ReclaimIntremap,
        Sysno::ReclaimVector,
    ] {
        let report = xcut::check_transition(&shapes, params, sysno, &Default::default());
        assert!(
            report.outcome.holds(),
            "{sysno}: declarative layer violated: {:?}",
            report.violated
        );
    }
}

#[test]
#[ignore = "slow tier: 4-level walk proof; run with --ignored"]
fn memory_isolation_lemma_holds() {
    // Paper Property 5: no 4-level walk from a live process's root
    // escapes that process's own frames/DMA pages, in any state
    // satisfying the declarative conjunction.
    let (params, shapes) = setup();
    let (outcome, time) = xcut::check_isolation(&shapes, params, &Default::default());
    assert!(outcome.holds(), "isolation lemma failed: {outcome:?}");
    eprintln!("isolation lemma proved in {:.2}s", time.as_secs_f64());
}

// ---------------------------------------------------------------------
// §6.1: bugs in the *state-machine spec* caught by the declarative
// layer. We hand-write broken transitions (the spec-side analogue of
// the paper's anecdotes) and show the conjunction refutes them.
// ---------------------------------------------------------------------

/// The file-table inconsistency bug: a "create"-like transition that
/// sets the type but forgets the reference count (so `ty == NONE <=>
/// refcnt == 0` breaks while nothing else notices).
#[test]
#[ignore = "slow tier: solver-backed spec-bug search; run with --ignored"]
fn declarative_layer_catches_file_table_inconsistency() {
    let (params, shapes) = setup();
    let mut ctx = Ctx::new();
    let mut st = SpecState::fresh(&mut ctx, &shapes, params);
    let props = all_properties();
    let p_pre = conjunction(&mut ctx, &mut st, &props);
    // Broken transition: files[f].ty = INODE without touching refcnt or
    // any FD slot, guarded by "slot was free".
    let f = ctx.var("f", Sort::Bv(64));
    let mut post = st.clone();
    let zero = ctx.i64_const(0);
    let six = ctx.i64_const(params.nr_files as i64);
    let ge = ctx.sle(zero, f);
    let lt = ctx.slt(f, six);
    let refcnt = post.read(&mut ctx, "files", "refcnt", &[f]);
    let rc0 = ctx.eq(refcnt, zero);
    let guard = ctx.and(&[ge, lt, rc0]);
    let inode = ctx.i64_const(hyperkernel::abi::file_type::INODE);
    post.write_if(&mut ctx, guard, "files", "ty", &[f], inode);
    // P(pre) && !P(post) must be SATISFIABLE: the bug is caught.
    let mut post2 = post.clone();
    let p_post = conjunction(&mut ctx, &mut post2, &props);
    let bad = ctx.not(p_post);
    let mut solver = Solver::new();
    solver.assert(&mut ctx, p_pre);
    solver.assert(&mut ctx, guard);
    solver.assert(&mut ctx, bad);
    match solver.check(&mut ctx) {
        SatResult::Sat(_) => {} // counterexample found: bug caught
        other => panic!("declarative layer missed the spec bug: {other:?}"),
    }
}

/// The IOMMU lifetime bug: a "reclaim"-like transition that frees an
/// IOMMU root page while the device-table entry still references it.
#[test]
#[ignore = "slow tier: solver-backed spec-bug search; run with --ignored"]
fn declarative_layer_catches_iommu_lifetime_bug() {
    let (params, shapes) = setup();
    let mut ctx = Ctx::new();
    let mut st = SpecState::fresh(&mut ctx, &shapes, params);
    let props = all_properties();
    let p_pre = conjunction(&mut ctx, &mut st, &props);
    // Broken transition: page_desc[pn].ty = FREE for a page that is an
    // IOMMU root with a live devid backref (the check our real
    // sys_reclaim_page performs is exactly what's "forgotten" here).
    let pn = ctx.var("pn", Sort::Bv(64));
    let mut post = st.clone();
    let zero = ctx.i64_const(0);
    let npages = ctx.i64_const(params.nr_pages as i64);
    let ge = ctx.sle(zero, pn);
    let lt = ctx.slt(pn, npages);
    let ty = post.read(&mut ctx, "page_desc", "ty", &[pn]);
    let root_ty = ctx.i64_const(hyperkernel::abi::page_type::IOMMU_PML4);
    let is_root = ctx.eq(ty, root_ty);
    let devid = post.read(&mut ctx, "page_desc", "devid", &[pn]);
    let none = ctx.i64_const(PARENT_NONE);
    let referenced = ctx.ne(devid, none);
    let guard = ctx.and(&[ge, lt, is_root, referenced]);
    let free_ty = ctx.i64_const(hyperkernel::abi::page_type::FREE);
    post.write_if(&mut ctx, guard, "page_desc", "ty", &[pn], free_ty);
    let pid_none = ctx.i64_const(hyperkernel::abi::PID_NONE);
    post.write_if(&mut ctx, guard, "page_desc", "owner", &[pn], pid_none);
    post.write_if(&mut ctx, guard, "page_desc", "devid", &[pn], none);
    let mut post2 = post.clone();
    let p_post = conjunction(&mut ctx, &mut post2, &props);
    let bad = ctx.not(p_post);
    let mut solver = Solver::new();
    solver.assert(&mut ctx, p_pre);
    solver.assert(&mut ctx, guard);
    solver.assert(&mut ctx, bad);
    match solver.check(&mut ctx) {
        SatResult::Sat(_) => {} // the dangling device root is caught
        other => panic!("declarative layer missed the IOMMU bug: {other:?}"),
    }
}
