//! Figure 7 reproduction: the eight xv6 bug classes, injected into this
//! kernel (or its user space) and hunted by the verifier and checkers.
//!
//! | xv6 commit | class                      | here                               | verdict    |
//! |------------|----------------------------|------------------------------------|------------|
//! | 8d1f9963   | incorrect pointer          | dup indexes files by fd, not file  | verifier ● |
//! | 2a675089   | bounds checking            | alloc_pdpt skips idx_valid         | verifier ● |
//! | ffe44492   | memory leak                | close forgets file_unref           | verifier ● |
//! | aff0c8d5   | incorrect I/O privilege    | alloc_port skips ownership check   | verifier ● |
//! | ae15515d   | buffer overflow            | pipe_read skips the offset bound   | verifier ● |
//! | 5625ae49   | integer overflow in exec   | loader bug, user space             | confined ◐ |
//! | e916d668   | signedness error in exec   | loader bug, user space             | confined ◐ |
//! | 67a7f959   | alignedness error in exec  | loader bug, user space             | confined ◐ |
//!
//! Each kernel-side case patches one HyperC source, recompiles, and runs
//! the verifier on the affected handler: it must report a bug, and the
//! extracted test case must replay concretely on the interpreter. The
//! loader cases run buggy user code on a *stock* kernel and check the
//! damage stays inside the faulting process.

use hyperkernel::abi::{KernelParams, Sysno};
use hyperkernel::kernel::image::SOURCES;
use hyperkernel::kernel::{Kernel, KernelImage, KernelLayout};
use hyperkernel::verifier::testgen::ReplayResult;
use hyperkernel::verifier::{verify_image, HandlerOutcome, VerifyConfig};

/// Builds a kernel with `file` patched by `patch`.
fn buggy_kernel(file: &str, from: &str, to: &str) -> KernelImage {
    let mut found = false;
    let sources: Vec<(&'static str, String)> = SOURCES
        .iter()
        .map(|&(name, src)| {
            if name == file {
                assert!(src.contains(from), "patch anchor missing in {file}");
                found = true;
                (name, src.replacen(from, to, 1))
            } else {
                (name, src.to_string())
            }
        })
        .collect();
    assert!(found);
    KernelImage::build_with_sources(KernelParams::verification(), sources)
        .expect("buggy kernel still compiles")
}

/// Verifies one handler of an image and returns its outcome.
fn verify_one(image: &KernelImage, sysno: Sysno) -> HandlerOutcome {
    let config = VerifyConfig {
        params: image.params,
        threads: 1,
        only: vec![sysno],
        ..VerifyConfig::default()
    };
    let mut report = verify_image(image, &config);
    report.handlers.remove(0).outcome
}

/// Replays an extracted test case against the buggy interpreter and
/// asserts the bug really manifests (UB error, or a state the invariant
/// rejects afterwards, or simply a divergence witness that ran).
fn assert_replays(image: KernelImage, outcome: &HandlerOutcome) {
    let kernel = Kernel {
        layout: KernelLayout::new(&image.module),
        image,
    };
    match outcome {
        HandlerOutcome::UbBug { test_case, .. } => {
            let replay = test_case.replay(&kernel);
            assert!(
                matches!(replay, ReplayResult::Ub { .. }),
                "UB test case must reproduce UB concretely, got {replay:?}"
            );
        }
        HandlerOutcome::RefinementBug { test_case, .. } => {
            let replay = test_case.replay(&kernel);
            assert!(
                matches!(replay, ReplayResult::Ran { .. } | ReplayResult::Ub { .. }),
                "refinement test case must at least run, got {replay:?}"
            );
        }
        other => panic!("expected a bug outcome, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// The five kernel-side classes (caught by the verifier).
// ---------------------------------------------------------------------

#[test]
fn bug_incorrect_pointer_in_dup() {
    // xv6 8d1f9963: wrong pointer used. Here: dup bumps the refcount of
    // files[newfd] instead of files[f].
    let image = buggy_kernel(
        "fd.hc",
        "    procs[current].ofile[newfd] = f;\n    procs[current].nr_fds = procs[current].nr_fds + 1;\n    files[f].refcnt = files[f].refcnt + 1;\n    return 0;\n}\n\n// dup2",
        "    procs[current].ofile[newfd] = f;\n    procs[current].nr_fds = procs[current].nr_fds + 1;\n    files[newfd].refcnt = files[newfd].refcnt + 1;\n    return 0;\n}\n\n// dup2",
    );
    let outcome = verify_one(&image, Sysno::Dup);
    assert!(
        matches!(outcome, HandlerOutcome::RefinementBug { .. })
            || matches!(outcome, HandlerOutcome::UbBug { .. }),
        "verifier must catch the wrong-pointer bug: {outcome:?}"
    );
    assert_replays(image, &outcome);
}

#[test]
#[ignore = "slow tier: full handler verification; run with --ignored"]
fn bug_missing_bounds_check_in_alloc_pdpt() {
    // xv6 2a675089: bounds checking. Here: drop idx_valid from the
    // shared table-extension validation — a user-controlled index then
    // writes outside the page.
    let image = buggy_kernel(
        "vm.hc",
        "    if (idx_valid(index) == 0) {\n        return -EINVAL;\n    }\n    if ((pages[parent][index] & PTE_P) != 0) {\n        return -EBUSY;\n    }\n    if (page_valid(child) == 0) {",
        "    if ((pages[parent][index] & PTE_P) != 0) {\n        return -EBUSY;\n    }\n    if (page_valid(child) == 0) {",
    );
    let outcome = verify_one(&image, Sysno::AllocPdpt);
    assert!(
        matches!(outcome, HandlerOutcome::UbBug { .. }),
        "verifier must catch the out-of-bounds access: {outcome:?}"
    );
    assert_replays(image, &outcome);
}

#[test]
#[ignore = "slow tier: full handler verification; run with --ignored"]
fn bug_refcount_leak_in_close() {
    // xv6 ffe44492: memory leak. Here: close clears the FD slot but
    // forgets to drop the file reference.
    let image = buggy_kernel(
        "fd.hc",
        "    procs[current].ofile[fd] = NR_FILES;\n    procs[current].nr_fds = procs[current].nr_fds - 1;\n    file_unref(f);\n    return 0;",
        "    procs[current].ofile[fd] = NR_FILES;\n    procs[current].nr_fds = procs[current].nr_fds - 1;\n    // BUG (injected): reference never dropped.\n    return 0;",
    );
    let outcome = verify_one(&image, Sysno::Close);
    assert!(
        matches!(outcome, HandlerOutcome::RefinementBug { .. }),
        "verifier must catch the leaked reference: {outcome:?}"
    );
    assert_replays(image, &outcome);
}

#[test]
#[ignore = "slow tier: full handler verification; run with --ignored"]
fn bug_io_privilege_in_alloc_port() {
    // xv6 aff0c8d5: incorrect I/O privilege. Here: alloc_port stops
    // checking that the port is unowned — any process can steal another
    // process's delegated port.
    let image = buggy_kernel(
        "iommu.hc",
        "    if (io_ports[port].owner != PID_NONE) {\n        return -EBUSY;\n    }\n",
        "",
    );
    let outcome = verify_one(&image, Sysno::AllocPort);
    assert!(
        matches!(outcome, HandlerOutcome::RefinementBug { .. }),
        "verifier must catch the privilege bug: {outcome:?}"
    );
    assert_replays(image, &outcome);
}

#[test]
#[ignore = "slow tier: full handler verification; run with --ignored"]
fn bug_buffer_overflow_in_pipe_read() {
    // xv6 ae15515d: buffer overflow. Here: pipe_read drops the offset
    // bound, so a user-chosen offset writes past the frame.
    let image = buggy_kernel(
        "fd.hc",
        "    if ((offset < 0) | (offset > PAGE_WORDS - len)) {\n        return -EINVAL;\n    }\n    p = files[f].value;\n    if (len > pipes[p].count) {",
        "    p = files[f].value;\n    if (len > pipes[p].count) {",
    );
    let outcome = verify_one(&image, Sysno::PipeRead);
    assert!(
        matches!(outcome, HandlerOutcome::UbBug { .. }),
        "verifier must catch the overflow: {outcome:?}"
    );
    assert_replays(image, &outcome);
}

// ---------------------------------------------------------------------
// The three exec/loader classes (confined to user space).
// ---------------------------------------------------------------------

/// A deliberately broken user-space "loader": the HXE brk path with a
/// signedness bug (negative sizes accepted) and an unchecked pointer.
/// The process self-destructs; the kernel and its neighbours do not.
#[test]
fn loader_bugs_confined_to_user_space() {
    use hyperkernel::kernel::{GuestEnv, GuestProg, Poll, System};
    use hyperkernel::user::linuxemu::{HxeImage, LinuxEmu, Op};
    use hyperkernel::user::ulib;
    use hyperkernel::vm::CostModel;

    struct Init {
        spawned: bool,
    }
    impl GuestProg for Init {
        fn poll(&mut self, env: &mut GuestEnv) -> Poll {
            if !self.spawned {
                let mut budget = ulib::init_budget(env);
                // Bug class "signedness/overflow in exec": a negative
                // brk request (interpreted badly by a buggy loader)
                // followed by a wild store through an unvalidated
                // "entry point" address.
                let buggy = HxeImage {
                    ops: vec![
                        Op::Movi(0, 12), // BRK
                        Op::Movi(1, -4096),
                        Op::Syscall,
                        Op::Movi(2, 0x7fff_0000),
                        Op::Movi(3, 1),
                        Op::Store(2, 3), // wild store: faults
                        Op::Movi(0, 60),
                        Op::Syscall,
                    ],
                };
                let b1 = ulib::spawn(env, &mut budget, 2, &[], 16).unwrap();
                env.register_actor(2, Box::new(LinuxEmu::new(buggy, b1)));
                // A healthy neighbour that must be unaffected.
                let b2 = ulib::spawn(env, &mut budget, 3, &[], 16).unwrap();
                env.register_actor(
                    3,
                    Box::new(LinuxEmu::new(HxeImage::hello("survivor ok\n"), b2)),
                );
                self.spawned = true;
            }
            Poll::Pending
        }
    }

    let mut system = System::boot(KernelParams::production(), CostModel::default_model());
    system.set_init(Box::new(Init { spawned: false }));
    system.run(40_000);
    // The buggy process died (fault -> exit), the survivor ran fine, and
    // the kernel invariant still holds: damage confined (Figure 7's ◐).
    assert!(system.console_text().contains("survivor ok"));
    assert_eq!(
        system
            .kernel
            .read_global(&system.machine, "procs", 2, "state", 0),
        hyperkernel::abi::proc_state::ZOMBIE
    );
    assert!(system.kernel.check_invariant(&mut system.machine).unwrap());
}
